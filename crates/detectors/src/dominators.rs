//! Dominator trees and retained sizes over heap snapshots.
//!
//! The classic offline leak-diagnosis machinery (LeakBot, Eclipse MAT):
//! object `a` *dominates* `b` when every path from the roots to `b`
//! passes through `a`, so reclaiming `a` would free `b`. The *retained
//! size* of `a` is the total size of everything it dominates — the
//! payoff for fixing a leak rooted at `a`.
//!
//! Computed with the Cooper–Harvey–Kennedy iterative algorithm over the
//! snapshot graph extended with a virtual root that points at every real
//! root.

use crate::snapshot::HeapSnapshot;

/// Immediate-dominator tree for a [`HeapSnapshot`].
///
/// # Example
///
/// ```
/// use gca_detectors::{Dominators, HeapSnapshot};
/// use gca_heap::Heap;
///
/// # fn main() -> Result<(), gca_heap::HeapError> {
/// let mut heap = Heap::new();
/// let c = heap.register_class("T", &["a", "b"]);
/// // root -> owner -> {x, y}: owner dominates x and y.
/// let root = heap.alloc(c, 2, 0)?;
/// let owner = heap.alloc(c, 2, 0)?;
/// let x = heap.alloc(c, 2, 4)?;
/// let y = heap.alloc(c, 2, 4)?;
/// heap.set_ref_field(root, 0, owner)?;
/// heap.set_ref_field(owner, 0, x)?;
/// heap.set_ref_field(owner, 1, y)?;
///
/// let snap = HeapSnapshot::capture(&heap, &[root]);
/// let dom = Dominators::compute(&snap);
/// let owner_id = snap.node_of(owner).unwrap();
/// let x_id = snap.node_of(x).unwrap();
/// assert!(dom.dominates(owner_id, x_id));
/// let retained = dom.retained_words(&snap);
/// // owner retains itself + x + y.
/// assert_eq!(retained[owner_id], 4 + 8 + 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[i]` is the immediate dominator of node `i`; `usize::MAX`
    /// encodes the virtual root.
    idom: Vec<usize>,
    /// Reverse-postorder number per node (dominators have smaller rpo).
    rpo_number: Vec<usize>,
    /// Node ids in reverse-postorder.
    rpo_order: Vec<usize>,
}

const VROOT: usize = usize::MAX;

impl Dominators {
    /// Computes the dominator tree of `snapshot`.
    pub fn compute(snapshot: &HeapSnapshot) -> Dominators {
        let n = snapshot.node_count();
        // Iterative postorder DFS from the virtual root.
        let mut post: Vec<usize> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Stack entries: (node, next-successor-index). The virtual root's
        // successor list is the roots slice.
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for &r in snapshot.roots() {
            if visited[r] {
                continue;
            }
            visited[r] = true;
            stack.push((r, 0));
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                let edges = &snapshot.nodes()[node].edges;
                if *next < edges.len() {
                    let succ = edges[*next];
                    *next += 1;
                    if !visited[succ] {
                        visited[succ] = true;
                        stack.push((succ, 0));
                    }
                } else {
                    post.push(node);
                    stack.pop();
                }
            }
        }
        let rpo_order: Vec<usize> = post.iter().rev().copied().collect();
        let mut rpo_number = vec![usize::MAX; n];
        for (i, &node) in rpo_order.iter().enumerate() {
            rpo_number[node] = i;
        }

        // Predecessor lists (graph edges plus virtual-root -> roots).
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (from, node) in snapshot.nodes().iter().enumerate() {
            for &to in &node.edges {
                preds[to].push(from);
            }
        }
        let mut is_root = vec![false; n];
        for &r in snapshot.roots() {
            is_root[r] = true;
        }

        // Cooper–Harvey–Kennedy iteration.
        let mut idom = vec![usize::MAX - 1; n]; // MAX-1 = "undefined"
        const UNDEF: usize = usize::MAX - 1;
        for &r in snapshot.roots() {
            idom[r] = VROOT;
        }
        let mut changed = true;
        while changed {
            changed = false;
            for &node in &rpo_order {
                // Fold all processed predecessors (the virtual root
                // counts as a processed predecessor of every root).
                let mut new_idom = if is_root[node] { VROOT } else { UNDEF };
                for &p in &preds[node] {
                    if idom[p] == UNDEF {
                        continue;
                    }
                    new_idom = if new_idom == UNDEF {
                        p
                    } else {
                        intersect(&idom, &rpo_number, new_idom, p)
                    };
                }
                if new_idom != UNDEF && idom[node] != new_idom {
                    idom[node] = new_idom;
                    changed = true;
                }
            }
        }

        Dominators {
            idom,
            rpo_number,
            rpo_order,
        }
    }

    /// The immediate dominator of `node`, or `None` if it is dominated
    /// directly by the root set (no single object retains it).
    pub fn immediate_dominator(&self, node: usize) -> Option<usize> {
        match self.idom.get(node) {
            Some(&VROOT) | None => None,
            Some(&i) if i == usize::MAX - 1 => None,
            Some(&i) => Some(i),
        }
    }

    /// Returns `true` if `a` dominates `b` (including `a == b`).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.immediate_dominator(cur) {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// The retained size of every node, in words: its own size plus the
    /// sizes of everything it dominates.
    pub fn retained_words(&self, snapshot: &HeapSnapshot) -> Vec<usize> {
        let mut retained: Vec<usize> = snapshot.nodes().iter().map(|n| n.size_words).collect();
        // Children precede parents when iterating rpo in reverse, because
        // a dominator always has a smaller rpo number than its dominees.
        for &node in self.rpo_order.iter().rev() {
            if let Some(parent) = self.immediate_dominator(node) {
                retained[parent] += retained[node];
            }
        }
        retained
    }

    /// Reverse-postorder number of `node` (diagnostics).
    pub fn rpo_number(&self, node: usize) -> usize {
        self.rpo_number[node]
    }
}

/// CHK two-finger intersection, walking both fingers up the current
/// idom approximations until they meet. The virtual root compares as the
/// smallest rpo.
fn intersect(idom: &[usize], rpo_number: &[usize], a: usize, b: usize) -> usize {
    let rpo = |x: usize| {
        if x == VROOT {
            0usize
        } else {
            rpo_number[x] + 1
        }
    };
    let (mut fa, mut fb) = (a, b);
    while fa != fb {
        while rpo(fa) > rpo(fb) {
            fa = idom[fa];
        }
        while rpo(fb) > rpo(fa) {
            fb = idom[fb];
        }
    }
    fa
}

/// A ranked retainer: the LeakBot-style "suspect" report entry.
#[derive(Debug, Clone)]
pub struct Retainer {
    /// Snapshot node id.
    pub node: usize,
    /// Class name of the retaining object.
    pub class_name: String,
    /// Retained size in words.
    pub retained_words: usize,
    /// Shallow size in words.
    pub shallow_words: usize,
}

/// The `k` objects with the largest retained sizes — the first places a
/// human looks when diagnosing a leak from a snapshot.
pub fn top_retainers(snapshot: &HeapSnapshot, dom: &Dominators, k: usize) -> Vec<Retainer> {
    let retained = dom.retained_words(snapshot);
    let mut all: Vec<Retainer> = snapshot
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, n)| Retainer {
            node: i,
            class_name: n.class_name.clone(),
            retained_words: retained[i],
            shallow_words: n.size_words,
        })
        .collect();
    all.sort_by(|a, b| {
        b.retained_words
            .cmp(&a.retained_words)
            .then(a.node.cmp(&b.node))
    });
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use gca_heap::Heap;

    fn heap() -> (Heap, gca_heap::ClassId) {
        let mut h = Heap::new();
        let c = h.register_class("T", &["a", "b", "c"]);
        (h, c)
    }

    #[test]
    fn chain_dominators() {
        // root -> a -> b -> c: each dominates its suffix.
        let (mut heap, cls) = heap();
        let r = heap.alloc(cls, 3, 0).unwrap();
        let a = heap.alloc(cls, 3, 0).unwrap();
        let b = heap.alloc(cls, 3, 0).unwrap();
        let c = heap.alloc(cls, 3, 2).unwrap();
        heap.set_ref_field(r, 0, a).unwrap();
        heap.set_ref_field(a, 0, b).unwrap();
        heap.set_ref_field(b, 0, c).unwrap();

        let snap = HeapSnapshot::capture(&heap, &[r]);
        let dom = Dominators::compute(&snap);
        let (nr, na, nb, nc) = (
            snap.node_of(r).unwrap(),
            snap.node_of(a).unwrap(),
            snap.node_of(b).unwrap(),
            snap.node_of(c).unwrap(),
        );
        assert_eq!(dom.immediate_dominator(nr), None);
        assert_eq!(dom.immediate_dominator(na), Some(nr));
        assert_eq!(dom.immediate_dominator(nb), Some(na));
        assert_eq!(dom.immediate_dominator(nc), Some(nb));
        assert!(dom.dominates(na, nc));
        assert!(!dom.dominates(nc, na));

        let retained = dom.retained_words(&snap);
        assert_eq!(retained[nc], 7);
        assert_eq!(retained[nb], 5 + 7);
        assert_eq!(retained[nr], 5 * 3 + 7);
    }

    #[test]
    fn diamond_merges_at_the_fork() {
        // r -> {a, b} -> shared: shared's idom is r, not a or b.
        let (mut heap, cls) = heap();
        let r = heap.alloc(cls, 3, 0).unwrap();
        let a = heap.alloc(cls, 3, 0).unwrap();
        let b = heap.alloc(cls, 3, 0).unwrap();
        let shared = heap.alloc(cls, 3, 10).unwrap();
        heap.set_ref_field(r, 0, a).unwrap();
        heap.set_ref_field(r, 1, b).unwrap();
        heap.set_ref_field(a, 0, shared).unwrap();
        heap.set_ref_field(b, 0, shared).unwrap();

        let snap = HeapSnapshot::capture(&heap, &[r]);
        let dom = Dominators::compute(&snap);
        let ns = snap.node_of(shared).unwrap();
        let nr = snap.node_of(r).unwrap();
        assert_eq!(dom.immediate_dominator(ns), Some(nr));
        // a's retained size does NOT include shared.
        let retained = dom.retained_words(&snap);
        assert_eq!(retained[snap.node_of(a).unwrap()], 5);
    }

    #[test]
    fn cycles_are_handled() {
        let (mut heap, cls) = heap();
        let r = heap.alloc(cls, 3, 0).unwrap();
        let a = heap.alloc(cls, 3, 0).unwrap();
        let b = heap.alloc(cls, 3, 0).unwrap();
        heap.set_ref_field(r, 0, a).unwrap();
        heap.set_ref_field(a, 0, b).unwrap();
        heap.set_ref_field(b, 0, a).unwrap(); // cycle a <-> b
        let snap = HeapSnapshot::capture(&heap, &[r]);
        let dom = Dominators::compute(&snap);
        let (na, nb) = (snap.node_of(a).unwrap(), snap.node_of(b).unwrap());
        assert_eq!(dom.immediate_dominator(nb), Some(na));
        assert!(dom.dominates(na, nb));
    }

    #[test]
    fn multiple_roots_nothing_dominates_shared() {
        // Two roots both reach `shared`: no object dominates it.
        let (mut heap, cls) = heap();
        let r1 = heap.alloc(cls, 3, 0).unwrap();
        let r2 = heap.alloc(cls, 3, 0).unwrap();
        let shared = heap.alloc(cls, 3, 0).unwrap();
        heap.set_ref_field(r1, 0, shared).unwrap();
        heap.set_ref_field(r2, 0, shared).unwrap();
        let snap = HeapSnapshot::capture(&heap, &[r1, r2]);
        let dom = Dominators::compute(&snap);
        assert_eq!(dom.immediate_dominator(snap.node_of(shared).unwrap()), None);
    }

    #[test]
    fn top_retainers_rank_by_retained() {
        // holder retains a big subtree; a lone large object is second.
        let (mut heap, cls) = heap();
        let r = heap.alloc(cls, 3, 0).unwrap();
        let holder = heap.alloc(cls, 3, 0).unwrap();
        heap.set_ref_field(r, 0, holder).unwrap();
        for i in 0..3 {
            let o = heap.alloc(cls, 3, 20).unwrap();
            heap.set_ref_field(holder, i, o).unwrap();
        }
        let lone = heap.alloc(cls, 3, 30).unwrap();
        heap.set_ref_field(r, 1, lone).unwrap();

        let snap = HeapSnapshot::capture(&heap, &[r]);
        let dom = Dominators::compute(&snap);
        let top = top_retainers(&snap, &dom, 3);
        assert_eq!(top[0].node, snap.node_of(r).unwrap());
        assert_eq!(top[1].node, snap.node_of(holder).unwrap());
        assert_eq!(top[1].retained_words, 5 + 3 * 25);
        assert_eq!(top[2].node, snap.node_of(lone).unwrap());
        assert_eq!(top[2].retained_words, 35);
    }

    #[test]
    fn empty_snapshot() {
        let heap = Heap::new();
        let snap = HeapSnapshot::capture(&heap, &[]);
        let dom = Dominators::compute(&snap);
        assert!(dom.retained_words(&snap).is_empty());
        assert!(top_retainers(&snap, &dom, 5).is_empty());
    }
}
