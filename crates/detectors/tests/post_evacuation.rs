//! Post-evacuation regression suite: every baseline detector must keep
//! working across semispace copying collections.
//!
//! The detectors are keyed by `ObjRef` (or by snapshot node indices
//! derived from `ObjRef`s), and `ObjRef` identity is relocation-stable by
//! design: a copying collection moves an object's *address* between
//! semispaces, never its slot/generation handle. These tests pin that
//! contract end-to-end — each one drives real evacuations through the
//! copying backend (verified via the semispace flip counter) and asserts
//! the detector's verdicts are unchanged by relocation.

use gc_assertions::{CollectorKind, ObjRef, Vm, VmConfig};
use gca_detectors::{
    CorkDetector, Dominators, EagerOwnershipChecker, HeapSnapshot, StalenessDetector,
};

fn copying_vm() -> Vm {
    Vm::new(
        VmConfig::builder()
            .collector(CollectorKind::Copying)
            .build(),
    )
}

/// root -> owner -> {x, y}, plus a disconnected garbage object that each
/// collection reclaims, forcing the survivors to be evacuated.
fn build_graph(vm: &mut Vm) -> (ObjRef, ObjRef, ObjRef, ObjRef) {
    let c = vm.register_class("T", &["a", "b"]);
    let m = vm.main();
    let root = vm.alloc(m, c, 2, 0).unwrap();
    vm.add_root(m, root).unwrap();
    let owner = vm.alloc(m, c, 2, 0).unwrap();
    let x = vm.alloc(m, c, 2, 4).unwrap();
    let y = vm.alloc(m, c, 2, 4).unwrap();
    vm.set_field(root, 0, owner).unwrap();
    vm.set_field(owner, 0, x).unwrap();
    vm.set_field(owner, 1, y).unwrap();
    (root, owner, x, y)
}

/// Collects and asserts the cycle really evacuated (semispaces flipped,
/// addresses moved) — so the tests below cannot silently pass against a
/// non-moving heap.
fn collect_and_flip(vm: &mut Vm) {
    let before = vm.heap().space().flips();
    vm.collect().unwrap();
    assert_eq!(
        vm.heap().space().flips(),
        before + 1,
        "collection must flip semispaces"
    );
}

#[test]
fn snapshot_identity_is_stable_across_evacuation() {
    let mut vm = copying_vm();
    let (root, owner, x, y) = build_graph(&mut vm);

    let before = HeapSnapshot::capture(vm.heap(), &[root]);
    collect_and_flip(&mut vm);
    collect_and_flip(&mut vm);
    let after = HeapSnapshot::capture(vm.heap(), &[root]);

    // Same nodes under the same ObjRef keys, two evacuations later.
    assert_eq!(before.node_count(), after.node_count());
    for obj in [root, owner, x, y] {
        let a = before.node_of(obj).expect("captured before");
        let b = after.node_of(obj).expect("captured after");
        assert_eq!(before.nodes()[a].class_name, after.nodes()[b].class_name);
        assert_eq!(before.nodes()[a].size_words, after.nodes()[b].size_words);
    }
    assert_eq!(before.class_histogram(), after.class_histogram());
    // The pre-evacuation snapshot itself stays valid: its ObjRef index
    // still resolves against the post-evacuation heap.
    assert_eq!(before.node_of(owner), Some(1));
    assert!(vm.is_live(owner));
}

#[test]
fn dominators_and_retained_sizes_survive_evacuation() {
    let mut vm = copying_vm();
    let (root, owner, x, y) = build_graph(&mut vm);

    let snap_before = HeapSnapshot::capture(vm.heap(), &[root]);
    let dom_before = Dominators::compute(&snap_before);
    let retained_before = dom_before.retained_words(&snap_before);

    collect_and_flip(&mut vm);

    let snap_after = HeapSnapshot::capture(vm.heap(), &[root]);
    let dom_after = Dominators::compute(&snap_after);
    let retained_after = dom_after.retained_words(&snap_after);

    for obj in [owner, x, y] {
        let a = snap_before.node_of(obj).unwrap();
        let b = snap_after.node_of(obj).unwrap();
        assert_eq!(
            dom_before.dominates(snap_before.node_of(owner).unwrap(), a),
            dom_after.dominates(snap_after.node_of(owner).unwrap(), b),
            "dominance relation changed across evacuation"
        );
        assert_eq!(
            retained_before[a], retained_after[b],
            "retained size changed across evacuation"
        );
    }
}

#[test]
fn cork_sees_no_phantom_growth_from_relocation() {
    let mut vm = copying_vm();
    let (_root, _owner, _x, _y) = build_graph(&mut vm);

    let mut cork = CorkDetector::new(1);
    // First observation grows from zero; ignore it.
    cork.observe(vm.heap());
    // Evacuations move every survivor to fresh addresses each cycle; the
    // per-class live volume must not change, so a window-1 detector (the
    // most trigger-happy configuration) stays quiet.
    for _ in 0..3 {
        collect_and_flip(&mut vm);
        assert!(
            cork.observe(vm.heap()).is_empty(),
            "relocation misread as heap growth"
        );
    }
}

#[test]
fn staleness_verdicts_survive_evacuation() {
    let mut vm = copying_vm();
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    let hot = vm.alloc(m, c, 0, 0).unwrap();
    vm.add_root(m, hot).unwrap();
    let cold = vm.alloc(m, c, 0, 0).unwrap();
    vm.add_root(m, cold).unwrap();
    let doomed = vm.alloc(m, c, 0, 0).unwrap();

    let mut det = StalenessDetector::new(3);
    det.touch(doomed);
    for _ in 0..10 {
        det.touch(hot);
        det.advance();
    }
    // `doomed` dies in the copying collection; its slot generation bumps,
    // so the detector's retained `ObjRef` key is recognized as reclaimed
    // even though a *new* object may later occupy the same slot.
    collect_and_flip(&mut vm);
    assert!(!vm.is_live(doomed));

    let stale = det.scan(vm.heap());
    assert_eq!(stale.len(), 1, "exactly the cold survivor is stale");
    assert_eq!(stale[0].object, cold);
    // Touching the evacuated survivor by its pre-evacuation handle works.
    det.touch(cold);
    det.advance();
    assert!(det.scan(vm.heap()).is_empty());
}

#[test]
fn eager_ownership_checker_tracks_pairs_across_evacuation() {
    let mut vm = copying_vm();
    let (_root, owner, x, _y) = build_graph(&mut vm);

    let mut eager = EagerOwnershipChecker::new();
    eager.add_pair(owner, x);
    assert!(eager.after_mutation(vm.heap()).is_empty());

    collect_and_flip(&mut vm);
    // The pair's handles still name the evacuated objects.
    assert!(eager.after_mutation(vm.heap()).is_empty());

    vm.set_field(owner, 0, ObjRef::NULL).unwrap();
    let violations = eager.after_mutation(vm.heap());
    assert_eq!(violations.len(), 1, "severed ownership caught post-move");
    assert_eq!(violations[0].ownee, x);
    assert_eq!(violations[0].owner, owner);
}
