//! Property test: the CHK dominator computation agrees with the
//! brute-force definition on arbitrary random heaps.
//!
//! Definition: `a` dominates `b` iff deleting `a` from the graph makes
//! `b` unreachable from the roots. The retained set of `a` is exactly
//! the set of nodes it dominates.

use gca_detectors::{Dominators, HeapSnapshot};
use gca_heap::{Heap, ObjRef};
use proptest::prelude::*;
use std::collections::HashSet;

fn build(
    n: usize,
    edges: &[(usize, usize, usize)],
    root_picks: &[usize],
) -> (Heap, Vec<ObjRef>, Vec<ObjRef>) {
    let mut heap = Heap::new();
    let c = heap.register_class("N", &[]);
    let objs: Vec<ObjRef> = (0..n).map(|_| heap.alloc(c, 3, 1).unwrap()).collect();
    for &(from, field, to) in edges {
        heap.set_ref_field(objs[from % n], field % 3, objs[to % n])
            .unwrap();
    }
    let roots: Vec<ObjRef> = root_picks.iter().map(|&i| objs[i % n]).collect();
    (heap, objs, roots)
}

/// Reachability from the roots with node `skip` deleted.
fn reachable_without(snap: &HeapSnapshot, skip: Option<usize>) -> HashSet<usize> {
    let mut seen = HashSet::new();
    let mut stack: Vec<usize> = snap
        .roots()
        .iter()
        .copied()
        .filter(|&r| Some(r) != skip)
        .collect();
    while let Some(v) = stack.pop() {
        if !seen.insert(v) {
            continue;
        }
        for &s in &snap.nodes()[v].edges {
            if Some(s) != skip && !seen.contains(&s) {
                stack.push(s);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dominators_match_deletion_definition(
        n in 1usize..18,
        edges in proptest::collection::vec((0usize..18, 0usize..3, 0usize..18), 0..60),
        root_picks in proptest::collection::vec(0usize..18, 1..4),
    ) {
        let (heap, _objs, roots) = build(n, &edges, &root_picks);
        let snap = HeapSnapshot::capture(&heap, &roots);
        let dom = Dominators::compute(&snap);

        let all = reachable_without(&snap, None);
        prop_assert_eq!(all.len(), snap.node_count(), "snapshot is the reachable set");

        for a in 0..snap.node_count() {
            let without_a = reachable_without(&snap, Some(a));
            for b in 0..snap.node_count() {
                let brute = if a == b {
                    true
                } else {
                    // b reachable overall but not without a.
                    !without_a.contains(&b)
                };
                prop_assert_eq!(
                    dom.dominates(a, b),
                    brute,
                    "dominates({}, {}) mismatch", a, b
                );
            }
        }
    }

    #[test]
    fn retained_size_equals_dominated_set_size(
        n in 1usize..18,
        edges in proptest::collection::vec((0usize..18, 0usize..3, 0usize..18), 0..60),
        root_picks in proptest::collection::vec(0usize..18, 1..4),
    ) {
        let (heap, _objs, roots) = build(n, &edges, &root_picks);
        let snap = HeapSnapshot::capture(&heap, &roots);
        let dom = Dominators::compute(&snap);
        let retained = dom.retained_words(&snap);

        for (a, &got) in retained.iter().enumerate() {
            let without_a = reachable_without(&snap, Some(a));
            let expected: usize = (0..snap.node_count())
                .filter(|&b| b == a || !without_a.contains(&b))
                .map(|b| snap.nodes()[b].size_words)
                .sum();
            prop_assert_eq!(got, expected, "retained({}) mismatch", a);
        }
    }
}
