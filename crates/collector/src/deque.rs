//! Work-stealing deques for the parallel mark phase.
//!
//! Each tracer worker owns one [`StealDeque`]: the owner pushes and pops
//! at the back (LIFO, for cache-friendly depth-first traversal of the
//! object graph), thieves take a batch from the front (FIFO, so a thief
//! steals the *oldest* — typically largest — pending subtrees and stays
//! out of the owner's hot end).
//!
//! The implementation is a mutex-guarded ring buffer rather than a lock-
//! free Chase–Lev deque: the collector crate forbids `unsafe`, and the
//! workers batch pushes/steals so the lock is taken once per *batch*, not
//! per object — contention stays negligible next to the per-object mark
//! RMW traffic.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A shared double-ended work queue (see module docs).
#[derive(Debug, Default)]
pub struct StealDeque<T> {
    items: Mutex<VecDeque<T>>,
    /// Length mirror so idle thieves can poll emptiness without taking
    /// the lock.
    len_hint: AtomicUsize,
}

impl<T> StealDeque<T> {
    /// Creates an empty deque.
    pub fn new() -> StealDeque<T> {
        StealDeque {
            items: Mutex::new(VecDeque::new()),
            len_hint: AtomicUsize::new(0),
        }
    }

    /// Approximate number of queued items (exact between operations).
    #[inline]
    pub fn len_hint(&self) -> usize {
        self.len_hint.load(Ordering::SeqCst)
    }

    /// Pushes a batch at the back (owner side).
    pub fn push_batch(&self, batch: impl IntoIterator<Item = T>) {
        let mut q = self.items.lock().expect("deque poisoned");
        q.extend(batch);
        self.len_hint.store(q.len(), Ordering::SeqCst);
    }

    /// Pops one item from the back (owner side).
    pub fn pop_back(&self) -> Option<T> {
        let mut q = self.items.lock().expect("deque poisoned");
        let item = q.pop_back();
        self.len_hint.store(q.len(), Ordering::SeqCst);
        item
    }

    /// Steals roughly half of the queue from the front into `into`
    /// (thief side), returning how many items were taken.
    pub fn steal_half_into(&self, into: &mut Vec<T>) -> usize {
        let mut q = self.items.lock().expect("deque poisoned");
        let take = q.len().div_ceil(2).min(q.len());
        for _ in 0..take {
            match q.pop_front() {
                Some(item) => into.push(item),
                None => break,
            }
        }
        self.len_hint.store(q.len(), Ordering::SeqCst);
        take
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_lifo_thief_fifo() {
        let d = StealDeque::new();
        d.push_batch([1, 2, 3, 4]);
        assert_eq!(d.len_hint(), 4);
        assert_eq!(d.pop_back(), Some(4), "owner pops newest");
        let mut stolen = Vec::new();
        let n = d.steal_half_into(&mut stolen);
        assert_eq!(n, 2);
        assert_eq!(stolen, vec![1, 2], "thief takes oldest half");
        assert_eq!(d.pop_back(), Some(3));
        assert_eq!(d.pop_back(), None);
        assert_eq!(d.len_hint(), 0);
    }

    #[test]
    fn steal_from_empty_is_zero() {
        let d: StealDeque<u32> = StealDeque::new();
        let mut v = Vec::new();
        assert_eq!(d.steal_half_into(&mut v), 0);
        assert!(v.is_empty());
    }

    #[test]
    fn steal_half_of_one_takes_it() {
        let d = StealDeque::new();
        d.push_batch([7]);
        let mut v = Vec::new();
        assert_eq!(d.steal_half_into(&mut v), 1);
        assert_eq!(v, vec![7]);
    }

    #[test]
    fn concurrent_producers_and_thieves_conserve_items() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let d = StealDeque::new();
        let consumed = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let d = &d;
                let consumed = &consumed;
                s.spawn(move || {
                    d.push_batch((0..1000).map(|i| t * 1000 + i));
                    let mut local: Vec<i32> = Vec::new();
                    loop {
                        if d.pop_back().is_some() {
                            consumed.fetch_add(1, Ordering::SeqCst);
                        } else if d.steal_half_into(&mut local) > 0 {
                            consumed.fetch_add(local.len() as u64, Ordering::SeqCst);
                            local.clear();
                        } else {
                            break;
                        }
                    }
                });
            }
        });
        // Threads race, so some items may be left when a thread exits
        // early; drain the remainder and check conservation.
        let mut rest = Vec::new();
        while d.steal_half_into(&mut rest) > 0 {}
        assert_eq!(consumed.load(Ordering::SeqCst) + rest.len() as u64, 4000);
    }
}
