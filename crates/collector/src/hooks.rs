//! The trace-hook interface that assertion checking piggybacks on.

use gca_heap::{Heap, HeapError, ObjRef};

use crate::stats::CycleStats;
use crate::tracer::{TraceCtx, Tracer};

/// What the tracer should do after a hook has seen a newly marked object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visit {
    /// Scan the object's reference fields (normal tracing).
    Descend,
    /// Do not scan the object's fields now. The ownership phase uses this
    /// to truncate scanning at ownee objects (§2.5.2) so collections are
    /// "essentially truncated when their leaves are reached".
    Skip,
}

/// Observation points a collection cycle offers to an attached checker.
///
/// The paper's whole design is that assertion checks ride along with work
/// the collector does anyway; every method here corresponds to one such
/// piggyback point. The default implementations do nothing, so a hooks
/// object only pays for what it overrides — and [`NoHooks`] (the Base
/// configuration) monomorphizes to the unmodified collector.
///
/// Hook order within [`crate::Collector::collect`]:
///
/// 1. [`TraceHooks::gc_begin`]
/// 2. [`TraceHooks::pre_root_phase`] — may drive the [`Tracer`] itself
///    (ownership phase)
/// 3. root scan + transitive marking, calling [`TraceHooks::visit_new`] on
///    each first visit and [`TraceHooks::visit_marked`] on each re-visit
/// 4. [`TraceHooks::trace_done`]
/// 5. sweep, calling [`TraceHooks::swept`] for each reclaimed object
/// 6. [`TraceHooks::gc_end`]
pub trait TraceHooks {
    /// If `true`, the collector uses the path-tracking worklist (§2.7) so
    /// [`TraceCtx::current_path`] can reconstruct root-to-object paths.
    /// Costs one extra worklist push per scanned object.
    fn wants_paths(&self) -> bool {
        false
    }

    /// Called before anything else in the cycle.
    fn gc_begin(&mut self, heap: &mut Heap) {
        let _ = heap;
    }

    /// Called after `gc_begin`, before the root scan, with a tracer ready
    /// to be driven. The assertion engine runs the `assert-ownedby`
    /// ownership phase here.
    ///
    /// # Errors
    ///
    /// Propagates heap errors from tracing (collector-internal invariant
    /// violations).
    fn pre_root_phase(&mut self, heap: &mut Heap, tracer: &mut Tracer) -> Result<(), HeapError> {
        let _ = (heap, tracer);
        Ok(())
    }

    /// Called when the tracer marks `obj` for the first time this cycle.
    /// The object's header has already been read and written (mark bit), so
    /// per the paper the extra flag checks here are effectively free.
    fn visit_new(&mut self, heap: &mut Heap, obj: ObjRef, ctx: &TraceCtx<'_>) -> Visit {
        let _ = (heap, obj, ctx);
        Visit::Descend
    }

    /// Called when the tracer encounters `obj` through an edge but finds it
    /// already marked — the second (or later) incoming pointer, which is
    /// where `assert-unshared` fires.
    fn visit_marked(&mut self, heap: &mut Heap, obj: ObjRef, ctx: &TraceCtx<'_>) {
        let _ = (heap, obj, ctx);
    }

    /// Called when marking has finished, before the sweep. Volume
    /// assertions check their accumulated counts here.
    fn trace_done(&mut self, heap: &mut Heap) {
        let _ = heap;
    }

    /// Called for each unreachable object just before it is freed. The
    /// engine uses this to retire metadata for dying owners/ownees.
    fn swept(&mut self, heap: &Heap, obj: ObjRef) {
        let _ = (heap, obj);
    }

    /// Called when the cycle is complete.
    fn gc_end(&mut self, heap: &mut Heap, cycle: &CycleStats) {
        let _ = (heap, cycle);
    }
}

/// The no-op hooks object: the **Base** configuration of the paper's
/// evaluation — a collector with no assertion infrastructure compiled in.
///
/// # Example
///
/// ```
/// use gca_collector::{Collector, NoHooks};
/// use gca_heap::Heap;
///
/// # fn main() -> Result<(), gca_heap::HeapError> {
/// let mut heap = Heap::new();
/// let c = heap.register_class("T", &[]);
/// let root = heap.alloc(c, 0, 0)?;
/// Collector::new().collect(&mut heap, &[root], &mut NoHooks)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl TraceHooks for NoHooks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_hooks_defaults() {
        let mut h = NoHooks;
        assert!(!h.wants_paths());
        let mut heap = Heap::new();
        let c = heap.register_class("T", &[]);
        let o = heap.alloc(c, 0, 0).unwrap();
        // Default hook bodies are callable no-ops.
        h.gc_begin(&mut heap);
        assert_eq!(
            h.visit_new(&mut heap, o, &TraceCtx::no_paths()),
            Visit::Descend
        );
        h.visit_marked(&mut heap, o, &TraceCtx::no_paths());
        h.trace_done(&mut heap);
        h.swept(&heap, o);
        h.gc_end(&mut heap, &CycleStats::default());
    }
}
