//! Instance-level heap paths for violation reports.

use std::fmt;

use gca_heap::{ClassId, ObjRef, TypeRegistry};

/// One step of a root-to-object path: an object, its class, and the
/// reference field of the *previous* step through which it was reached
/// (`None` for the first step, which was reached from a root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// The object at this step.
    pub object: ObjRef,
    /// Its class (captured when the path was built, so the path stays
    /// printable even after the object dies).
    pub class: ClassId,
    /// Field index in the previous step's object, or `None` for a root.
    pub field: Option<usize>,
}

/// A complete path through the heap from a root to an object of interest.
///
/// This is the report format of §2.7 (Figure 1): the paper prints the types
/// along the path from root to the offending object. Because our tracer
/// records the field each edge went through, [`HeapPath::display`] can also
/// print field names, which pinpoints *which reference* keeps an object
/// alive — exactly the information needed to fix a leak.
///
/// # Example
///
/// ```
/// use gca_collector::{HeapPath, PathStep};
/// use gca_heap::{Heap, ObjRef};
///
/// # fn main() -> Result<(), gca_heap::HeapError> {
/// let mut heap = Heap::new();
/// let c = heap.register_class("Order", &["customer"]);
/// let o = heap.alloc(c, 1, 0)?;
/// let path = HeapPath::new(vec![PathStep { object: o, class: c, field: None }]);
/// let text = path.display(heap.registry()).to_string();
/// assert!(text.contains("Order"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HeapPath {
    steps: Vec<PathStep>,
}

impl HeapPath {
    /// Builds a path from its steps (first step = reached from a root).
    pub fn new(steps: Vec<PathStep>) -> HeapPath {
        HeapPath { steps }
    }

    /// An empty path (used when path tracking is disabled — the Base
    /// configuration has no path information, as in the paper).
    pub fn empty() -> HeapPath {
        HeapPath { steps: Vec::new() }
    }

    /// The steps, root end first.
    pub fn steps(&self) -> &[PathStep] {
        &self.steps
    }

    /// The object the path leads to, if the path is non-empty.
    pub fn target(&self) -> Option<ObjRef> {
        self.steps.last().map(|s| s.object)
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` if the path carries no information.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Returns a displayable view that resolves class and field names
    /// through `registry`, in the style of the paper's Figure 1:
    ///
    /// ```text
    /// Company
    ///  -> .warehouses Object[]
    ///  -> .orderTable longBTree
    ///  -> .root longBTreeNode
    ///  -> [0] Order
    /// ```
    pub fn display<'a>(&'a self, registry: &'a TypeRegistry) -> PathDisplay<'a> {
        PathDisplay {
            path: self,
            registry,
        }
    }

    /// `true` if any step's class name equals `name` (test helper for case
    /// studies that assert on the shape of reported paths).
    pub fn passes_through(&self, registry: &TypeRegistry, name: &str) -> bool {
        self.steps.iter().any(|s| registry.name(s.class) == name)
    }
}

/// Human-readable rendering of a [`HeapPath`]; see [`HeapPath::display`].
#[derive(Debug, Clone, Copy)]
pub struct PathDisplay<'a> {
    path: &'a HeapPath,
    registry: &'a TypeRegistry,
}

impl fmt::Display for PathDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            return write!(f, "(no path information: path tracking disabled)");
        }
        let mut prev_class: Option<ClassId> = None;
        for (i, step) in self.path.steps.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
                write!(f, " -> ")?;
            }
            if let (Some(prev), Some(field)) = (prev_class, step.field) {
                write!(f, ".{} ", self.registry.info(prev).field_name(field))?;
            }
            write!(f, "{}", self.registry.name(step.class))?;
            prev_class = Some(step.class);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gca_heap::Heap;

    fn sample() -> (Heap, HeapPath) {
        let mut heap = Heap::new();
        let company = heap.register_class("Company", &["warehouses"]);
        let array = heap.register_class("Object[]", &[]);
        let order = heap.register_class("Order", &[]);
        let c = heap.alloc(company, 1, 0).unwrap();
        let a = heap.alloc(array, 3, 0).unwrap();
        let o = heap.alloc(order, 0, 0).unwrap();
        let path = HeapPath::new(vec![
            PathStep {
                object: c,
                class: company,
                field: None,
            },
            PathStep {
                object: a,
                class: array,
                field: Some(0),
            },
            PathStep {
                object: o,
                class: order,
                field: Some(2),
            },
        ]);
        (heap, path)
    }

    #[test]
    fn accessors() {
        let (_, path) = sample();
        assert_eq!(path.len(), 3);
        assert!(!path.is_empty());
        assert_eq!(path.target(), Some(path.steps()[2].object));
        assert!(HeapPath::empty().is_empty());
        assert_eq!(HeapPath::empty().target(), None);
    }

    #[test]
    fn display_renders_types_and_fields() {
        let (heap, path) = sample();
        let text = path.display(heap.registry()).to_string();
        assert!(text.starts_with("Company"));
        assert!(text.contains("-> .warehouses Object[]"));
        // The array class declared no field names, so index notation is used.
        assert!(text.contains("-> .[2] Order"));
    }

    #[test]
    fn empty_path_displays_placeholder() {
        let heap = Heap::new();
        let text = HeapPath::empty().display(heap.registry()).to_string();
        assert!(text.contains("no path information"));
    }

    #[test]
    fn passes_through_matches_class_names() {
        let (heap, path) = sample();
        assert!(path.passes_through(heap.registry(), "Company"));
        assert!(path.passes_through(heap.registry(), "Order"));
        assert!(!path.passes_through(heap.registry(), "Customer"));
    }
}
