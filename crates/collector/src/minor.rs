//! Nursery (minor) collection for the generational mode.
//!
//! The paper notes (§2.2) that GC assertions work with any tracing
//! collector, but that a generational collector "performs full-heap
//! collections infrequently, allowing some assertions to go unchecked for
//! long periods of time". This module supplies the minor-collection
//! machinery that lets the VM demonstrate exactly that trade-off:
//!
//! * objects carry an [`Flags::OLD`] bit once they survive a collection;
//! * a minor collection traces only the *young* population, starting from
//!   the roots and from the remembered set (old objects that may have
//!   acquired references to young objects — maintained by the VM's write
//!   barrier), treating every old object as immortal;
//! * young survivors are promoted (their `OLD` bit is set);
//! * **no assertions are checked** — only the [`TraceHooks::swept`] hook
//!   runs, so engine metadata for reclaimed objects can be retired.

use std::time::{Duration, Instant};

use gca_heap::{Flags, Heap, HeapError, ObjRef};

use crate::hooks::TraceHooks;
use crate::tracer::{TraceCtx, Tracer};
use crate::Visit;

/// Statistics for one minor collection.
///
/// Minor cycles report the same trace counters as full collections
/// (`objects_marked`, `edges_traced`), so telemetry records for the two
/// cycle kinds are directly comparable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinorStats {
    /// Wall time of the cycle.
    pub total: Duration,
    /// Young objects that survived and were promoted.
    pub promoted: u64,
    /// Young objects reclaimed.
    pub objects_swept: u64,
    /// Words reclaimed.
    pub words_swept: u64,
    /// Remembered-set entries scanned.
    pub remembered_scanned: u64,
    /// Objects marked by the minor trace. Includes old objects the trace
    /// touched and stopped at (their mark is claimed before the visit
    /// decides to skip), so this can exceed `promoted`.
    pub objects_marked: u64,
    /// Reference edges traversed by the minor trace, including the
    /// remembered-set field scans.
    pub edges_traced: u64,
}

/// Hooks used internally by the minor trace: stop at old objects and
/// record which of them were touched so their mark bits can be cleared.
struct MinorHooks {
    touched_old: Vec<ObjRef>,
}

impl TraceHooks for MinorHooks {
    fn visit_new(&mut self, heap: &mut Heap, obj: ObjRef, _ctx: &TraceCtx<'_>) -> Visit {
        if heap.has_flag(obj, Flags::OLD).unwrap_or(false) {
            // Old objects are immortal for a minor collection; any young
            // objects they reference are covered by the remembered set.
            self.touched_old.push(obj);
            return Visit::Skip;
        }
        Visit::Descend
    }
}

/// Runs a minor collection.
///
/// `roots` is the usual stop-the-world root snapshot; `remembered` is the
/// write-barrier log of old objects that may reference young ones;
/// `young` is the list of objects allocated since the previous collection
/// (entries whose object already died are tolerated and skipped). Young
/// survivors are promoted in place (non-moving nursery). `hooks` receives
/// **only** `swept` calls.
///
/// Returns the statistics; the caller is responsible for clearing its
/// young list and remembered set afterwards.
///
/// # Errors
///
/// Tracing errors, which indicate a broken collector invariant.
pub fn collect_minor<H: TraceHooks>(
    tracer: &mut Tracer,
    heap: &mut Heap,
    roots: &[ObjRef],
    remembered: &[ObjRef],
    young: &[ObjRef],
    hooks: &mut H,
) -> Result<MinorStats, HeapError> {
    let start = Instant::now();
    let mut stats = MinorStats::default();

    tracer.set_path_mode(false);
    tracer.begin_cycle();
    for &r in roots {
        tracer.push_root(r);
    }
    for &r in remembered {
        if heap.is_valid(r) {
            stats.remembered_scanned += 1;
            // Scan the old object's fields without visiting the object
            // itself (it stays unmarked — old objects are not collected
            // here, and leaving it unmarked avoids a cleanup pass).
            tracer.push_children_of(heap, r)?;
            // The barrier dedupe bit is consumed by this collection.
            heap.clear_flag(r, Flags::REMEMBERED)?;
        }
    }
    let mut minor_hooks = MinorHooks {
        touched_old: Vec::new(),
    };
    tracer.drain(heap, &mut minor_hooks)?;
    stats.objects_marked = tracer.objects_marked();
    stats.edges_traced = tracer.edges_traced();

    // Sweep the young population only.
    for &y in young {
        if !heap.is_valid(y) {
            continue; // already reclaimed (e.g. duplicate entry)
        }
        let marked = heap.has_flag(y, Flags::MARK)?;
        if marked {
            heap.clear_flag(y, Flags::PER_GC)?;
            heap.set_flag(y, Flags::OLD)?;
            stats.promoted += 1;
        } else if heap.has_flag(y, Flags::OLD)? {
            // Already promoted by an earlier entry (duplicates) — skip.
            continue;
        } else {
            hooks.swept(heap, y);
            stats.words_swept += heap.free(y)? as u64;
            stats.objects_swept += 1;
        }
    }

    // Clear the marks the trace left on touched old objects.
    for o in minor_hooks.touched_old {
        if heap.is_valid(o) {
            heap.clear_flag(o, Flags::PER_GC)?;
        }
    }

    stats.total = start.elapsed();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHooks;

    fn setup() -> (Heap, Tracer) {
        let mut heap = Heap::new();
        heap.register_class("T", &["a", "b"]);
        (heap, Tracer::new())
    }

    fn alloc(heap: &mut Heap) -> ObjRef {
        let c = heap.registry().lookup("T").unwrap();
        heap.alloc(c, 2, 0).unwrap()
    }

    #[test]
    fn unreachable_young_die_reachable_promote() {
        let (mut heap, mut tracer) = setup();
        let root = alloc(&mut heap);
        let kept = alloc(&mut heap);
        let dead = alloc(&mut heap);
        heap.set_ref_field(root, 0, kept).unwrap();
        let young = vec![root, kept, dead];
        let stats =
            collect_minor(&mut tracer, &mut heap, &[root], &[], &young, &mut NoHooks).unwrap();
        assert_eq!(stats.promoted, 2);
        assert_eq!(stats.objects_swept, 1);
        assert!(!heap.is_valid(dead));
        assert!(heap.has_flag(root, Flags::OLD).unwrap());
        assert!(heap.has_flag(kept, Flags::OLD).unwrap());
        assert!(!heap.has_flag(root, Flags::MARK).unwrap());
    }

    #[test]
    fn old_objects_are_immortal_in_minor() {
        let (mut heap, mut tracer) = setup();
        let old_garbage = alloc(&mut heap);
        heap.set_flag(old_garbage, Flags::OLD).unwrap();
        let stats = collect_minor(&mut tracer, &mut heap, &[], &[], &[], &mut NoHooks).unwrap();
        assert_eq!(stats.objects_swept, 0);
        assert!(heap.is_valid(old_garbage), "old garbage waits for a major");
    }

    #[test]
    fn remembered_set_keeps_young_alive() {
        let (mut heap, mut tracer) = setup();
        let old = alloc(&mut heap);
        heap.set_flag(old, Flags::OLD | Flags::REMEMBERED).unwrap();
        let young = alloc(&mut heap);
        heap.set_ref_field(old, 0, young).unwrap();
        // `old` is not a root here (it is simply assumed live).
        let stats =
            collect_minor(&mut tracer, &mut heap, &[], &[old], &[young], &mut NoHooks).unwrap();
        assert_eq!(stats.promoted, 1);
        assert_eq!(stats.remembered_scanned, 1);
        assert!(heap.is_valid(young));
        assert!(heap.has_flag(young, Flags::OLD).unwrap());
        assert!(
            !heap.has_flag(old, Flags::REMEMBERED).unwrap(),
            "barrier bit consumed"
        );
        assert!(!heap.has_flag(old, Flags::MARK).unwrap());
    }

    #[test]
    fn young_without_remembered_edge_dies() {
        // The failure mode the write barrier exists to prevent: an
        // old->young edge NOT in the remembered set loses the young
        // object. This pins the invariant the VM's barrier maintains.
        let (mut heap, mut tracer) = setup();
        let old = alloc(&mut heap);
        heap.set_flag(old, Flags::OLD).unwrap();
        let young = alloc(&mut heap);
        heap.set_ref_field(old, 0, young).unwrap();
        collect_minor(&mut tracer, &mut heap, &[], &[], &[young], &mut NoHooks).unwrap();
        assert!(!heap.is_valid(young), "no barrier entry, no survival");
    }

    #[test]
    fn trace_stops_at_old_objects() {
        // young root -> old -> young2: young2 must survive only through
        // the remembered set, not through the scan of the old object.
        let (mut heap, mut tracer) = setup();
        let root = alloc(&mut heap);
        let old = alloc(&mut heap);
        heap.set_flag(old, Flags::OLD).unwrap();
        let young2 = alloc(&mut heap);
        heap.set_ref_field(root, 0, old).unwrap();
        heap.set_ref_field(old, 0, young2).unwrap();
        let young = vec![root, young2];
        collect_minor(&mut tracer, &mut heap, &[root], &[], &young, &mut NoHooks).unwrap();
        // Without a remembered entry for `old`, young2 is (incorrectly
        // from the program's view, correctly from the collector's
        // contract) reclaimed — the barrier is the VM's responsibility.
        assert!(!heap.is_valid(young2));
        assert!(heap.is_valid(root));
        assert!(
            !heap.has_flag(old, Flags::MARK).unwrap(),
            "touched old cleaned"
        );
    }

    #[test]
    fn minor_reports_trace_counters() {
        let (mut heap, mut tracer) = setup();
        let root = alloc(&mut heap);
        let kept = alloc(&mut heap);
        let dead = alloc(&mut heap);
        heap.set_ref_field(root, 0, kept).unwrap();
        let young = vec![root, kept, dead];
        let stats =
            collect_minor(&mut tracer, &mut heap, &[root], &[], &young, &mut NoHooks).unwrap();
        assert_eq!(stats.objects_marked, 2, "root and kept");
        assert_eq!(stats.edges_traced, 1, "the root->kept edge");
    }

    #[test]
    fn minor_counts_touched_old_as_marked() {
        // root -> old: the trace claims old's mark before skipping it, so
        // objects_marked counts it (documented on MinorStats).
        let (mut heap, mut tracer) = setup();
        let root = alloc(&mut heap);
        let old = alloc(&mut heap);
        heap.set_flag(old, Flags::OLD).unwrap();
        heap.set_ref_field(root, 0, old).unwrap();
        let stats =
            collect_minor(&mut tracer, &mut heap, &[root], &[], &[root], &mut NoHooks).unwrap();
        assert_eq!(stats.objects_marked, 2);
        assert_eq!(stats.promoted, 1);
    }

    #[test]
    fn swept_hook_fires_for_minor_victims() {
        struct Recorder(Vec<ObjRef>);
        impl TraceHooks for Recorder {
            fn swept(&mut self, _heap: &Heap, obj: ObjRef) {
                self.0.push(obj);
            }
        }
        let (mut heap, mut tracer) = setup();
        let dead = alloc(&mut heap);
        let mut rec = Recorder(Vec::new());
        collect_minor(&mut tracer, &mut heap, &[], &[], &[dead], &mut rec).unwrap();
        assert_eq!(rec.0, vec![dead]);
    }
}
