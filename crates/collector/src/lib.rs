//! # gca-collector — mark-sweep collector with trace hooks
//!
//! The tracing mark-sweep collector for the GC-assertions reproduction
//! (Aftandilian & Guyer, PLDI 2009). The paper implements its assertions by
//! *piggybacking on the normal GC tracing process*; this crate provides the
//! piggyback points:
//!
//! * [`Collector::collect`] runs a full mark-sweep cycle over a
//!   [`gca_heap::Heap`], generic over a [`TraceHooks`] implementation.
//! * [`NoHooks`] compiles every hook away — this is the paper's **Base**
//!   configuration (an unmodified collector).
//! * A hooks object that returns `true` from [`TraceHooks::wants_paths`]
//!   switches the tracer to the **path-tracking worklist** of §2.7: gray
//!   objects are kept on the worklist with an *on-path* tag (the paper
//!   steals a low-order pointer bit), so at any moment the tagged suffix of
//!   the worklist is the exact root-to-current-object path. Violation
//!   reports read it via [`TraceCtx::current_path`].
//! * Hooks can run a *pre-root phase* ([`TraceHooks::pre_root_phase`]) that
//!   drives the [`Tracer`] directly — this is how the assertion engine
//!   implements the `assert-ownedby` ownership phase, which must trace from
//!   owner objects **before** the root scan (§2.5.2).
//! * [`mark_parallel`] is the work-stealing **parallel mark phase**: N
//!   workers with private mark stacks and [`StealDeque`]s race to claim
//!   mark bits with an atomic RMW, calling a per-worker [`ParVisitor`]
//!   shard exactly once per object (`visit_new`) and once per extra edge
//!   (`visit_marked`). Paths are not tracked on the fly; the caller
//!   reconstructs them for flagged objects with [`reconstruct_path`].
//!
//! # Example
//!
//! ```
//! use gca_collector::{Collector, NoHooks};
//! use gca_heap::Heap;
//!
//! # fn main() -> Result<(), gca_heap::HeapError> {
//! let mut heap = Heap::new();
//! let c = heap.register_class("Node", &["next"]);
//! let a = heap.alloc(c, 1, 0)?;
//! let b = heap.alloc(c, 1, 0)?;
//! let dead = heap.alloc(c, 1, 0)?;
//! heap.set_ref_field(a, 0, b)?;
//!
//! let mut gc = Collector::new();
//! let cycle = gc.collect(&mut heap, &[a], &mut NoHooks)?;
//! assert_eq!(cycle.objects_swept, 1); // only `dead` was unreachable
//! assert!(heap.is_valid(b));
//! assert!(!heap.is_valid(dead));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod census;
mod collector;
mod copying;
mod deque;
mod hooks;
mod invariants;
mod minor;
mod parallel;
mod path;
#[doc(hidden)]
pub mod sabotage;
mod stats;
mod tracer;

pub use census::{heap_has_stale_marks, CensusSink};
pub use collector::{sweep_heap, Collector};
pub use copying::CopyingCollector;
pub use deque::StealDeque;
pub use hooks::{NoHooks, TraceHooks, Visit};
pub use invariants::{forwarding_totality_violations, tricolor_violations};
pub use minor::{collect_minor, MinorStats};
pub use parallel::{
    mark_parallel, push_child_items, reconstruct_path, NoParVisitor, ParMarkStats, ParVisitor,
    WorkItem, CTX_NONE,
};
pub use path::{HeapPath, PathDisplay, PathStep};
pub use stats::{CycleStats, GcStats};
pub use tracer::{Provenance, TraceCtx, Tracer};
