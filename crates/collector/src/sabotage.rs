//! Test-only fault injection for validating the verification tooling
//! itself.
//!
//! The exhaustive model checker and the invariant modules claim to catch
//! real collector bugs; this module lets a test *plant* one and prove the
//! claim. While the thread-local switch is on, every copying-collector
//! cycle skips its **first** forwarding-address installation — the
//! survivor is marked but never evacuated, so at the flip it loses its
//! address. The fault re-arms each cycle, so a shrunk counterexample
//! (which re-runs the program many times) keeps failing deterministically.
//!
//! The switch is thread-local: proptest/model-check workers on other
//! threads are unaffected. Use [`SkipFirstForwardGuard`] so a panicking
//! test (the expected outcome!) still disarms the fault.

use std::cell::Cell;

thread_local! {
    static SKIP_FIRST_FORWARD: Cell<bool> = const { Cell::new(false) };
}

/// Arms or disarms the skip-first-forward fault on this thread.
pub fn set_skip_first_forward(on: bool) {
    SKIP_FIRST_FORWARD.with(|c| c.set(on));
}

/// Whether the fault is armed on this thread.
pub fn skip_first_forward() -> bool {
    SKIP_FIRST_FORWARD.with(|c| c.get())
}

/// RAII guard: arms the fault on construction, disarms on drop (including
/// on panic, which is how sabotaged runs are expected to end).
#[derive(Debug)]
pub struct SkipFirstForwardGuard(());

impl SkipFirstForwardGuard {
    /// Arms the fault for the guard's lifetime.
    #[must_use = "the fault disarms when the guard drops"]
    pub fn arm() -> SkipFirstForwardGuard {
        set_skip_first_forward(true);
        SkipFirstForwardGuard(())
    }
}

impl Drop for SkipFirstForwardGuard {
    fn drop(&mut self) {
        set_skip_first_forward(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_arms_and_disarms_even_on_panic() {
        assert!(!skip_first_forward());
        {
            let _g = SkipFirstForwardGuard::arm();
            assert!(skip_first_forward());
        }
        assert!(!skip_first_forward());
        let result = std::panic::catch_unwind(|| {
            let _g = SkipFirstForwardGuard::arm();
            panic!("sabotaged runs end in panics");
        });
        assert!(result.is_err());
        assert!(!skip_first_forward());
    }
}
