//! Collection-cycle orchestration: pre-root phase, mark, sweep, timing.

use std::time::Instant;

use gca_heap::{Flags, Heap, HeapError, ObjRef};

use crate::census::CensusSink;
use crate::hooks::TraceHooks;
use crate::stats::{CycleStats, GcStats};
use crate::tracer::Tracer;

/// A full-heap mark-sweep collector.
///
/// The paper uses Jikes RVM's MarkSweep plan because it is a *full-heap*
/// collector that checks every assertion at every collection (§2.2); this
/// is the Rust analogue. The collector owns a reusable [`Tracer`] and
/// cumulative [`GcStats`].
///
/// # Example
///
/// ```
/// use gca_collector::{Collector, NoHooks};
/// use gca_heap::Heap;
///
/// # fn main() -> Result<(), gca_heap::HeapError> {
/// let mut heap = Heap::new();
/// let c = heap.register_class("T", &["f"]);
/// let root = heap.alloc(c, 1, 0)?;
/// let garbage = heap.alloc(c, 1, 0)?;
/// let mut gc = Collector::new();
/// let cycle = gc.collect(&mut heap, &[root], &mut NoHooks)?;
/// assert_eq!(cycle.objects_marked, 1);
/// assert_eq!(cycle.objects_swept, 1);
/// assert!(!heap.is_valid(garbage));
/// assert_eq!(gc.stats().collections, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Collector {
    tracer: Tracer,
    stats: GcStats,
}

impl Collector {
    /// Creates a collector with zeroed statistics.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Cumulative statistics across all collections.
    pub fn stats(&self) -> &GcStats {
        &self.stats
    }

    /// Zeroes the cumulative statistics (used between benchmark
    /// iterations).
    pub fn reset_stats(&mut self) {
        self.stats = GcStats::new();
    }

    /// Runs one full collection cycle: `gc_begin`, the hooks' pre-root
    /// phase, root scan + transitive mark, `trace_done`, sweep, `gc_end`.
    ///
    /// `roots` is the stop-the-world snapshot of all thread stacks and
    /// global variables. Unreachable objects are freed; survivors have
    /// their per-GC flags ([`Flags::PER_GC`]) cleared for the next cycle.
    ///
    /// # Errors
    ///
    /// Propagates reference-validity errors from tracing, which indicate a
    /// broken collector invariant (e.g. a caller-supplied stale root).
    pub fn collect<H: TraceHooks>(
        &mut self,
        heap: &mut Heap,
        roots: &[ObjRef],
        hooks: &mut H,
    ) -> Result<CycleStats, HeapError> {
        let cycle_start = Instant::now();
        hooks.gc_begin(heap);

        self.tracer.set_path_mode(hooks.wants_paths());
        self.tracer.begin_cycle();

        let t = Instant::now();
        hooks.pre_root_phase(heap, &mut self.tracer)?;
        let pre_root = t.elapsed();
        let pre_root_edges = self.tracer.edges_traced();

        let t = Instant::now();
        for &r in roots {
            self.tracer.push_root(r);
        }
        self.tracer.drain(heap, hooks)?;
        let mark = t.elapsed();

        hooks.trace_done(heap);

        // Invariant module (debug builds and the `mcheck` profile): the
        // transitive mark is complete, so no black-to-white edge may
        // exist — the sweep is about to free everything unmarked.
        #[cfg(debug_assertions)]
        {
            let problems = crate::invariants::tricolor_violations(heap);
            assert!(problems.is_empty(), "tri-color at trace_done: {problems:?}");
        }

        let t = Instant::now();
        let (objects_swept, words_swept) = sweep_heap(heap, hooks)?;
        let sweep_time = t.elapsed();

        let cycle = CycleStats {
            total: cycle_start.elapsed(),
            pre_root,
            mark,
            sweep: sweep_time,
            objects_marked: self.tracer.objects_marked(),
            edges_traced: self.tracer.edges_traced(),
            pre_root_edges,
            objects_swept,
            words_swept,
        };
        hooks.gc_end(heap, &cycle);
        self.stats.absorb(&cycle);
        Ok(cycle)
    }

    /// Runs one full collection cycle like [`Collector::collect`], with a
    /// heap census riding along: `sink` is installed in the tracer for the
    /// duration of the cycle, so every marked object — including objects
    /// marked by hooks-driven pre-root drains — is tallied. Returns the
    /// cycle statistics together with the filled sink.
    ///
    /// # Errors
    ///
    /// As for [`Collector::collect`]. The sink is taken back out of the
    /// tracer even on error, so a failed cycle never leaks census state
    /// into the next one.
    ///
    /// In debug builds the returned sink is cross-checked against a fresh
    /// walk of the post-sweep heap ([`CensusSink::verify_live_totals`]),
    /// unless the cycle began with stale mark bits, in which case an
    /// undercount is legitimate.
    pub fn collect_census<H: TraceHooks>(
        &mut self,
        heap: &mut Heap,
        roots: &[ObjRef],
        hooks: &mut H,
        sink: CensusSink,
    ) -> Result<(CycleStats, CensusSink), HeapError> {
        let cross_check = cfg!(debug_assertions) && !crate::census::heap_has_stale_marks(heap);
        self.tracer.set_census(sink);
        let result = self.collect(heap, roots, hooks);
        let sink = self.tracer.take_census().unwrap_or_default();
        let stats = result?;
        if cross_check {
            sink.verify_live_totals(heap);
        }
        Ok((stats, sink))
    }

    /// Folds an externally-orchestrated cycle (e.g. a parallel-mark cycle
    /// driven by [`crate::mark_parallel`]) into the cumulative statistics.
    pub fn record_cycle(&mut self, cycle: &CycleStats) {
        self.stats.absorb(cycle);
    }
}

/// Sweeps the heap: frees every unmarked object (calling
/// [`TraceHooks::swept`] first) and clears the per-GC flags of survivors.
/// Returns `(objects_swept, words_swept)`.
///
/// Public so that callers orchestrating their own mark phase (the parallel
/// collector in `gc-assertions`) can reuse the identical sweep.
///
/// # Errors
///
/// Propagates heap errors, which indicate a broken collector invariant.
pub fn sweep_heap<H: TraceHooks>(heap: &mut Heap, hooks: &mut H) -> Result<(u64, u64), HeapError> {
    let mut objects = 0u64;
    let mut words = 0u64;
    for pid in 0..heap.page_count() {
        // One bitmap word per page decides the page's fate: dead slots are
        // live-but-unmarked; survivors get their PER_GC planes cleared in
        // a single word-wise operation.
        let meta = heap.page_meta(pid);
        let live = meta.live_mask();
        let survivors = live & meta.flag_word(Flags::MARK);
        let mut dead = live & !survivors;
        while dead != 0 {
            let slot = dead.trailing_zeros() as usize;
            dead &= dead - 1;
            let r = heap
                .page_meta(pid)
                .handle(slot)
                .expect("live bitmap slot must hold an object");
            hooks.swept(heap, r);
            words += heap.free(r)? as u64;
            objects += 1;
        }
        heap.clear_flag_word(pid, Flags::PER_GC, survivors);
    }
    Ok((objects, words))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHooks;
    use crate::tracer::TraceCtx;
    use crate::Visit;

    #[test]
    fn unreachable_objects_are_reclaimed() {
        let mut heap = Heap::new();
        let c = heap.register_class("T", &["f"]);
        let root = heap.alloc(c, 1, 0).unwrap();
        let kept = heap.alloc(c, 1, 0).unwrap();
        let dead1 = heap.alloc(c, 1, 0).unwrap();
        let dead2 = heap.alloc(c, 1, 0).unwrap();
        heap.set_ref_field(root, 0, kept).unwrap();
        heap.set_ref_field(dead1, 0, dead2).unwrap(); // garbage cycle feeder

        let mut gc = Collector::new();
        let cycle = gc.collect(&mut heap, &[root], &mut NoHooks).unwrap();
        assert_eq!(cycle.objects_marked, 2);
        assert_eq!(cycle.objects_swept, 2);
        assert!(heap.is_valid(root));
        assert!(heap.is_valid(kept));
        assert!(!heap.is_valid(dead1));
        assert!(!heap.is_valid(dead2));
    }

    #[test]
    fn garbage_cycles_are_collected() {
        let mut heap = Heap::new();
        let c = heap.register_class("T", &["f"]);
        let a = heap.alloc(c, 1, 0).unwrap();
        let b = heap.alloc(c, 1, 0).unwrap();
        heap.set_ref_field(a, 0, b).unwrap();
        heap.set_ref_field(b, 0, a).unwrap();
        let mut gc = Collector::new();
        let cycle = gc.collect(&mut heap, &[], &mut NoHooks).unwrap();
        assert_eq!(cycle.objects_swept, 2);
        assert_eq!(heap.live_objects(), 0);
    }

    #[test]
    fn survivors_have_per_gc_flags_cleared() {
        let mut heap = Heap::new();
        let c = heap.register_class("T", &[]);
        let root = heap.alloc(c, 0, 0).unwrap();
        heap.set_flag(root, Flags::OWNED).unwrap();
        let mut gc = Collector::new();
        gc.collect(&mut heap, &[root], &mut NoHooks).unwrap();
        assert!(!heap.has_flag(root, Flags::MARK).unwrap());
        assert!(!heap.has_flag(root, Flags::OWNED).unwrap());
    }

    #[test]
    fn sticky_flags_survive_collection() {
        let mut heap = Heap::new();
        let c = heap.register_class("T", &[]);
        let root = heap.alloc(c, 0, 0).unwrap();
        heap.set_flag(root, Flags::DEAD | Flags::UNSHARED | Flags::OWNEE)
            .unwrap();
        let mut gc = Collector::new();
        gc.collect(&mut heap, &[root], &mut NoHooks).unwrap();
        assert!(heap
            .has_flag(root, Flags::DEAD | Flags::UNSHARED | Flags::OWNEE)
            .unwrap());
    }

    #[test]
    fn repeated_collections_are_stable() {
        let mut heap = Heap::new();
        let c = heap.register_class("T", &["f"]);
        let root = heap.alloc(c, 1, 0).unwrap();
        let kept = heap.alloc(c, 1, 0).unwrap();
        heap.set_ref_field(root, 0, kept).unwrap();
        let mut gc = Collector::new();
        for _ in 0..5 {
            let cycle = gc.collect(&mut heap, &[root], &mut NoHooks).unwrap();
            assert_eq!(cycle.objects_marked, 2);
            assert_eq!(cycle.objects_swept, 0);
        }
        assert_eq!(gc.stats().collections, 5);
        assert_eq!(gc.stats().objects_marked, 10);
    }

    /// Pre-root-phase hooks that mark one object in advance, simulating the
    /// ownership phase keeping owner-reachable objects alive.
    struct Premarker {
        target: ObjRef,
    }

    impl TraceHooks for Premarker {
        fn pre_root_phase(
            &mut self,
            heap: &mut Heap,
            tracer: &mut Tracer,
        ) -> Result<(), HeapError> {
            tracer.push_children_of(heap, self.target)?;
            tracer.drain(heap, &mut NoHooks)?;
            Ok(())
        }
    }

    #[test]
    fn pre_root_phase_marks_survive_even_if_unrooted() {
        // unrooted -> child. The pre-root phase scans from `unrooted`, so
        // `child` is marked and survives one extra GC (floating garbage,
        // exactly the paper's §2.5.2 trade-off), while `unrooted` itself is
        // collected because nothing marks it.
        let mut heap = Heap::new();
        let c = heap.register_class("T", &["f"]);
        let unrooted = heap.alloc(c, 1, 0).unwrap();
        let child = heap.alloc(c, 1, 0).unwrap();
        heap.set_ref_field(unrooted, 0, child).unwrap();
        let mut gc = Collector::new();
        let mut hooks = Premarker { target: unrooted };
        let cycle = gc.collect(&mut heap, &[], &mut hooks).unwrap();
        assert!(!heap.is_valid(unrooted));
        assert!(heap.is_valid(child));
        assert_eq!(cycle.pre_root_edges, 1, "the unrooted->child edge");
        // Next collection reclaims the floating garbage.
        gc.collect(&mut heap, &[], &mut NoHooks).unwrap();
        assert!(!heap.is_valid(child));
    }

    /// Hooks that count visits and sweeps.
    #[derive(Default)]
    struct Counter {
        new: u64,
        marked: u64,
        swept: u64,
        begun: u64,
        ended: u64,
        traced: u64,
    }

    impl TraceHooks for Counter {
        fn gc_begin(&mut self, _heap: &mut Heap) {
            self.begun += 1;
        }
        fn visit_new(&mut self, _h: &mut Heap, _o: ObjRef, _c: &TraceCtx<'_>) -> Visit {
            self.new += 1;
            Visit::Descend
        }
        fn visit_marked(&mut self, _h: &mut Heap, _o: ObjRef, _c: &TraceCtx<'_>) {
            self.marked += 1;
        }
        fn trace_done(&mut self, _heap: &mut Heap) {
            self.traced += 1;
        }
        fn swept(&mut self, _heap: &Heap, _obj: ObjRef) {
            self.swept += 1;
        }
        fn gc_end(&mut self, _heap: &mut Heap, _cycle: &CycleStats) {
            self.ended += 1;
        }
    }

    #[test]
    fn hooks_fire_in_expected_quantities() {
        // diamond: root -> {l, r} -> shared ; plus one garbage object.
        let mut heap = Heap::new();
        let c = heap.register_class("T", &["a", "b"]);
        let root = heap.alloc(c, 2, 0).unwrap();
        let l = heap.alloc(c, 2, 0).unwrap();
        let r = heap.alloc(c, 2, 0).unwrap();
        let shared = heap.alloc(c, 2, 0).unwrap();
        let _garbage = heap.alloc(c, 2, 0).unwrap();
        heap.set_ref_field(root, 0, l).unwrap();
        heap.set_ref_field(root, 1, r).unwrap();
        heap.set_ref_field(l, 0, shared).unwrap();
        heap.set_ref_field(r, 0, shared).unwrap();

        let mut gc = Collector::new();
        let mut counter = Counter::default();
        let cycle = gc.collect(&mut heap, &[root], &mut counter).unwrap();
        assert_eq!(counter.new, 4);
        assert_eq!(counter.marked, 1); // shared revisited once
        assert_eq!(counter.swept, 1);
        assert_eq!(counter.begun, 1);
        assert_eq!(counter.ended, 1);
        assert_eq!(counter.traced, 1);
        assert_eq!(cycle.edges_traced, 4);
    }

    #[test]
    fn census_cycle_tallies_live_objects_and_slots_resolve() {
        let mut heap = Heap::new();
        let c = heap.register_class("T", &["f"]);
        let root = heap.alloc(c, 1, 0).unwrap();
        let kept = heap.alloc(c, 1, 0).unwrap();
        let _dead = heap.alloc(c, 1, 0).unwrap();
        heap.set_ref_field(root, 0, kept).unwrap();
        let mut gc = Collector::new();
        let (cycle, sink) = gc
            .collect_census(&mut heap, &[root], &mut NoHooks, CensusSink::new())
            .unwrap();
        assert_eq!(cycle.objects_marked, 2);
        assert_eq!(sink.total_objects(), 2);
        // Every censused slot survived the sweep and still resolves.
        for &slot in sink.marked_slots() {
            assert!(heap.object_at(slot).is_some());
        }
        // The sink was taken back out: a plain collect is unaffected.
        let cycle2 = gc.collect(&mut heap, &[root], &mut NoHooks).unwrap();
        assert_eq!(cycle2.objects_marked, 2);
    }

    #[test]
    fn census_counts_pre_root_phase_marks() {
        // `child` is marked only by the hooks' pre-root drain; the census
        // must still see it (the sink lives in the tracer, not the hooks).
        let mut heap = Heap::new();
        let c = heap.register_class("T", &["f"]);
        let unrooted = heap.alloc(c, 1, 0).unwrap();
        let child = heap.alloc(c, 1, 0).unwrap();
        heap.set_ref_field(unrooted, 0, child).unwrap();
        let mut gc = Collector::new();
        let mut hooks = Premarker { target: unrooted };
        let (_, sink) = gc
            .collect_census(&mut heap, &[], &mut hooks, CensusSink::new())
            .unwrap();
        assert_eq!(sink.total_objects(), 1);
    }

    #[test]
    fn empty_heap_collects_cleanly() {
        let mut heap = Heap::new();
        let mut gc = Collector::new();
        let cycle = gc.collect(&mut heap, &[], &mut NoHooks).unwrap();
        assert_eq!(cycle.objects_marked, 0);
        assert_eq!(cycle.objects_swept, 0);
    }

    #[test]
    fn reset_stats_zeroes() {
        let mut heap = Heap::new();
        let c = heap.register_class("T", &[]);
        let root = heap.alloc(c, 0, 0).unwrap();
        let mut gc = Collector::new();
        gc.collect(&mut heap, &[root], &mut NoHooks).unwrap();
        assert_eq!(gc.stats().collections, 1);
        gc.reset_stats();
        assert_eq!(gc.stats().collections, 0);
    }
}
