//! Parallel work-stealing mark phase.
//!
//! [`mark_parallel`] runs the transitive mark over a shared `&Heap` with N
//! worker threads. Each worker keeps a private, unsynchronized mark stack
//! and a shared [`StealDeque`]; when a worker's private stack grows while
//! its public deque is empty it *spills* the oldest half, and when a worker
//! runs dry it steals half of a victim's deque. Mark bits are claimed with
//! an atomic read-modify-write ([`gca_heap::Heap::fetch_set_flag`]), so for
//! every object exactly one worker observes the unmarked-to-marked
//! transition and calls [`ParVisitor::visit_new`]; every other edge into
//! the object produces exactly one [`ParVisitor::visit_marked`] call.
//! Those two guarantees are what make the assertion checks of the paper
//! safe to parallelize: per-object facts (instance counts, dead bits) are
//! counted by the unique `visit_new` winner, and per-edge facts
//! (`assert-unshared` extra pointers) are counted once per edge, so the
//! *sets* of observations are identical to a sequential trace no matter
//! how the workers interleave.
//!
//! Unlike the sequential path-tracking tracer (§2.7), workers do not keep
//! a root-to-object path on their worklists — a stolen item's path would
//! live on another worker's stack. Instead every [`WorkItem`] carries its
//! one-edge provenance (parent object and field index), and full paths for
//! the handful of flagged objects are reconstructed on demand after the
//! trace with [`reconstruct_path`].
//!
//! Termination uses an idle-worker counter: a worker that finds no local
//! work and nothing to steal registers as idle; when all N workers are
//! idle and every public deque is empty the phase is over. All counter and
//! length operations are `SeqCst`, so a spill that happened before a
//! worker went idle is visible to whichever worker performs the final
//! emptiness check.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use gca_heap::{Flags, Heap, HeapError, ObjRef};

use crate::deque::StealDeque;
use crate::hooks::Visit;
use crate::path::{HeapPath, PathStep};

/// Field value for items seeded directly (roots and owner-scan seeds have
/// no parent edge).
const NO_FIELD: u32 = u32::MAX;

/// Context value for items that belong to no particular scan (the root
/// phase).
pub const CTX_NONE: u32 = u32::MAX;

/// One unit of marking work: an object to visit plus its one-edge
/// provenance.
///
/// `ctx` is an opaque tag the seeding code chooses and children inherit;
/// the assertion engine uses it to distinguish which owner scan reached an
/// object during the parallel ownership phase (§2.5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkItem {
    /// Object to visit.
    pub obj: ObjRef,
    /// Object whose reference field produced this item ([`ObjRef::NULL`]
    /// for seeds).
    pub parent: ObjRef,
    /// Field index in `parent` ([`u32::MAX`] for seeds).
    pub field: u32,
    /// Scan tag, inherited by children.
    pub ctx: u32,
}

impl WorkItem {
    /// A seed item with no parent edge (a root, or an owner-scan seed).
    pub fn seed(obj: ObjRef, ctx: u32) -> WorkItem {
        WorkItem {
            obj,
            parent: ObjRef::NULL,
            field: NO_FIELD,
            ctx,
        }
    }

    /// The edge through which this item was produced, or `None` for seeds.
    pub fn parent_edge(&self) -> Option<(ObjRef, usize)> {
        if self.parent.is_null() || self.field == NO_FIELD {
            None
        } else {
            Some((self.parent, self.field as usize))
        }
    }
}

/// Per-worker visitor for the parallel mark phase — the parallel analogue
/// of the `visit_new` / `visit_marked` pair of
/// [`crate::TraceHooks`]. One visitor instance is created per worker
/// (sharding any state it accumulates), and the shards are merged by the
/// caller after the phase; the heap is shared immutably.
pub trait ParVisitor: Send {
    /// Called exactly once per object, by the worker that won the race to
    /// set the mark bit. `prev` is the header-flag snapshot taken by that
    /// atomic update (so checks against `DEAD`, `OWNEE`, … read a
    /// consistent pre-mark value). Return [`Visit::Skip`] to truncate the
    /// trace at this object.
    fn visit_new(&mut self, heap: &Heap, obj: ObjRef, prev: Flags, item: &WorkItem) -> Visit;

    /// Called exactly once for every edge that reaches an already-marked
    /// object.
    fn visit_marked(&mut self, heap: &Heap, obj: ObjRef, prev: Flags, item: &WorkItem);
}

/// A [`ParVisitor`] with no behaviour: plain parallel marking (the Base
/// configuration).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoParVisitor;

impl ParVisitor for NoParVisitor {
    fn visit_new(&mut self, _h: &Heap, _o: ObjRef, _p: Flags, _i: &WorkItem) -> Visit {
        Visit::Descend
    }
    fn visit_marked(&mut self, _h: &Heap, _o: ObjRef, _p: Flags, _i: &WorkItem) {}
}

/// Totals from one parallel mark phase (summed over workers, except
/// `worker_busy` which stays per-worker).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParMarkStats {
    /// Objects newly marked.
    pub objects_marked: u64,
    /// Reference edges traversed (each non-null field of each descended
    /// object; seed items do not count, matching the sequential tracer).
    pub edges_traced: u64,
    /// Wall time each worker spent inside its mark loop, indexed by
    /// worker. All entries span the whole phase (workers park in the
    /// idle-wait loop rather than exiting early), so the vector is a
    /// per-worker busy profile telemetry can attribute skew to.
    pub worker_busy: Vec<Duration>,
}

/// Appends a [`WorkItem`] for every non-null reference field of `parent`,
/// tagged with `ctx`, returning the number of edges pushed. This is the
/// parallel counterpart of the sequential tracer's `push_children_of`
/// (used to seed owner scans, which *do* count their seed edges).
pub fn push_child_items(
    heap: &Heap,
    parent: ObjRef,
    ctx: u32,
    out: &mut Vec<WorkItem>,
) -> Result<u64, HeapError> {
    let obj = heap.get(parent)?;
    let mut edges = 0;
    for (i, &child) in obj.refs().iter().enumerate() {
        if !child.is_null() {
            out.push(WorkItem {
                obj: child,
                parent,
                field: i as u32,
                ctx,
            });
            edges += 1;
        }
    }
    Ok(edges)
}

/// Spill the private stack's oldest half once it outgrows this.
const SPILL_THRESHOLD: usize = 64;

/// Runs a parallel mark phase over `heap` from `seeds`, with one worker
/// per element of `visitors` (`visitors.len()` is the degree of
/// parallelism; pass one visitor to run the same protocol inline without
/// spawning).
///
/// Seed items are processed like any other: each fires `visit_new` or
/// `visit_marked` depending on who wins the mark race. Edges pushed *by*
/// the workers are counted in the returned stats; edges represented by the
/// seeds themselves are the seeder's to count (see [`push_child_items`]).
///
/// # Errors
///
/// If any worker trips a heap error (a stale reference reached the trace —
/// a broken collector invariant), all workers abort and the first error is
/// returned.
pub fn mark_parallel<V: ParVisitor>(
    heap: &Heap,
    seeds: Vec<WorkItem>,
    visitors: &mut [V],
) -> Result<ParMarkStats, HeapError> {
    let workers = visitors.len();
    assert!(workers > 0, "mark_parallel needs at least one visitor");

    let deques: Vec<StealDeque<WorkItem>> = (0..workers).map(|_| StealDeque::new()).collect();
    // Contiguous seed chunks: root sets and owner scans tend to be laid
    // out in allocation order, so chunking keeps each worker in one heap
    // region until stealing kicks in.
    let chunk = seeds.len().div_ceil(workers).max(1);
    for (i, batch) in seeds.chunks(chunk).enumerate() {
        deques[i].push_batch(batch.iter().copied());
    }

    let idle = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let error: Mutex<Option<HeapError>> = Mutex::new(None);

    let stats = if workers == 1 {
        worker_loop(heap, 0, &deques, &idle, &done, &error, &mut visitors[0])
    } else {
        let shared = (&deques, &idle, &done, &error);
        let mut totals = ParMarkStats::default();
        std::thread::scope(|s| {
            let handles: Vec<_> = visitors
                .iter_mut()
                .enumerate()
                .map(|(me, visitor)| {
                    let (deques, idle, done, error) = shared;
                    s.spawn(move || worker_loop(heap, me, deques, idle, done, error, visitor))
                })
                .collect();
            // Joining in spawn order keeps `worker_busy[i]` aligned with
            // worker `i`.
            for h in handles {
                let s = h.join().expect("mark worker panicked");
                totals.objects_marked += s.objects_marked;
                totals.edges_traced += s.edges_traced;
                totals.worker_busy.extend(s.worker_busy);
            }
        });
        totals
    };

    let first_error = error.lock().expect("error slot poisoned").take();
    match first_error {
        Some(e) => Err(e),
        None => Ok(stats),
    }
}

fn worker_loop<V: ParVisitor>(
    heap: &Heap,
    me: usize,
    deques: &[StealDeque<WorkItem>],
    idle: &AtomicUsize,
    done: &AtomicBool,
    error: &Mutex<Option<HeapError>>,
    visitor: &mut V,
) -> ParMarkStats {
    let workers = deques.len();
    let mut local: Vec<WorkItem> = Vec::new();
    let mut stats = ParMarkStats::default();
    let started = Instant::now();

    'run: loop {
        // 1. Acquire an item: private stack, then own deque, then theft.
        let item = match local.pop().or_else(|| deques[me].pop_back()) {
            Some(item) => item,
            None => {
                let mut stolen = false;
                for k in 1..workers {
                    if deques[(me + k) % workers].steal_half_into(&mut local) > 0 {
                        stolen = true;
                        break;
                    }
                }
                if stolen {
                    continue;
                }
                // 2. Nothing anywhere: register idle and wait for either
                //    new work (someone spills) or global termination.
                idle.fetch_add(1, Ordering::SeqCst);
                loop {
                    if done.load(Ordering::SeqCst) {
                        break 'run;
                    }
                    if deques.iter().any(|d| d.len_hint() > 0) {
                        idle.fetch_sub(1, Ordering::SeqCst);
                        continue 'run;
                    }
                    if idle.load(Ordering::SeqCst) == workers {
                        // All workers idle: nobody is processing, so no new
                        // work can appear. Re-check emptiness (SeqCst makes
                        // pre-idle spills visible) and declare completion.
                        if deques.iter().all(|d| d.len_hint() == 0) {
                            done.store(true, Ordering::SeqCst);
                            break 'run;
                        }
                    }
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
            }
        };

        // 3. Claim the mark bit; the previous flag value decides which
        //    visit the edge gets.
        let prev = match heap.fetch_set_flag(item.obj, Flags::MARK) {
            Ok(prev) => prev,
            Err(e) => {
                let mut slot = error.lock().expect("error slot poisoned");
                slot.get_or_insert(e);
                done.store(true, Ordering::SeqCst);
                break 'run;
            }
        };
        if prev.contains(Flags::MARK) {
            visitor.visit_marked(heap, item.obj, prev, &item);
            continue;
        }
        stats.objects_marked += 1;
        if visitor.visit_new(heap, item.obj, prev, &item) == Visit::Skip {
            continue;
        }
        match push_child_items(heap, item.obj, item.ctx, &mut local) {
            Ok(edges) => stats.edges_traced += edges,
            Err(e) => {
                let mut slot = error.lock().expect("error slot poisoned");
                slot.get_or_insert(e);
                done.store(true, Ordering::SeqCst);
                break 'run;
            }
        }

        // 4. Share work: if our public deque ran dry and the private stack
        //    is deep, spill the oldest (shallowest) half for thieves.
        if local.len() > SPILL_THRESHOLD && deques[me].len_hint() == 0 {
            let half = local.len() / 2;
            deques[me].push_batch(local.drain(..half));
        }
    }

    stats.worker_busy.push(started.elapsed());
    stats
}

/// Reconstructs a path from one of `starts` to `target` over the current
/// heap graph by breadth-first search, visiting starts in the given order
/// and fields in index order (so the result is deterministic: the
/// shortest such path, ties broken by seed/field order).
///
/// Each start pairs the object with the field annotation of its first
/// step: `None` for a root, `Some(i)` when the start is field `i` of a
/// scanned owner (the sequential ownership phase reports such paths
/// starting at the owner's child, §2.5.2).
///
/// `may_descend` gates which objects the search may traverse *through*
/// (the target may always be reached); the caller uses it to mirror the
/// tracer's truncation rules (e.g. not descending into foreign owner
/// regions during the ownership phase).
///
/// Returns `None` if `target` is unreachable from `starts` under
/// `may_descend` — callers fall back to [`HeapPath::empty`].
pub fn reconstruct_path<F>(
    heap: &Heap,
    starts: &[(ObjRef, Option<usize>)],
    target: ObjRef,
    mut may_descend: F,
) -> Option<HeapPath>
where
    F: FnMut(&Heap, ObjRef) -> bool,
{
    // Predecessor edge for every discovered object; starts map to None.
    let mut pred: HashMap<ObjRef, Option<(ObjRef, usize)>> = HashMap::new();
    let mut first_field: HashMap<ObjRef, Option<usize>> = HashMap::new();
    let mut queue: VecDeque<ObjRef> = VecDeque::new();

    for &(s, f) in starts {
        if !heap.is_valid(s) || pred.contains_key(&s) {
            continue;
        }
        pred.insert(s, None);
        first_field.insert(s, f);
        queue.push_back(s);
    }

    let found = pred.contains_key(&target)
        || 'bfs: {
            while let Some(u) = queue.pop_front() {
                if u != target && !may_descend(heap, u) && pred[&u].is_some() {
                    // Truncation point (starts themselves are always expanded:
                    // the tracer scanned their children to get here).
                    continue;
                }
                let obj = match heap.get(u) {
                    Ok(o) => o,
                    Err(_) => continue,
                };
                for (i, &child) in obj.refs().iter().enumerate() {
                    if child.is_null() || pred.contains_key(&child) || !heap.is_valid(child) {
                        continue;
                    }
                    pred.insert(child, Some((u, i)));
                    if child == target {
                        break 'bfs true;
                    }
                    queue.push_back(child);
                }
            }
            false
        };
    if !found {
        return None;
    }

    // Walk the predecessor chain back to a start, then emit root-first.
    let mut rev: Vec<(ObjRef, Option<usize>)> = Vec::new();
    let mut cur = target;
    loop {
        match pred[&cur] {
            Some((p, f)) => {
                rev.push((cur, Some(f)));
                cur = p;
            }
            None => {
                rev.push((cur, first_field[&cur]));
                break;
            }
        }
    }
    rev.reverse();
    let mut steps = Vec::with_capacity(rev.len());
    for (obj, field) in rev {
        steps.push(PathStep {
            object: obj,
            class: heap.class_of(obj).ok()?,
            field,
        });
    }
    Some(HeapPath::new(steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gca_heap::Heap;

    /// Builds a wide tree: `fanout^depth`-ish nodes, returns (heap, root).
    fn tree(depth: usize, fanout: usize) -> (Heap, ObjRef) {
        let mut heap = Heap::new();
        let c = heap.register_class("Node", &["a", "b", "c", "d"]);
        let root = heap.alloc(c, fanout, 0).unwrap();
        let mut frontier = vec![root];
        for _ in 0..depth {
            let mut next = Vec::new();
            for &p in &frontier {
                for i in 0..fanout {
                    let child = heap.alloc(c, fanout, 0).unwrap();
                    heap.set_ref_field(p, i, child).unwrap();
                    next.push(child);
                }
            }
            frontier = next;
        }
        (heap, root)
    }

    fn marked_count(heap: &Heap) -> usize {
        heap.iter()
            .filter(|&(r, _)| heap.has_flag(r, Flags::MARK).unwrap())
            .count()
    }

    #[test]
    fn parallel_mark_covers_the_reachable_set() {
        for workers in [1, 2, 4] {
            let (heap, root) = tree(5, 3); // 364 nodes
            let _garbage = {
                let mut h = heap;
                let c = h.class_of(root).unwrap();
                h.alloc(c, 3, 0).unwrap();
                h
            };
            let heap = _garbage;
            let mut visitors = vec![NoParVisitor; workers];
            let stats =
                mark_parallel(&heap, vec![WorkItem::seed(root, CTX_NONE)], &mut visitors).unwrap();
            assert_eq!(stats.objects_marked, 364, "workers={workers}");
            assert_eq!(stats.edges_traced, 363, "workers={workers}");
            assert_eq!(marked_count(&heap), 364, "workers={workers}");
            assert_eq!(stats.worker_busy.len(), workers, "one busy span per worker");
        }
    }

    #[test]
    fn visit_counts_match_sequential_semantics() {
        // diamond: root -> {l, r} -> shared. 4 new visits, 1 marked visit,
        // regardless of worker count or interleaving.
        #[derive(Default)]
        struct Counting {
            new: u64,
            marked: u64,
        }
        impl ParVisitor for Counting {
            fn visit_new(&mut self, _h: &Heap, _o: ObjRef, _p: Flags, _i: &WorkItem) -> Visit {
                self.new += 1;
                Visit::Descend
            }
            fn visit_marked(&mut self, _h: &Heap, _o: ObjRef, _p: Flags, _i: &WorkItem) {
                self.marked += 1;
            }
        }
        for workers in [1, 2, 4] {
            let mut heap = Heap::new();
            let c = heap.register_class("T", &["a", "b"]);
            let root = heap.alloc(c, 2, 0).unwrap();
            let l = heap.alloc(c, 2, 0).unwrap();
            let r = heap.alloc(c, 2, 0).unwrap();
            let shared = heap.alloc(c, 2, 0).unwrap();
            heap.set_ref_field(root, 0, l).unwrap();
            heap.set_ref_field(root, 1, r).unwrap();
            heap.set_ref_field(l, 0, shared).unwrap();
            heap.set_ref_field(r, 0, shared).unwrap();
            let mut visitors: Vec<Counting> = (0..workers).map(|_| Counting::default()).collect();
            mark_parallel(&heap, vec![WorkItem::seed(root, CTX_NONE)], &mut visitors).unwrap();
            let new: u64 = visitors.iter().map(|v| v.new).sum();
            let marked: u64 = visitors.iter().map(|v| v.marked).sum();
            assert_eq!(new, 4, "workers={workers}");
            assert_eq!(marked, 1, "workers={workers}");
        }
    }

    #[test]
    fn skip_truncates_descent() {
        struct SkipAt(ObjRef);
        impl ParVisitor for SkipAt {
            fn visit_new(&mut self, _h: &Heap, o: ObjRef, _p: Flags, _i: &WorkItem) -> Visit {
                if o == self.0 {
                    Visit::Skip
                } else {
                    Visit::Descend
                }
            }
            fn visit_marked(&mut self, _h: &Heap, _o: ObjRef, _p: Flags, _i: &WorkItem) {}
        }
        let mut heap = Heap::new();
        let c = heap.register_class("T", &["f"]);
        let a = heap.alloc(c, 1, 0).unwrap();
        let b = heap.alloc(c, 1, 0).unwrap();
        let d = heap.alloc(c, 1, 0).unwrap();
        heap.set_ref_field(a, 0, b).unwrap();
        heap.set_ref_field(b, 0, d).unwrap();
        let mut visitors = vec![SkipAt(b), SkipAt(b)];
        mark_parallel(&heap, vec![WorkItem::seed(a, CTX_NONE)], &mut visitors).unwrap();
        assert!(heap.has_flag(a, Flags::MARK).unwrap());
        assert!(heap.has_flag(b, Flags::MARK).unwrap());
        assert!(!heap.has_flag(d, Flags::MARK).unwrap(), "truncated at b");
    }

    #[test]
    fn work_item_parent_edge() {
        let mut heap = Heap::new();
        let c = heap.register_class("T", &["f"]);
        let a = heap.alloc(c, 1, 0).unwrap();
        let b = heap.alloc(c, 1, 0).unwrap();
        heap.set_ref_field(a, 0, b).unwrap();
        assert_eq!(WorkItem::seed(a, 0).parent_edge(), None);
        let mut out = Vec::new();
        let edges = push_child_items(&heap, a, 7, &mut out).unwrap();
        assert_eq!(edges, 1);
        assert_eq!(out[0].obj, b);
        assert_eq!(out[0].ctx, 7);
        assert_eq!(out[0].parent_edge(), Some((a, 0)));
    }

    #[test]
    fn reconstruct_path_finds_shortest_deterministic_path() {
        let mut heap = Heap::new();
        let c = heap.register_class("T", &["a", "b"]);
        let root = heap.alloc(c, 2, 0).unwrap();
        let mid = heap.alloc(c, 2, 0).unwrap();
        let long1 = heap.alloc(c, 2, 0).unwrap();
        let long2 = heap.alloc(c, 2, 0).unwrap();
        let target = heap.alloc(c, 2, 0).unwrap();
        // Short: root.b -> mid.a -> target. Long: root.a -> long1 -> long2 -> target.
        heap.set_ref_field(root, 0, long1).unwrap();
        heap.set_ref_field(long1, 0, long2).unwrap();
        heap.set_ref_field(long2, 0, target).unwrap();
        heap.set_ref_field(root, 1, mid).unwrap();
        heap.set_ref_field(mid, 0, target).unwrap();
        let path =
            reconstruct_path(&heap, &[(root, None)], target, |_, _| true).expect("reachable");
        let objs: Vec<ObjRef> = path.steps().iter().map(|s| s.object).collect();
        assert_eq!(objs, vec![root, mid, target]);
        assert_eq!(path.steps()[0].field, None);
        assert_eq!(path.steps()[1].field, Some(1));
        assert_eq!(path.steps()[2].field, Some(0));
    }

    #[test]
    fn reconstruct_path_respects_truncation() {
        let mut heap = Heap::new();
        let c = heap.register_class("T", &["f"]);
        let root = heap.alloc(c, 1, 0).unwrap();
        let wall = heap.alloc(c, 1, 0).unwrap();
        let target = heap.alloc(c, 1, 0).unwrap();
        heap.set_ref_field(root, 0, wall).unwrap();
        heap.set_ref_field(wall, 0, target).unwrap();
        let blocked = reconstruct_path(&heap, &[(root, None)], target, |_, o| o != wall);
        assert!(blocked.is_none(), "wall may not be traversed through");
        // The wall itself is still reachable as a target.
        let to_wall = reconstruct_path(&heap, &[(root, None)], wall, |_, o| o != wall);
        assert!(to_wall.is_some());
    }

    #[test]
    fn reconstruct_path_from_owner_child_start() {
        let mut heap = Heap::new();
        let c = heap.register_class("T", &["f"]);
        let child = heap.alloc(c, 1, 0).unwrap();
        let target = heap.alloc(c, 1, 0).unwrap();
        heap.set_ref_field(child, 0, target).unwrap();
        let path = reconstruct_path(&heap, &[(child, Some(3))], target, |_, _| true).unwrap();
        assert_eq!(path.steps()[0].field, Some(3), "owner-field annotation");
        assert_eq!(path.target(), Some(target));
    }

    #[test]
    fn start_equal_to_target_yields_single_step() {
        let mut heap = Heap::new();
        let c = heap.register_class("T", &[]);
        let o = heap.alloc(c, 0, 0).unwrap();
        let path = reconstruct_path(&heap, &[(o, None)], o, |_, _| true).unwrap();
        assert_eq!(path.len(), 1);
        assert_eq!(path.target(), Some(o));
    }

    #[test]
    fn large_graph_parallel_equals_sequential_live_set() {
        // A randomized-ish mesh (deterministic arithmetic): 2000 nodes,
        // each pointing at a few arithmetic neighbours. Built twice so the
        // sequential baseline runs on an identical heap (same allocation
        // order means identical ObjRef indices).
        fn mesh() -> (Heap, Vec<ObjRef>) {
            let mut heap = Heap::new();
            let c = heap.register_class("N", &["a", "b", "c"]);
            let nodes: Vec<ObjRef> = (0..2000).map(|_| heap.alloc(c, 3, 0).unwrap()).collect();
            for (i, &n) in nodes.iter().enumerate() {
                heap.set_ref_field(n, 0, nodes[(i * 7 + 1) % 2000]).unwrap();
                heap.set_ref_field(n, 1, nodes[(i * 31 + 5) % 2000])
                    .unwrap();
                if i % 3 == 0 {
                    heap.set_ref_field(n, 2, nodes[(i + 997) % 2000]).unwrap();
                }
            }
            (heap, nodes)
        }
        let (heap, nodes) = mesh();
        let roots = [nodes[0], nodes[123], nodes[999]];

        // Sequential baseline via the existing tracer.
        let (mut seq_heap, _) = mesh();
        let mut tracer = crate::tracer::Tracer::default();
        tracer.begin_cycle();
        for &r in &roots {
            tracer.push_root(r);
        }
        tracer
            .drain(&mut seq_heap, &mut crate::hooks::NoHooks)
            .unwrap();
        let seq_marked: Vec<bool> = (0..seq_heap.index_bound() as u32)
            .map(|i| {
                seq_heap
                    .object_at(i)
                    .is_some_and(|(r, _)| seq_heap.has_flag(r, Flags::MARK).unwrap())
            })
            .collect();

        let mut visitors = vec![NoParVisitor; 4];
        let seeds = roots.iter().map(|&r| WorkItem::seed(r, CTX_NONE)).collect();
        let stats = mark_parallel(&heap, seeds, &mut visitors).unwrap();
        let par_marked: Vec<bool> = (0..heap.index_bound() as u32)
            .map(|i| {
                heap.object_at(i)
                    .is_some_and(|(r, _)| heap.has_flag(r, Flags::MARK).unwrap())
            })
            .collect();

        assert_eq!(seq_marked, par_marked);
        assert_eq!(stats.objects_marked, tracer.objects_marked());
    }
}
