//! Core GC invariants, extracted for `debug_assert!`-guarded checking on
//! every collection cycle.
//!
//! These are the model-checkable properties the exhaustive small-scope
//! checker (`gca-modelcheck`) relies on implicitly; checking them *inside*
//! the collectors turns a latent heap corruption into an immediate panic
//! at the cycle that caused it, instead of a downstream differential
//! mismatch several programs later. Each function returns a list of
//! violation descriptions (empty = invariant holds) so the call sites can
//! stay `debug_assert!`-gated — release builds pay nothing, and the CI
//! model-check gate runs with `debug-assertions = true` (the `mcheck`
//! profile) so every enumerated program exercises them.

use gca_heap::{Flags, Heap};

/// Tri-color consistency at `trace_done` time (after the transitive mark,
/// before the sweep): no black-to-white edge may exist — every reference
/// field of a MARK'd (black) object must point to a MARK'd object. An
/// unmarked child here means the tracer lost an edge, and the sweep is
/// about to free a reachable object.
pub fn tricolor_violations(heap: &Heap) -> Vec<String> {
    let mut problems = Vec::new();
    for (r, obj) in heap.iter() {
        if !heap.has_flag(r, Flags::MARK).unwrap_or(false) {
            continue;
        }
        // §2.5.2 exemption: ownership scans *truncate* at ownees. An
        // ownee reached only through a foreign owner's region is marked
        // (and reported NotOwned/ImproperOwnership) but deliberately
        // never descended below — OWNED is exactly the bit that records
        // "my own owner's scan resumed under me", so a marked ownee
        // without it is a documented truncation point, not a lost edge.
        if heap.has_flag(r, Flags::OWNEE).unwrap_or(false)
            && !heap.has_flag(r, Flags::OWNED).unwrap_or(false)
        {
            continue;
        }
        for (i, &child) in obj.refs().iter().enumerate() {
            if !child.is_some() {
                continue;
            }
            match heap.has_flag(child, Flags::MARK) {
                Ok(true) => {}
                Ok(false) => problems.push(format!(
                    "black-to-white edge: marked {r:?}.{i} -> unmarked {child:?}"
                )),
                Err(e) => problems.push(format!(
                    "marked {r:?}.{i} -> invalid reference {child:?}: {e:?}"
                )),
            }
        }
    }
    problems
}

/// Forwarding totality for the copying backend, at `trace_done` time
/// (after evacuation, before the sweep and the flip): an object has a
/// forwarding address installed this cycle **iff** it is MARK'd. A marked
/// survivor without a forwarding address loses its location at the flip
/// (the space assigns it no to-space address); a forwarded-but-unmarked
/// object means something evacuated outside the tracer's knowledge.
///
/// Call only between `evac_begin` and `evac_finish` on a
/// [`gca_heap::SpaceKind::Semispace`] heap — outside a cycle no object
/// has a forwarding address and every marked object would be reported.
pub fn forwarding_totality_violations(heap: &Heap) -> Vec<String> {
    let mut problems = Vec::new();
    for (r, _) in heap.iter() {
        let marked = heap.has_flag(r, Flags::MARK).unwrap_or(false);
        let forwarded = heap.evac_forwarding_of(r).is_some();
        match (marked, forwarded) {
            (true, false) => problems.push(format!(
                "marked survivor {r:?} has no forwarding address installed"
            )),
            (false, true) => problems.push(format!(
                "unmarked object {r:?} was forwarded to {:?}",
                heap.evac_forwarding_of(r)
            )),
            _ => {}
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use gca_heap::{ObjRef, SpaceKind};

    #[test]
    fn tricolor_flags_a_lost_edge() {
        let mut heap = Heap::new();
        let c = heap.register_class("T", &["f"]);
        let parent = heap.alloc(c, 1, 0).unwrap();
        let child = heap.alloc(c, 1, 0).unwrap();
        heap.set_ref_field(parent, 0, child).unwrap();
        heap.set_flag(parent, Flags::MARK).unwrap();
        let problems = tricolor_violations(&heap);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("black-to-white"));
        heap.set_flag(child, Flags::MARK).unwrap();
        assert!(tricolor_violations(&heap).is_empty());
    }

    #[test]
    fn tricolor_ignores_null_fields_and_white_parents() {
        let mut heap = Heap::new();
        let c = heap.register_class("T", &["f"]);
        let parent = heap.alloc(c, 1, 0).unwrap();
        let child = heap.alloc(c, 1, 0).unwrap();
        heap.set_ref_field(parent, 0, child).unwrap();
        heap.set_ref_field(parent, 0, ObjRef::NULL).unwrap();
        heap.set_flag(parent, Flags::MARK).unwrap();
        assert!(tricolor_violations(&heap).is_empty());
    }

    #[test]
    fn forwarding_totality_catches_both_directions() {
        let mut heap = Heap::with_space(SpaceKind::Semispace);
        let c = heap.register_class("T", &[]);
        let a = heap.alloc(c, 0, 0).unwrap();
        let b = heap.alloc(c, 0, 0).unwrap();
        heap.evac_begin();
        // Marked but not forwarded: the seeded-bug shape.
        heap.set_flag(a, Flags::MARK).unwrap();
        let problems = forwarding_totality_violations(&heap);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("no forwarding address"));
        // Forward it; now clean (b is unmarked and unforwarded).
        heap.evac_forward(a).unwrap();
        assert!(forwarding_totality_violations(&heap).is_empty());
        // Forwarded but never marked: the opposite corruption.
        heap.evac_forward(b).unwrap();
        let problems = forwarding_totality_violations(&heap);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("was forwarded"));
        heap.set_flag(b, Flags::MARK).unwrap();
        heap.evac_finish();
    }
}
