//! The semispace copying (Cheney-scan) collector backend.
//!
//! The paper's assertion machinery (§2.2–2.5) is defined in terms of the
//! *trace*, not of MarkSweep: dead and unshared bits are checked when the
//! trace first (or again) reaches an object, instance counters tally first
//! visits, and the ownership pre-phase is its own bounded trace. This
//! module makes that claim executable with a second, structurally
//! different collector: survivors are **evacuated** to a to-space in
//! Cheney's breadth-first order, a forwarding address is installed per
//! object, and the spaces flip. Every assertion check rides along at
//! evacuation time:
//!
//! * [`TraceHooks::visit_new`] fires exactly once per object, when it is
//!   copied — same multiplicity as the mark-sweep first visit, in a
//!   different order;
//! * [`TraceHooks::visit_marked`] fires once per *extra* incoming edge
//!   (the "forwarding word already installed" case) — same multiplicity
//!   as mark-sweep re-visits;
//! * the §2.5.2 ownership phase runs unchanged as a bounded
//!   pre-evacuation pass on the sequential [`Tracer`], with ownee
//!   truncation; objects it marks are forwarded without rescanning,
//!   exactly as the sequential drain does not descend into already-marked
//!   objects;
//! * root-to-object violation paths are reconstructed from the scan
//!   frontier's first-arrival edges (a [`Provenance`] table), since a
//!   Cheney queue — unlike the §2.7 LIFO worklist — holds no path.
//!
//! Because the heap's [`ObjRef`] handles are relocation-stable (the
//! [`SemiSpaces`] indirection moves *addresses*, not slots), mutator
//! roots, assertion registrations, alloc-site tags and replay logs all
//! survive evacuation untouched. Copying changes *where* objects live and
//! how their death is effected (eviction by non-copy rather than sweep),
//! not *whether* they are live — all assertion verdicts are identical to
//! mark-sweep, which `crates/core/tests/copying_equivalence.rs` checks by
//! differential fuzzing.

use std::collections::VecDeque;
use std::time::Instant;

use gca_heap::{Flags, Heap, HeapError, ObjRef};

use crate::census::CensusSink;
use crate::collector::sweep_heap;
use crate::hooks::{TraceHooks, Visit};
use crate::stats::{CycleStats, GcStats};
use crate::tracer::{Provenance, TraceCtx, Tracer};

/// A full-heap semispace copying collector, hook-compatible with
/// [`Collector`](crate::Collector).
///
/// The same [`TraceHooks`] implementation (in particular the assertion
/// engine) drives both backends unmodified; only the traversal order and
/// the reclamation mechanism differ.
///
/// # Example
///
/// ```
/// use gca_collector::{CopyingCollector, NoHooks};
/// use gca_heap::{Heap, SpaceKind};
///
/// # fn main() -> Result<(), gca_heap::HeapError> {
/// let mut heap = Heap::with_space(SpaceKind::Semispace);
/// let c = heap.register_class("Node", &["next"]);
/// let a = heap.alloc(c, 1, 0)?;
/// let b = heap.alloc(c, 1, 0)?;
/// let dead = heap.alloc(c, 1, 0)?;
/// heap.set_ref_field(a, 0, b)?;
///
/// let mut gc = CopyingCollector::new();
/// let cycle = gc.collect(&mut heap, &[a], &mut NoHooks)?;
/// assert_eq!(cycle.objects_swept, 1); // only `dead` was unreachable
/// assert!(heap.is_valid(b), "handles are relocation-stable");
/// assert_eq!(heap.space().flips(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct CopyingCollector {
    /// Sequential tracer, used only for the hooks' pre-root (ownership)
    /// phase — that phase is specified as a DFS with path-tagged worklist
    /// and must behave identically across backends.
    tracer: Tracer,
    /// First-arrival edges of the Cheney scan, for path reconstruction.
    prov: Provenance,
    stats: GcStats,
}

impl CopyingCollector {
    /// Creates a copying collector with zeroed statistics.
    pub fn new() -> CopyingCollector {
        CopyingCollector::default()
    }

    /// Cumulative statistics across all collections.
    pub fn stats(&self) -> &GcStats {
        &self.stats
    }

    /// Zeroes the cumulative statistics.
    pub fn reset_stats(&mut self) {
        self.stats = GcStats::new();
    }

    /// Runs one full evacuation cycle: `gc_begin`, the hooks' pre-root
    /// phase (on the sequential tracer), breadth-first evacuation of
    /// everything reachable from `roots`, `trace_done`, sweep of the
    /// non-evacuated remainder, space flip, `gc_end`.
    ///
    /// The hook schedule matches [`Collector::collect`]
    /// (crate::Collector::collect) call-for-call except for traversal
    /// order; see the module docs for the multiplicity argument.
    ///
    /// # Errors
    ///
    /// Propagates reference-validity errors from tracing, which indicate a
    /// broken collector invariant (e.g. a caller-supplied stale root).
    pub fn collect<H: TraceHooks>(
        &mut self,
        heap: &mut Heap,
        roots: &[ObjRef],
        hooks: &mut H,
    ) -> Result<CycleStats, HeapError> {
        let cycle_start = Instant::now();
        hooks.gc_begin(heap);

        let path_mode = hooks.wants_paths();
        self.tracer.set_path_mode(path_mode);
        self.tracer.begin_cycle();
        if path_mode {
            self.prov.begin_cycle(heap.index_bound());
        }

        let t = Instant::now();
        hooks.pre_root_phase(heap, &mut self.tracer)?;
        let pre_root = t.elapsed();
        let pre_root_edges = self.tracer.edges_traced();

        // The census sink (if installed) lives in the tracer so the
        // pre-root drain tallies into it; borrow it for the scan and put
        // it back afterwards so `collect_census`'s take sees it.
        let mut census = self.tracer.take_census();

        heap.evac_begin();

        let t = Instant::now();
        let scan = self.evacuate(heap, roots, hooks, &mut census, path_mode);
        if let Some(sink) = census {
            self.tracer.set_census(sink);
        }
        let (bfs_marked, bfs_edges) = match scan {
            Ok(pair) => pair,
            Err(e) => {
                // Abandon the half-done evacuation so the address space
                // stays consistent for whoever inspects the wreckage.
                heap.evac_finish();
                return Err(e);
            }
        };
        let mark = t.elapsed();

        hooks.trace_done(heap);

        // Invariant modules (debug builds and the `mcheck` profile): the
        // trace is complete and the evacuation is still open, so both the
        // tri-color and the forwarding-totality properties must hold
        // exactly here.
        #[cfg(debug_assertions)]
        {
            let problems = crate::invariants::tricolor_violations(heap);
            assert!(problems.is_empty(), "tri-color at trace_done: {problems:?}");
            let problems = crate::invariants::forwarding_totality_violations(heap);
            assert!(
                problems.is_empty(),
                "forwarding totality at trace_done: {problems:?}"
            );
        }

        // Identical reclamation decisions to mark-sweep: everything
        // without a MARK bit goes. In copying terms these are the objects
        // that were never evacuated; freeing the slot models their
        // abandonment in from-space.
        let t = Instant::now();
        let (objects_swept, words_swept) = sweep_heap(heap, hooks)?;
        let sweep_time = t.elapsed();

        let flips_before = heap.space().flips();
        heap.evac_finish();
        debug_assert_eq!(
            heap.space().flips(),
            flips_before + 1,
            "the flip counter must advance exactly once per cycle"
        );
        debug_assert!(
            heap.verify().is_empty(),
            "post-flip heap invariants: {:?}",
            heap.verify()
        );

        let cycle = CycleStats {
            total: cycle_start.elapsed(),
            pre_root,
            mark,
            sweep: sweep_time,
            objects_marked: self.tracer.objects_marked() + bfs_marked,
            edges_traced: self.tracer.edges_traced() + bfs_edges,
            pre_root_edges,
            objects_swept,
            words_swept,
        };
        hooks.gc_end(heap, &cycle);
        self.stats.absorb(&cycle);
        Ok(cycle)
    }

    /// Runs one evacuation cycle like [`CopyingCollector::collect`] with a
    /// heap census riding along, mirroring
    /// [`Collector::collect_census`](crate::Collector::collect_census):
    /// the sink sees everything evacuated this cycle, including objects
    /// marked by the pre-root phase.
    ///
    /// # Errors
    ///
    /// As for [`CopyingCollector::collect`]; the sink is recovered even on
    /// error.
    pub fn collect_census<H: TraceHooks>(
        &mut self,
        heap: &mut Heap,
        roots: &[ObjRef],
        hooks: &mut H,
        sink: CensusSink,
    ) -> Result<(CycleStats, CensusSink), HeapError> {
        let cross_check = cfg!(debug_assertions) && !crate::census::heap_has_stale_marks(heap);
        self.tracer.set_census(sink);
        let result = self.collect(heap, roots, hooks);
        let sink = self.tracer.take_census().unwrap_or_default();
        let stats = result?;
        if cross_check {
            sink.verify_live_totals(heap);
        }
        Ok((stats, sink))
    }

    /// Folds an externally-recorded cycle into the cumulative statistics.
    pub fn record_cycle(&mut self, cycle: &CycleStats) {
        self.stats.absorb(cycle);
    }

    /// The breadth-first evacuation proper. Returns
    /// `(objects_marked, edges_traced)` for the scan (excluding pre-root
    /// phase work, which the tracer counts).
    fn evacuate<H: TraceHooks>(
        &mut self,
        heap: &mut Heap,
        roots: &[ObjRef],
        hooks: &mut H,
        census: &mut Option<CensusSink>,
        path_mode: bool,
    ) -> Result<(u64, u64), HeapError> {
        // Fault injection (see `crate::sabotage`): while armed, drop the
        // first forwarding install of every cycle. The invariant modules
        // and the model checker must catch the resulting corruption.
        let mut skip_forwards = usize::from(crate::sabotage::skip_first_forward());

        // Objects the pre-root phase already marked are forwarded up
        // front, in index order, *without* rescanning their fields — the
        // exact analogue of the sequential drain not descending into
        // already-marked objects. (With ownee truncation this also keeps
        // the ownership phase's bounded-collection property.)
        for pid in 0..heap.page_count() {
            let meta = heap.page_meta(pid);
            let mut premarked = meta.live_mask() & meta.flag_word(Flags::MARK);
            while premarked != 0 {
                let slot = premarked.trailing_zeros() as usize;
                premarked &= premarked - 1;
                let r = heap
                    .page_meta(pid)
                    .handle(slot)
                    .expect("live bitmap slot must hold an object");
                if skip_forwards > 0 {
                    skip_forwards -= 1;
                } else {
                    heap.evac_forward(r)?;
                }
            }
        }

        let mut marked = 0u64;
        let mut edges = 0u64;
        let mut gray: VecDeque<ObjRef> = VecDeque::new();

        for &r in roots {
            if r.is_some() {
                self.process_edge(
                    heap,
                    hooks,
                    census,
                    path_mode,
                    ObjRef::NULL,
                    None,
                    r,
                    &mut gray,
                    &mut marked,
                    &mut skip_forwards,
                )?;
            }
        }

        while let Some(obj) = gray.pop_front() {
            // Snapshot the fields: hooks may borrow the heap mutably.
            let fields: Vec<(usize, ObjRef)> = heap
                .get(obj)?
                .refs()
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_some())
                .map(|(i, &c)| (i, c))
                .collect();
            for (i, child) in fields {
                edges += 1;
                self.process_edge(
                    heap,
                    hooks,
                    census,
                    path_mode,
                    obj,
                    Some(i),
                    child,
                    &mut gray,
                    &mut marked,
                    &mut skip_forwards,
                )?;
            }
        }
        Ok((marked, edges))
    }

    /// Processes one scan-frontier edge `parent.field -> child`: evacuate
    /// on first arrival (calling `visit_new`), or report the extra edge
    /// (`visit_marked`) if the child's forwarding word is already
    /// installed — which is exactly what the MARK bit means here.
    #[allow(clippy::too_many_arguments)]
    fn process_edge<H: TraceHooks>(
        &mut self,
        heap: &mut Heap,
        hooks: &mut H,
        census: &mut Option<CensusSink>,
        path_mode: bool,
        parent: ObjRef,
        field: Option<usize>,
        child: ObjRef,
        gray: &mut VecDeque<ObjRef>,
        marked: &mut u64,
        skip_forwards: &mut usize,
    ) -> Result<(), HeapError> {
        if heap.has_flag(child, Flags::MARK)? {
            let ctx =
                TraceCtx::from_provenance(path_mode.then_some(&self.prov), parent, child, field);
            hooks.visit_marked(heap, child, &ctx);
            return Ok(());
        }
        heap.set_flag(child, Flags::MARK)?;
        *marked += 1;
        if *skip_forwards > 0 {
            *skip_forwards -= 1;
        } else {
            heap.evac_forward(child)?;
        }
        if path_mode && parent.is_some() {
            if let Some(f) = field {
                self.prov.record(child, parent, f);
            }
        }
        if let Some(sink) = census.as_mut() {
            sink.observe(heap, child);
        }
        let action = {
            let ctx =
                TraceCtx::from_provenance(path_mode.then_some(&self.prov), parent, child, field);
            hooks.visit_new(heap, child, &ctx)
        };
        if action == Visit::Descend {
            gray.push_back(child);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHooks;
    use crate::path::HeapPath;
    use gca_heap::SpaceKind;

    fn semispace_heap() -> Heap {
        Heap::with_space(SpaceKind::Semispace)
    }

    #[test]
    fn unreachable_objects_are_reclaimed() {
        let mut heap = semispace_heap();
        let c = heap.register_class("T", &["f"]);
        let root = heap.alloc(c, 1, 0).unwrap();
        let kept = heap.alloc(c, 1, 0).unwrap();
        let dead1 = heap.alloc(c, 1, 0).unwrap();
        let dead2 = heap.alloc(c, 1, 0).unwrap();
        heap.set_ref_field(root, 0, kept).unwrap();
        heap.set_ref_field(dead1, 0, dead2).unwrap();

        let mut gc = CopyingCollector::new();
        let cycle = gc.collect(&mut heap, &[root], &mut NoHooks).unwrap();
        assert_eq!(cycle.objects_marked, 2);
        assert_eq!(cycle.objects_swept, 2);
        assert!(heap.is_valid(root) && heap.is_valid(kept));
        assert!(!heap.is_valid(dead1) && !heap.is_valid(dead2));
        assert!(heap.verify().is_empty());
    }

    #[test]
    fn survivors_are_relocated_and_compacted() {
        let mut heap = semispace_heap();
        let c = heap.register_class("T", &["f"]);
        let root = heap.alloc(c, 1, 2).unwrap();
        let _hole = heap.alloc(c, 1, 50).unwrap(); // dies, leaves a hole
        let kept = heap.alloc(c, 1, 2).unwrap();
        heap.set_ref_field(root, 0, kept).unwrap();
        let before_root = heap.space().address_of(root.index()).unwrap();

        let mut gc = CopyingCollector::new();
        gc.collect(&mut heap, &[root], &mut NoHooks).unwrap();

        let after_root = heap.space().address_of(root.index()).unwrap();
        let after_kept = heap.space().address_of(kept.index()).unwrap();
        assert_ne!(before_root, after_root, "root moved to the other space");
        // BFS order: root first, then kept, contiguous (hole squeezed out).
        let root_words = heap.get(root).unwrap().size_words();
        assert_eq!(after_kept, after_root + root_words as u64);
        assert_eq!(
            heap.space().from_space_used(),
            (root_words + heap.get(kept).unwrap().size_words()) as u64
        );
    }

    #[test]
    fn handles_cycles_and_self_loops() {
        let mut heap = semispace_heap();
        let c = heap.register_class("T", &["f", "g"]);
        let a = heap.alloc(c, 2, 0).unwrap();
        let b = heap.alloc(c, 2, 0).unwrap();
        heap.set_ref_field(a, 0, b).unwrap();
        heap.set_ref_field(b, 0, a).unwrap();
        heap.set_ref_field(a, 1, a).unwrap();
        let mut gc = CopyingCollector::new();
        let cycle = gc.collect(&mut heap, &[a], &mut NoHooks).unwrap();
        assert_eq!(cycle.objects_marked, 2);
        assert_eq!(cycle.edges_traced, 3);
        assert_eq!(cycle.objects_swept, 0);
    }

    /// Hooks that record first visits, re-visits and paths breadth-first.
    #[derive(Default)]
    struct Recorder {
        new: Vec<ObjRef>,
        marked: Vec<ObjRef>,
        paths: Vec<(ObjRef, HeapPath)>,
    }

    impl TraceHooks for Recorder {
        fn wants_paths(&self) -> bool {
            true
        }
        fn visit_new(&mut self, heap: &mut Heap, obj: ObjRef, ctx: &TraceCtx<'_>) -> Visit {
            self.new.push(obj);
            self.paths.push((obj, ctx.current_path(heap)));
            Visit::Descend
        }
        fn visit_marked(&mut self, _h: &mut Heap, obj: ObjRef, _c: &TraceCtx<'_>) {
            self.marked.push(obj);
        }
    }

    #[test]
    fn visit_multiplicities_match_mark_sweep() {
        // diamond: root -> {l, r} -> shared ; one extra edge to shared.
        let mut heap = semispace_heap();
        let c = heap.register_class("T", &["a", "b"]);
        let root = heap.alloc(c, 2, 0).unwrap();
        let l = heap.alloc(c, 2, 0).unwrap();
        let r = heap.alloc(c, 2, 0).unwrap();
        let shared = heap.alloc(c, 2, 0).unwrap();
        heap.set_ref_field(root, 0, l).unwrap();
        heap.set_ref_field(root, 1, r).unwrap();
        heap.set_ref_field(l, 0, shared).unwrap();
        heap.set_ref_field(r, 0, shared).unwrap();

        let mut gc = CopyingCollector::new();
        let mut rec = Recorder::default();
        let cycle = gc.collect(&mut heap, &[root], &mut rec).unwrap();
        assert_eq!(rec.new.len(), 4, "one visit_new per object");
        assert_eq!(rec.marked, vec![shared], "one re-visit per extra edge");
        assert_eq!(cycle.edges_traced, 4);
        // Breadth-first order: root, then its children, then the leaf.
        assert_eq!(rec.new, vec![root, l, r, shared]);
    }

    #[test]
    fn paths_follow_first_arrival_edges() {
        // root -> left, root -> right -> leaf (as in the tracer test).
        let mut heap = semispace_heap();
        let c = heap.register_class("Node", &["l", "r"]);
        let root = heap.alloc(c, 2, 0).unwrap();
        let left = heap.alloc(c, 2, 0).unwrap();
        let right = heap.alloc(c, 2, 0).unwrap();
        let leaf = heap.alloc(c, 2, 0).unwrap();
        heap.set_ref_field(root, 0, left).unwrap();
        heap.set_ref_field(root, 1, right).unwrap();
        heap.set_ref_field(right, 0, leaf).unwrap();

        let mut gc = CopyingCollector::new();
        let mut rec = Recorder::default();
        gc.collect(&mut heap, &[root], &mut rec).unwrap();

        let path_leaf = &rec.paths.iter().find(|(o, _)| *o == leaf).unwrap().1;
        let chain: Vec<ObjRef> = path_leaf.steps().iter().map(|s| s.object).collect();
        assert_eq!(chain, vec![root, right, leaf]);
        assert_eq!(path_leaf.steps()[0].field, None);
        assert_eq!(path_leaf.steps()[1].field, Some(1)); // root.r
        assert_eq!(path_leaf.steps()[2].field, Some(0)); // right.l
    }

    #[test]
    fn sticky_flags_survive_and_per_gc_flags_clear() {
        let mut heap = semispace_heap();
        let c = heap.register_class("T", &[]);
        let root = heap.alloc(c, 0, 0).unwrap();
        heap.set_flag(root, Flags::DEAD | Flags::UNSHARED | Flags::OWNEE)
            .unwrap();
        heap.set_flag(root, Flags::OWNED).unwrap();
        let mut gc = CopyingCollector::new();
        gc.collect(&mut heap, &[root], &mut NoHooks).unwrap();
        assert!(!heap.has_flag(root, Flags::MARK).unwrap());
        assert!(!heap.has_flag(root, Flags::OWNED).unwrap());
        assert!(heap
            .has_flag(root, Flags::DEAD | Flags::UNSHARED | Flags::OWNEE)
            .unwrap());
    }

    /// Pre-root-phase hooks that mark one object's children in advance,
    /// simulating the ownership phase.
    struct Premarker {
        target: ObjRef,
    }

    impl TraceHooks for Premarker {
        fn pre_root_phase(
            &mut self,
            heap: &mut Heap,
            tracer: &mut Tracer,
        ) -> Result<(), HeapError> {
            tracer.push_children_of(heap, self.target)?;
            tracer.drain(heap, &mut NoHooks)?;
            Ok(())
        }
    }

    #[test]
    fn pre_root_phase_marks_are_forwarded_not_rescanned() {
        // unrooted -> child: the pre-phase marks `child`; it must survive
        // the evacuation (floating garbage, §2.5.2 trade-off) even though
        // no root reaches it, and be reclaimed next cycle.
        let mut heap = semispace_heap();
        let c = heap.register_class("T", &["f"]);
        let unrooted = heap.alloc(c, 1, 0).unwrap();
        let child = heap.alloc(c, 1, 0).unwrap();
        heap.set_ref_field(unrooted, 0, child).unwrap();
        let mut gc = CopyingCollector::new();
        let mut hooks = Premarker { target: unrooted };
        let cycle = gc.collect(&mut heap, &[], &mut hooks).unwrap();
        assert!(!heap.is_valid(unrooted));
        assert!(heap.is_valid(child), "pre-phase mark kept it resident");
        assert_eq!(cycle.pre_root_edges, 1);
        assert!(
            heap.space().address_of(child.index()).is_some(),
            "floating garbage was evacuated"
        );
        gc.collect(&mut heap, &[], &mut NoHooks).unwrap();
        assert!(!heap.is_valid(child));
    }

    #[test]
    fn census_cycle_tallies_evacuated_objects() {
        let mut heap = semispace_heap();
        let c = heap.register_class("T", &["f"]);
        let root = heap.alloc(c, 1, 0).unwrap();
        let kept = heap.alloc(c, 1, 0).unwrap();
        let _dead = heap.alloc(c, 1, 0).unwrap();
        heap.set_ref_field(root, 0, kept).unwrap();
        let mut gc = CopyingCollector::new();
        let (cycle, sink) = gc
            .collect_census(&mut heap, &[root], &mut NoHooks, CensusSink::new())
            .unwrap();
        assert_eq!(cycle.objects_marked, 2);
        assert_eq!(sink.total_objects(), 2);
        for &slot in sink.marked_slots() {
            assert!(heap.object_at(slot).is_some());
        }
        // Sink was taken back out; a plain collect is unaffected.
        let cycle2 = gc.collect(&mut heap, &[root], &mut NoHooks).unwrap();
        assert_eq!(cycle2.objects_marked, 2);
    }

    #[test]
    fn census_counts_pre_root_phase_marks() {
        let mut heap = semispace_heap();
        let c = heap.register_class("T", &["f"]);
        let unrooted = heap.alloc(c, 1, 0).unwrap();
        let child = heap.alloc(c, 1, 0).unwrap();
        heap.set_ref_field(unrooted, 0, child).unwrap();
        let mut gc = CopyingCollector::new();
        let mut hooks = Premarker { target: unrooted };
        let (_, sink) = gc
            .collect_census(&mut heap, &[], &mut hooks, CensusSink::new())
            .unwrap();
        assert_eq!(sink.total_objects(), 1);
    }

    #[test]
    fn empty_heap_collects_cleanly() {
        let mut heap = semispace_heap();
        let mut gc = CopyingCollector::new();
        let cycle = gc.collect(&mut heap, &[], &mut NoHooks).unwrap();
        assert_eq!(cycle.objects_marked, 0);
        assert_eq!(cycle.objects_swept, 0);
        assert_eq!(gc.stats().collections, 1);
        gc.reset_stats();
        assert_eq!(gc.stats().collections, 0);
    }

    #[test]
    fn allocation_between_cycles_lands_in_new_from_space() {
        let mut heap = semispace_heap();
        let c = heap.register_class("T", &[]);
        let root = heap.alloc(c, 0, 0).unwrap();
        let mut gc = CopyingCollector::new();
        gc.collect(&mut heap, &[root], &mut NoHooks).unwrap();
        let root_addr = heap.space().address_of(root.index()).unwrap();
        let fresh = heap.alloc(c, 0, 0).unwrap();
        let fresh_addr = heap.space().address_of(fresh.index()).unwrap();
        assert!(fresh_addr > root_addr, "bump-allocated after the survivors");
        assert!(heap.verify().is_empty());
        gc.collect(&mut heap, &[root, fresh], &mut NoHooks).unwrap();
        assert!(heap.is_valid(fresh));
        assert!(heap.verify().is_empty());
    }
}
