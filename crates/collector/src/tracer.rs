//! The tracing engine: worklist management, marking, and on-demand path
//! reconstruction.

use gca_heap::{Flags, Heap, HeapError, ObjRef};

use crate::census::CensusSink;
use crate::hooks::{TraceHooks, Visit};
use crate::path::{HeapPath, PathStep};

/// Sentinel field index for worklist entries pushed from a root.
const ROOT_FIELD: u32 = u32::MAX;

/// One worklist entry. `on_path` is the Rust spelling of the paper's
/// low-order tag bit: "we pop a reference from the worklist, set its low
/// order bit and push it back onto the worklist; then we continue to scan
/// the object normally" (§2.7). Entries also remember the reference-field
/// index they were pushed through, which lets reports name the exact field
/// that keeps an object alive.
#[derive(Debug, Clone, Copy)]
struct Entry {
    obj: ObjRef,
    field: u32,
    on_path: bool,
}

/// The marking engine used by [`crate::Collector`], exposed so that
/// [`TraceHooks::pre_root_phase`] implementations (the ownership phase) can
/// drive tracing from arbitrary start objects before the root scan.
///
/// In *path mode* the tracer keeps gray objects on the worklist with an
/// on-path tag; at any instant the tagged subset of the worklist, bottom to
/// top, is the exact path from a root to the object currently being
/// scanned. [`TraceCtx::current_path`] snapshots it. In plain mode (the
/// Base configuration) no tags are pushed and paths are unavailable.
#[derive(Debug, Default)]
pub struct Tracer {
    entries: Vec<Entry>,
    path_mode: bool,
    objects_marked: u64,
    edges_traced: u64,
    census: Option<CensusSink>,
}

impl Tracer {
    /// Creates a tracer in plain (no-path) mode.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Enables or disables the path-tracking worklist for subsequent work.
    pub fn set_path_mode(&mut self, on: bool) {
        self.path_mode = on;
    }

    /// Whether path tracking is active.
    pub fn path_mode(&self) -> bool {
        self.path_mode
    }

    /// Resets per-cycle counters and drops any leftover worklist entries.
    ///
    /// An installed census sink is deliberately left untouched: the caller
    /// installs it just before a cycle (see
    /// [`crate::Collector::collect_census`]) and must see everything marked
    /// during that cycle, including objects marked by hooks-driven pre-root
    /// drains that happen after `begin_cycle`.
    pub fn begin_cycle(&mut self) {
        self.entries.clear();
        self.objects_marked = 0;
        self.edges_traced = 0;
    }

    /// Installs a census sink; every object marked by subsequent
    /// [`Tracer::drain`] calls is tallied into it until it is taken back.
    pub fn set_census(&mut self, sink: CensusSink) {
        self.census = Some(sink);
    }

    /// Removes and returns the installed census sink, if any.
    pub fn take_census(&mut self) -> Option<CensusSink> {
        self.census.take()
    }

    /// Objects marked so far this cycle.
    pub fn objects_marked(&self) -> u64 {
        self.objects_marked
    }

    /// Edges traced so far this cycle.
    pub fn edges_traced(&self) -> u64 {
        self.edges_traced
    }

    /// Queues a root reference for scanning (null roots are ignored).
    pub fn push_root(&mut self, r: ObjRef) {
        if r.is_some() {
            self.entries.push(Entry {
                obj: r,
                field: ROOT_FIELD,
                on_path: false,
            });
        }
    }

    /// Queues the non-null reference fields of `obj` without visiting `obj`
    /// itself. The ownership phase uses this both to start scans from
    /// owners ("we avoid marking the owner object when we do the ownership
    /// scan", §2.5.2) and to resume scanning below queued ownees.
    ///
    /// # Errors
    ///
    /// Reference-validity errors if `obj` is not live.
    pub fn push_children_of(&mut self, heap: &Heap, obj: ObjRef) -> Result<(), HeapError> {
        let o = heap.get(obj)?;
        for (i, &c) in o.refs().iter().enumerate() {
            if c.is_some() {
                self.edges_traced += 1;
                self.entries.push(Entry {
                    obj: c,
                    field: i as u32,
                    on_path: false,
                });
            }
        }
        Ok(())
    }

    /// Processes the worklist to exhaustion, marking objects and invoking
    /// `hooks` at each first visit and re-visit.
    ///
    /// # Errors
    ///
    /// Propagates reference-validity errors, which indicate a collector
    /// invariant violation (the heap never contains edges to dead objects).
    pub fn drain<H: TraceHooks>(
        &mut self,
        heap: &mut Heap,
        hooks: &mut H,
    ) -> Result<(), HeapError> {
        while let Some(entry) = self.entries.pop() {
            if entry.on_path {
                // The paper: "If we encounter a reference whose low-order
                // bit is set, we discard it — this simply indicates that we
                // have already visited all objects reachable from it."
                continue;
            }
            let r = entry.obj;
            if heap.has_flag(r, Flags::MARK)? {
                let ctx = TraceCtx {
                    entries: &self.entries,
                    path_mode: self.path_mode,
                    tip: r,
                    tip_field: field_index(entry.field),
                    prov: None,
                    parent: ObjRef::NULL,
                };
                hooks.visit_marked(heap, r, &ctx);
                continue;
            }
            heap.set_flag(r, Flags::MARK)?;
            self.objects_marked += 1;
            if let Some(census) = self.census.as_mut() {
                census.observe(heap, r);
            }
            let action = {
                let ctx = TraceCtx {
                    entries: &self.entries,
                    path_mode: self.path_mode,
                    tip: r,
                    tip_field: field_index(entry.field),
                    prov: None,
                    parent: ObjRef::NULL,
                };
                hooks.visit_new(heap, r, &ctx)
            };
            if action == Visit::Skip {
                continue;
            }
            if self.path_mode {
                self.entries.push(Entry {
                    obj: r,
                    field: entry.field,
                    on_path: true,
                });
            }
            let o = heap.get(r)?;
            for (i, &c) in o.refs().iter().enumerate() {
                if c.is_some() {
                    self.edges_traced += 1;
                    self.entries.push(Entry {
                        obj: c,
                        field: i as u32,
                        on_path: false,
                    });
                }
            }
        }
        Ok(())
    }
}

#[inline]
fn field_index(raw: u32) -> Option<usize> {
    if raw == ROOT_FIELD {
        None
    } else {
        Some(raw as usize)
    }
}

/// First-arrival parent edges recorded during a breadth-first scan, used
/// by the copying collector to reconstruct root-to-object paths.
///
/// The sequential tracer gets paths for free from its LIFO worklist (the
/// on-path tag bits, §2.7); a Cheney scan has no stack to read the path
/// off, so the copying backend records, for every object it evacuates, the
/// edge through which the object was *first* reached. Walking those edges
/// from a violating object back to a root reproduces a Figure-1-style
/// retaining path. The table is keyed by heap slot and rebuilt each cycle;
/// recording is skipped entirely in plain (no-path) mode.
#[derive(Debug, Default)]
pub struct Provenance {
    /// Per-slot first-arrival edge: `(parent, field)`; a null parent means
    /// "reached from a root" (or never reached).
    parents: Vec<(ObjRef, u32)>,
}

impl Provenance {
    /// Creates an empty provenance table.
    pub fn new() -> Provenance {
        Provenance::default()
    }

    /// Clears the table and sizes it for a heap of `slot_count` slots.
    pub fn begin_cycle(&mut self, slot_count: usize) {
        self.parents.clear();
        self.parents.resize(slot_count, (ObjRef::NULL, ROOT_FIELD));
    }

    /// Records that `child` was first reached through `parent`'s reference
    /// field `field`. Only the first record for a child is kept — exactly
    /// the first-arrival discipline of the scan itself.
    pub fn record(&mut self, child: ObjRef, parent: ObjRef, field: usize) {
        let slot = child.index() as usize;
        if slot >= self.parents.len() {
            self.parents.resize(slot + 1, (ObjRef::NULL, ROOT_FIELD));
        }
        if self.parents[slot].0.is_null() {
            self.parents[slot] = (parent, field as u32);
        }
    }

    /// The first-arrival edge of `obj`: `(parent, field)`, or `None` if
    /// `obj` was reached from a root (or not recorded).
    pub fn parent_of(&self, obj: ObjRef) -> Option<(ObjRef, usize)> {
        match self.parents.get(obj.index() as usize) {
            Some(&(p, f)) if p.is_some() => Some((p, f as usize)),
            _ => None,
        }
    }
}

/// A view of the tracer's state handed to [`TraceHooks`] callbacks, from
/// which the current root-to-object path can be reconstructed.
#[derive(Debug)]
pub struct TraceCtx<'a> {
    entries: &'a [Entry],
    path_mode: bool,
    tip: ObjRef,
    tip_field: Option<usize>,
    /// Breadth-first provenance table, used instead of the worklist when
    /// the context comes from the copying collector's Cheney scan.
    prov: Option<&'a Provenance>,
    /// The scanning parent for a provenance-mode context (null when the
    /// tip was reached from a root).
    parent: ObjRef,
}

impl TraceCtx<'_> {
    /// A context with no path information, for tests and for hooks invoked
    /// outside a trace.
    pub fn no_paths() -> TraceCtx<'static> {
        TraceCtx {
            entries: &[],
            path_mode: false,
            tip: ObjRef::NULL,
            tip_field: None,
            prov: None,
            parent: ObjRef::NULL,
        }
    }

    /// A context backed by a breadth-first [`Provenance`] table instead of
    /// the sequential tracer's worklist: the copying collector builds one
    /// per processed edge. `parent` is the object whose field is being
    /// scanned (null for a root edge), `tip_field` the index of that
    /// field. Pass `prov = None` for plain (no-path) mode; paths are then
    /// unavailable, mirroring the Base configuration.
    pub fn from_provenance<'a>(
        prov: Option<&'a Provenance>,
        parent: ObjRef,
        tip: ObjRef,
        tip_field: Option<usize>,
    ) -> TraceCtx<'a> {
        TraceCtx {
            entries: &[],
            path_mode: prov.is_some(),
            tip,
            tip_field,
            prov,
            parent,
        }
    }

    /// The object the current hook call is about.
    pub fn tip(&self) -> ObjRef {
        self.tip
    }

    /// Whether path reconstruction is available (path-tracking worklist in
    /// use).
    pub fn has_paths(&self) -> bool {
        self.path_mode
    }

    /// The heap edge through which the hook's object was reached: the
    /// parent object and the parent's reference-field index. `None` if the
    /// object was reached from a root, or in plain mode.
    ///
    /// The `ForceTrue` violation reaction uses this to null out the
    /// references keeping an asserted-dead object alive (§2.6).
    pub fn parent_edge(&self) -> Option<(ObjRef, usize)> {
        let field = self.tip_field?;
        if self.prov.is_some() {
            return self.parent.is_some().then_some((self.parent, field));
        }
        let parent = self.entries.iter().rev().find(|e| e.on_path)?;
        Some((parent.obj, field))
    }

    /// Reconstructs the path from the root (or phase start object) to the
    /// hook's object: the on-path suffix of the worklist plus the object
    /// itself. Returns [`HeapPath::empty`] in plain mode, mirroring the
    /// Base configuration's lack of debugging information.
    pub fn current_path(&self, heap: &Heap) -> HeapPath {
        if !self.path_mode {
            return HeapPath::empty();
        }
        if let Some(prov) = self.prov {
            return self.provenance_path(heap, prov);
        }
        let mut steps: Vec<PathStep> = Vec::new();
        for e in self.entries.iter().filter(|e| e.on_path) {
            if let Ok(o) = heap.get(e.obj) {
                steps.push(PathStep {
                    object: e.obj,
                    class: o.class(),
                    field: field_index(e.field),
                });
            }
        }
        if self.tip.is_some() {
            if let Ok(o) = heap.get(self.tip) {
                steps.push(PathStep {
                    object: self.tip,
                    class: o.class(),
                    field: self.tip_field,
                });
            }
        }
        HeapPath::new(steps)
    }

    /// Path reconstruction for provenance-mode contexts: walk the
    /// first-arrival edges from the scanning parent back to a root, then
    /// append the tip. The provenance graph is a forest (each edge points
    /// at an earlier-visited object), so the walk terminates.
    fn provenance_path(&self, heap: &Heap, prov: &Provenance) -> HeapPath {
        let mut steps: Vec<PathStep> = Vec::new();
        let mut cur = self.parent;
        while cur.is_some() {
            match heap.get(cur) {
                Ok(o) => {
                    let edge = prov.parent_of(cur);
                    steps.push(PathStep {
                        object: cur,
                        class: o.class(),
                        field: edge.map(|(_, f)| f),
                    });
                    cur = edge.map(|(p, _)| p).unwrap_or(ObjRef::NULL);
                }
                Err(_) => break,
            }
        }
        steps.reverse();
        if self.tip.is_some() {
            if let Ok(o) = heap.get(self.tip) {
                steps.push(PathStep {
                    object: self.tip,
                    class: o.class(),
                    field: self.tip_field,
                });
            }
        }
        HeapPath::new(steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHooks;

    fn linked_heap() -> (Heap, Vec<ObjRef>) {
        // chain: a -> b -> c, plus isolated d
        let mut heap = Heap::new();
        let node = heap.register_class("Node", &["next"]);
        let a = heap.alloc(node, 1, 0).unwrap();
        let b = heap.alloc(node, 1, 0).unwrap();
        let c = heap.alloc(node, 1, 0).unwrap();
        let d = heap.alloc(node, 1, 0).unwrap();
        heap.set_ref_field(a, 0, b).unwrap();
        heap.set_ref_field(b, 0, c).unwrap();
        (heap, vec![a, b, c, d])
    }

    #[test]
    fn marks_reachable_only() {
        let (mut heap, objs) = linked_heap();
        let mut tr = Tracer::new();
        tr.begin_cycle();
        tr.push_root(objs[0]);
        tr.drain(&mut heap, &mut NoHooks).unwrap();
        assert!(heap.has_flag(objs[0], Flags::MARK).unwrap());
        assert!(heap.has_flag(objs[1], Flags::MARK).unwrap());
        assert!(heap.has_flag(objs[2], Flags::MARK).unwrap());
        assert!(!heap.has_flag(objs[3], Flags::MARK).unwrap());
        assert_eq!(tr.objects_marked(), 3);
        assert_eq!(tr.edges_traced(), 2);
    }

    #[test]
    fn handles_cycles() {
        let mut heap = Heap::new();
        let node = heap.register_class("Node", &["next"]);
        let a = heap.alloc(node, 1, 0).unwrap();
        let b = heap.alloc(node, 1, 0).unwrap();
        heap.set_ref_field(a, 0, b).unwrap();
        heap.set_ref_field(b, 0, a).unwrap(); // cycle
        let mut tr = Tracer::new();
        tr.begin_cycle();
        tr.push_root(a);
        tr.drain(&mut heap, &mut NoHooks).unwrap();
        assert_eq!(tr.objects_marked(), 2);
    }

    #[test]
    fn self_loop_marks_once() {
        let mut heap = Heap::new();
        let node = heap.register_class("Node", &["next"]);
        let a = heap.alloc(node, 1, 0).unwrap();
        heap.set_ref_field(a, 0, a).unwrap();
        let mut tr = Tracer::new();
        tr.begin_cycle();
        tr.push_root(a);
        tr.drain(&mut heap, &mut NoHooks).unwrap();
        assert_eq!(tr.objects_marked(), 1);
        assert_eq!(tr.edges_traced(), 1);
    }

    #[test]
    fn null_roots_ignored() {
        let mut heap = Heap::new();
        let mut tr = Tracer::new();
        tr.begin_cycle();
        tr.push_root(ObjRef::NULL);
        tr.drain(&mut heap, &mut NoHooks).unwrap();
        assert_eq!(tr.objects_marked(), 0);
    }

    /// Hooks that record the path at each first visit.
    struct PathRecorder {
        paths: Vec<(ObjRef, HeapPath)>,
    }

    impl TraceHooks for PathRecorder {
        fn wants_paths(&self) -> bool {
            true
        }
        fn visit_new(&mut self, heap: &mut Heap, obj: ObjRef, ctx: &TraceCtx<'_>) -> Visit {
            self.paths.push((obj, ctx.current_path(heap)));
            Visit::Descend
        }
    }

    #[test]
    fn paths_reconstruct_ancestor_chain() {
        let (mut heap, objs) = linked_heap();
        let mut tr = Tracer::new();
        tr.set_path_mode(true);
        tr.begin_cycle();
        tr.push_root(objs[0]);
        let mut rec = PathRecorder { paths: Vec::new() };
        tr.drain(&mut heap, &mut rec).unwrap();

        let path_c = &rec
            .paths
            .iter()
            .find(|(o, _)| *o == objs[2])
            .expect("c visited")
            .1;
        let chain: Vec<ObjRef> = path_c.steps().iter().map(|s| s.object).collect();
        assert_eq!(chain, vec![objs[0], objs[1], objs[2]]);
        // Root step has no field; the rest came through field 0 ("next").
        assert_eq!(path_c.steps()[0].field, None);
        assert_eq!(path_c.steps()[1].field, Some(0));
        assert_eq!(path_c.steps()[2].field, Some(0));
    }

    #[test]
    fn paths_branching_structure() {
        // root -> left, root -> right -> leaf; check leaf's path goes
        // through right, not left.
        let mut heap = Heap::new();
        let node = heap.register_class("Node", &["l", "r"]);
        let root = heap.alloc(node, 2, 0).unwrap();
        let left = heap.alloc(node, 2, 0).unwrap();
        let right = heap.alloc(node, 2, 0).unwrap();
        let leaf = heap.alloc(node, 2, 0).unwrap();
        heap.set_ref_field(root, 0, left).unwrap();
        heap.set_ref_field(root, 1, right).unwrap();
        heap.set_ref_field(right, 0, leaf).unwrap();

        let mut tr = Tracer::new();
        tr.set_path_mode(true);
        tr.begin_cycle();
        tr.push_root(root);
        let mut rec = PathRecorder { paths: Vec::new() };
        tr.drain(&mut heap, &mut rec).unwrap();

        let path_leaf = &rec.paths.iter().find(|(o, _)| *o == leaf).unwrap().1;
        let chain: Vec<ObjRef> = path_leaf.steps().iter().map(|s| s.object).collect();
        assert_eq!(chain, vec![root, right, leaf]);
        assert_eq!(path_leaf.steps()[1].field, Some(1)); // root.r
        assert_eq!(path_leaf.steps()[2].field, Some(0)); // right.l
    }

    /// Hooks that skip descending into a designated object.
    struct Skipper {
        skip: ObjRef,
    }

    impl TraceHooks for Skipper {
        fn visit_new(&mut self, _heap: &mut Heap, obj: ObjRef, _ctx: &TraceCtx<'_>) -> Visit {
            if obj == self.skip {
                Visit::Skip
            } else {
                Visit::Descend
            }
        }
    }

    #[test]
    fn skip_truncates_scan() {
        let (mut heap, objs) = linked_heap();
        let mut tr = Tracer::new();
        tr.begin_cycle();
        tr.push_root(objs[0]);
        let mut sk = Skipper { skip: objs[1] };
        tr.drain(&mut heap, &mut sk).unwrap();
        // b was marked but its children not scanned, so c stays unmarked.
        assert!(heap.has_flag(objs[1], Flags::MARK).unwrap());
        assert!(!heap.has_flag(objs[2], Flags::MARK).unwrap());
    }

    #[test]
    fn push_children_of_skips_start_object() {
        let (mut heap, objs) = linked_heap();
        let mut tr = Tracer::new();
        tr.begin_cycle();
        tr.push_children_of(&heap, objs[0]).unwrap();
        tr.drain(&mut heap, &mut NoHooks).unwrap();
        assert!(!heap.has_flag(objs[0], Flags::MARK).unwrap());
        assert!(heap.has_flag(objs[1], Flags::MARK).unwrap());
        assert!(heap.has_flag(objs[2], Flags::MARK).unwrap());
    }

    /// Hooks that record visit_marked (re-visit) calls.
    struct RevisitRecorder {
        revisits: Vec<ObjRef>,
    }

    impl TraceHooks for RevisitRecorder {
        fn visit_marked(&mut self, _heap: &mut Heap, obj: ObjRef, _ctx: &TraceCtx<'_>) {
            self.revisits.push(obj);
        }
    }

    #[test]
    fn second_edge_triggers_visit_marked() {
        // a -> shared, b -> shared; roots {a, b}.
        let mut heap = Heap::new();
        let node = heap.register_class("Node", &["x"]);
        let a = heap.alloc(node, 1, 0).unwrap();
        let b = heap.alloc(node, 1, 0).unwrap();
        let shared = heap.alloc(node, 1, 0).unwrap();
        heap.set_ref_field(a, 0, shared).unwrap();
        heap.set_ref_field(b, 0, shared).unwrap();
        let mut tr = Tracer::new();
        tr.begin_cycle();
        tr.push_root(a);
        tr.push_root(b);
        let mut rec = RevisitRecorder {
            revisits: Vec::new(),
        };
        tr.drain(&mut heap, &mut rec).unwrap();
        assert_eq!(rec.revisits, vec![shared]);
    }

    #[test]
    fn no_paths_ctx_is_empty() {
        let heap = Heap::new();
        let ctx = TraceCtx::no_paths();
        assert!(!ctx.has_paths());
        assert!(ctx.current_path(&heap).is_empty());
        assert!(ctx.tip().is_null());
    }

    #[test]
    fn provenance_keeps_first_arrival_edge() {
        let (heap, objs) = linked_heap();
        let mut prov = Provenance::new();
        prov.begin_cycle(heap.index_bound());
        prov.record(objs[1], objs[0], 0);
        prov.record(objs[1], objs[2], 0); // second arrival: ignored
        assert_eq!(prov.parent_of(objs[1]), Some((objs[0], 0)));
        assert_eq!(prov.parent_of(objs[0]), None, "roots have no parent");
    }

    #[test]
    fn provenance_ctx_reconstructs_chain() {
        // a -> b -> c as in the DFS test, but recorded breadth-first.
        let (heap, objs) = linked_heap();
        let mut prov = Provenance::new();
        prov.begin_cycle(heap.index_bound());
        prov.record(objs[1], objs[0], 0);
        prov.record(objs[2], objs[1], 0);

        // Hook call for the edge b.0 -> c.
        let ctx = TraceCtx::from_provenance(Some(&prov), objs[1], objs[2], Some(0));
        assert!(ctx.has_paths());
        assert_eq!(ctx.parent_edge(), Some((objs[1], 0)));
        let path = ctx.current_path(&heap);
        let chain: Vec<ObjRef> = path.steps().iter().map(|s| s.object).collect();
        assert_eq!(chain, vec![objs[0], objs[1], objs[2]]);
        assert_eq!(path.steps()[0].field, None);
        assert_eq!(path.steps()[1].field, Some(0));
        assert_eq!(path.steps()[2].field, Some(0));
    }

    #[test]
    fn provenance_ctx_root_edge() {
        let (heap, objs) = linked_heap();
        let prov = Provenance::new();
        let ctx = TraceCtx::from_provenance(Some(&prov), ObjRef::NULL, objs[0], None);
        assert_eq!(ctx.parent_edge(), None);
        let path = ctx.current_path(&heap);
        let chain: Vec<ObjRef> = path.steps().iter().map(|s| s.object).collect();
        assert_eq!(chain, vec![objs[0]]);
    }

    #[test]
    fn provenance_ctx_plain_mode_has_no_paths() {
        let (heap, objs) = linked_heap();
        let ctx = TraceCtx::from_provenance(None, objs[0], objs[1], Some(0));
        assert!(!ctx.has_paths());
        assert_eq!(ctx.parent_edge(), None);
        assert!(ctx.current_path(&heap).is_empty());
    }
}
