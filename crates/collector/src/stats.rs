//! Collection statistics and timing.

use std::fmt;
use std::time::Duration;

/// Statistics for a single collection cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleStats {
    /// Wall time of the whole cycle.
    pub total: Duration,
    /// Time spent in the hooks' pre-root phase (the ownership phase when
    /// the assertion engine is attached; zero otherwise).
    pub pre_root: Duration,
    /// Time spent marking from the roots.
    pub mark: Duration,
    /// Time spent sweeping.
    pub sweep: Duration,
    /// Objects newly marked this cycle (live objects).
    pub objects_marked: u64,
    /// Reference edges traversed.
    pub edges_traced: u64,
    /// The subset of `edges_traced` traversed during the hooks' pre-root
    /// phase (ownership-assertion work; zero without an engine attached).
    pub pre_root_edges: u64,
    /// Objects reclaimed by the sweep.
    pub objects_swept: u64,
    /// Words reclaimed by the sweep.
    pub words_swept: u64,
}

impl fmt::Display for CycleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gc cycle: {:?} total ({:?} pre-root, {:?} mark, {:?} sweep), {} marked, {} edges, {} swept ({} words)",
            self.total,
            self.pre_root,
            self.mark,
            self.sweep,
            self.objects_marked,
            self.edges_traced,
            self.objects_swept,
            self.words_swept
        )
    }
}

/// Cumulative statistics over the lifetime of a [`crate::Collector`].
///
/// The benchmark harness reads `total_gc_time` to reproduce the GC-time
/// figures (Figures 3 and 5 report GC-time overhead separately from total
/// run time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Number of collection cycles performed.
    pub collections: u64,
    /// Total wall time across all cycles.
    pub total_gc_time: Duration,
    /// Total pre-root (ownership) phase time.
    pub pre_root_time: Duration,
    /// Total marking time.
    pub mark_time: Duration,
    /// Total sweeping time.
    pub sweep_time: Duration,
    /// Total objects marked across all cycles.
    pub objects_marked: u64,
    /// Total edges traced across all cycles.
    pub edges_traced: u64,
    /// Total pre-root (ownership) phase edges across all cycles.
    pub pre_root_edges: u64,
    /// Total objects reclaimed across all cycles.
    pub objects_swept: u64,
    /// Total words reclaimed across all cycles.
    pub words_swept: u64,
}

impl GcStats {
    /// Creates zeroed statistics.
    pub fn new() -> GcStats {
        GcStats::default()
    }

    /// Folds one cycle into the totals.
    pub fn absorb(&mut self, cycle: &CycleStats) {
        self.collections += 1;
        self.total_gc_time += cycle.total;
        self.pre_root_time += cycle.pre_root;
        self.mark_time += cycle.mark;
        self.sweep_time += cycle.sweep;
        self.objects_marked += cycle.objects_marked;
        self.edges_traced += cycle.edges_traced;
        self.pre_root_edges += cycle.pre_root_edges;
        self.objects_swept += cycle.objects_swept;
        self.words_swept += cycle.words_swept;
    }
}

impl fmt::Display for GcStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} collections, {:?} gc time ({:?} pre-root, {:?} mark, {:?} sweep), {} marked, {} swept",
            self.collections,
            self.total_gc_time,
            self.pre_root_time,
            self.mark_time,
            self.sweep_time,
            self.objects_marked,
            self.objects_swept
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut total = GcStats::new();
        let cycle = CycleStats {
            total: Duration::from_millis(10),
            pre_root: Duration::from_millis(1),
            mark: Duration::from_millis(6),
            sweep: Duration::from_millis(3),
            objects_marked: 100,
            edges_traced: 250,
            pre_root_edges: 15,
            objects_swept: 40,
            words_swept: 400,
        };
        total.absorb(&cycle);
        total.absorb(&cycle);
        assert_eq!(total.collections, 2);
        assert_eq!(total.total_gc_time, Duration::from_millis(20));
        assert_eq!(total.objects_marked, 200);
        assert_eq!(total.edges_traced, 500);
        assert_eq!(total.pre_root_edges, 30);
        assert_eq!(total.objects_swept, 80);
        assert_eq!(total.words_swept, 800);
    }

    #[test]
    fn displays_are_nonempty() {
        assert!(!CycleStats::default().to_string().is_empty());
        assert!(!GcStats::default().to_string().is_empty());
    }
}
