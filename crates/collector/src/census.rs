//! Mark-time heap-census accumulation.
//!
//! A [`CensusSink`] rides along with the mark phase and tallies, for every
//! object whose mark bit is claimed, its class (object and word counts) and
//! its heap slot. The sink deliberately knows nothing about class *names*
//! or allocation sites: attribution is resolved after the cycle by the VM,
//! which owns the type registry and the per-slot allocation-site table.
//! Recording slots is sound because every observed object was marked and
//! therefore survives the sweep — its slot still resolves afterwards.
//!
//! Accumulation is pure summation, so per-worker shards from the parallel
//! mark phase merge with [`CensusSink::absorb`] in any order and produce
//! the same totals — the same determinism argument as the engine's sharded
//! instance counters.

use std::collections::HashMap;

use gca_heap::{ClassId, Flags, Heap, ObjRef};

/// Returns whether any live object already carries the mark bit — stale
/// marks left behind by a minor collection on a non-generational heap. A
/// census riding the next full cycle legitimately undercounts then (the
/// mark phase never re-claims a pre-marked object), so callers skip the
/// [`CensusSink::verify_live_totals`] cross-check for such cycles.
pub fn heap_has_stale_marks(heap: &Heap) -> bool {
    (0..heap.page_count()).any(|pid| {
        let meta = heap.page_meta(pid);
        meta.live_mask() & meta.flag_word(Flags::MARK) != 0
    })
}

/// Per-class running totals: `(objects, words)`.
type ClassTally = (u64, u64);

/// A mark-time census accumulator.
///
/// The sequential [`crate::Tracer`] carries an optional sink and feeds it
/// on every first visit; parallel-mark visitors carry one per shard. The
/// caller observes each object exactly once per cycle (the tracer and the
/// parallel mark both claim mark bits exactly once), so totals equal the
/// live population.
#[derive(Debug, Default, Clone)]
pub struct CensusSink {
    classes: HashMap<ClassId, ClassTally>,
    marked_slots: Vec<u32>,
}

impl CensusSink {
    /// Creates an empty sink.
    pub fn new() -> CensusSink {
        CensusSink::default()
    }

    /// Tallies one newly-marked object. Invalid references are ignored
    /// (defensive; the mark phase only observes live objects).
    pub fn observe(&mut self, heap: &Heap, obj: ObjRef) {
        if let Ok(o) = heap.get(obj) {
            let tally = self.classes.entry(o.class()).or_insert((0, 0));
            tally.0 += 1;
            tally.1 += o.size_words() as u64;
            self.marked_slots.push(obj.index());
        }
    }

    /// Folds another sink's totals into this one. Summation commutes, so
    /// merging parallel shards in any order is deterministic.
    pub fn absorb(&mut self, other: CensusSink) {
        for (class, (objects, words)) in other.classes {
            let tally = self.classes.entry(class).or_insert((0, 0));
            tally.0 += objects;
            tally.1 += words;
        }
        self.marked_slots.extend(other.marked_slots);
    }

    /// Per-class `(objects, words)` totals, in arbitrary order.
    pub fn classes(&self) -> impl Iterator<Item = (ClassId, u64, u64)> + '_ {
        self.classes
            .iter()
            .map(|(&class, &(objects, words))| (class, objects, words))
    }

    /// Heap slots of every observed object, in observation order.
    pub fn marked_slots(&self) -> &[u32] {
        &self.marked_slots
    }

    /// Total objects observed.
    pub fn total_objects(&self) -> u64 {
        self.classes.values().map(|&(objects, _)| objects).sum()
    }

    /// Drops all tallies, keeping allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.classes.clear();
        self.marked_slots.clear();
    }

    /// Debug-build heap cross-check: after the census cycle's sweep, the
    /// tallies must agree with a fresh walk of the live heap — the same
    /// per-class object and word totals, the same overall population and
    /// occupancy, and every recorded slot still resolving. Compiles away
    /// entirely in release builds. Callers must skip it for cycles that
    /// began with stale mark bits (see [`heap_has_stale_marks`]).
    pub fn verify_live_totals(&self, heap: &Heap) {
        if !cfg!(debug_assertions) {
            return;
        }
        let mut walked: HashMap<ClassId, ClassTally> = HashMap::new();
        let mut walked_words = 0u64;
        for (_, o) in heap.iter() {
            let tally = walked.entry(o.class()).or_insert((0, 0));
            tally.0 += 1;
            tally.1 += o.size_words() as u64;
            walked_words += o.size_words() as u64;
        }
        debug_assert_eq!(
            self.total_objects() as usize,
            heap.live_objects(),
            "census object total drifted from the live heap"
        );
        debug_assert_eq!(
            walked_words as usize,
            heap.occupied_words(),
            "heap occupancy accounting drifted from the live population"
        );
        for (class, objects, words) in self.classes() {
            let &(expect_objects, expect_words) = walked.get(&class).unwrap_or(&(0, 0));
            debug_assert_eq!(
                (objects, words),
                (expect_objects, expect_words),
                "census totals drifted for class {class:?}"
            );
        }
        debug_assert_eq!(
            walked.len(),
            self.classes.len(),
            "census missed a live class entirely"
        );
        for &slot in self.marked_slots() {
            debug_assert!(
                heap.object_at(slot).is_some(),
                "census slot {slot} no longer resolves after the sweep"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_class_heap() -> (Heap, Vec<ObjRef>) {
        let mut heap = Heap::new();
        let node = heap.register_class("Node", &["next"]);
        let blob = heap.register_class("Blob", &[]);
        let a = heap.alloc(node, 1, 0).unwrap();
        let b = heap.alloc(node, 1, 0).unwrap();
        let c = heap.alloc(blob, 0, 6).unwrap();
        (heap, vec![a, b, c])
    }

    #[test]
    fn observe_tallies_objects_words_and_slots() {
        let (heap, objs) = two_class_heap();
        let mut sink = CensusSink::new();
        for &o in &objs {
            sink.observe(&heap, o);
        }
        assert_eq!(sink.total_objects(), 3);
        assert_eq!(sink.marked_slots().len(), 3);
        let mut by_class: Vec<(u64, u64)> = sink.classes().map(|(_, o, w)| (o, w)).collect();
        by_class.sort_unstable();
        // Node: 2 objects, header(2)+1 ref each = 3 words; Blob: 2+6 = 8.
        assert_eq!(by_class, vec![(1, 8), (2, 6)]);
    }

    #[test]
    fn absorb_merges_shards_commutatively() {
        let (heap, objs) = two_class_heap();
        let mut left = CensusSink::new();
        let mut right = CensusSink::new();
        left.observe(&heap, objs[0]);
        right.observe(&heap, objs[1]);
        right.observe(&heap, objs[2]);

        let mut ab = left.clone();
        ab.absorb(right.clone());
        let mut ba = right;
        ba.absorb(left);

        let norm = |s: &CensusSink| {
            let mut v: Vec<_> = s.classes().collect();
            v.sort_unstable();
            let mut slots = s.marked_slots().to_vec();
            slots.sort_unstable();
            (v, slots)
        };
        assert_eq!(norm(&ab), norm(&ba));
        assert_eq!(ab.total_objects(), 3);
    }

    #[test]
    fn invalid_refs_are_ignored() {
        let heap = Heap::new();
        let mut sink = CensusSink::new();
        sink.observe(&heap, ObjRef::NULL);
        assert_eq!(sink.total_objects(), 0);
        assert!(sink.marked_slots().is_empty());
    }

    #[test]
    fn verify_live_totals_accepts_a_faithful_census() {
        let (heap, objs) = two_class_heap();
        let mut sink = CensusSink::new();
        for &o in &objs {
            sink.observe(&heap, o);
        }
        sink.verify_live_totals(&heap);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "census object total drifted")]
    fn verify_live_totals_catches_an_undercount() {
        let (heap, objs) = two_class_heap();
        let mut sink = CensusSink::new();
        sink.observe(&heap, objs[0]); // objs[1] and objs[2] missing
        sink.verify_live_totals(&heap);
    }

    #[test]
    fn stale_marks_are_detected() {
        let (heap, objs) = two_class_heap();
        assert!(!heap_has_stale_marks(&heap));
        heap.set_flag(objs[0], gca_heap::Flags::MARK).unwrap();
        assert!(heap_has_stale_marks(&heap));
    }

    #[test]
    fn clear_resets() {
        let (heap, objs) = two_class_heap();
        let mut sink = CensusSink::new();
        sink.observe(&heap, objs[0]);
        sink.clear();
        assert_eq!(sink.total_objects(), 0);
        assert!(sink.marked_slots().is_empty());
    }
}
