//! Property-based tests: the collector reclaims exactly the unreachable
//! objects of arbitrary random object graphs, in both worklist modes.

use gca_collector::{Collector, NoHooks, TraceCtx, TraceHooks, Visit};
use gca_heap::{Heap, ObjRef};
use proptest::prelude::*;
use std::collections::{HashSet, VecDeque};

/// Reference reachability: BFS over the heap from the roots.
fn reachable(heap: &Heap, roots: &[ObjRef]) -> HashSet<ObjRef> {
    let mut seen: HashSet<ObjRef> = HashSet::new();
    let mut queue: VecDeque<ObjRef> = roots.iter().copied().filter(|r| r.is_some()).collect();
    while let Some(r) = queue.pop_front() {
        if !seen.insert(r) {
            continue;
        }
        for &c in heap.get(r).unwrap().refs() {
            if c.is_some() && !seen.contains(&c) {
                queue.push_back(c);
            }
        }
    }
    seen
}

/// Builds a random graph: `n` objects, each with up to 4 reference fields
/// wired to random earlier-or-later objects, plus a random subset of roots.
fn build_graph(
    heap: &mut Heap,
    n: usize,
    edges: &[(usize, usize, usize)],
    root_picks: &[usize],
) -> (Vec<ObjRef>, Vec<ObjRef>) {
    let class = heap.register_class("N", &[]);
    let objs: Vec<ObjRef> = (0..n).map(|_| heap.alloc(class, 4, 1).unwrap()).collect();
    for &(from, field, to) in edges {
        let f = objs[from % n];
        let t = objs[to % n];
        heap.set_ref_field(f, field % 4, t).unwrap();
    }
    let roots: Vec<ObjRef> = root_picks.iter().map(|&i| objs[i % n]).collect();
    (objs, roots)
}

/// Hooks that exercise the path-tracking worklist and sanity-check every
/// path handed out: each step must be a live object and consecutive steps
/// must be connected by the named field.
struct PathValidator {
    checked: u64,
}

impl TraceHooks for PathValidator {
    fn wants_paths(&self) -> bool {
        true
    }
    fn visit_new(&mut self, heap: &mut Heap, obj: ObjRef, ctx: &TraceCtx<'_>) -> Visit {
        let path = ctx.current_path(heap);
        let steps = path.steps();
        assert_eq!(steps.last().map(|s| s.object), Some(obj));
        for w in steps.windows(2) {
            let parent = w[0].object;
            let child = &w[1];
            let field = child.field.expect("non-root step has a field");
            assert_eq!(
                heap.ref_field(parent, field).unwrap(),
                child.object,
                "path step not connected by declared field"
            );
        }
        self.checked += 1;
        Visit::Descend
    }
}

#[test]
fn million_deep_chain_traced_without_stack_overflow() {
    // The tracer uses an explicit worklist, so recursion depth is not a
    // function of heap shape; a 1M-deep chain must trace fine in both
    // worklist modes.
    let mut heap = Heap::new();
    let c = heap.register_class("N", &["next"]);
    let mut head = heap.alloc(c, 1, 0).unwrap();
    for _ in 0..1_000_000 {
        let n = heap.alloc(c, 1, 0).unwrap();
        heap.set_ref_field(n, 0, head).unwrap();
        head = n;
    }
    let mut gc = Collector::new();
    let cycle = gc.collect(&mut heap, &[head], &mut NoHooks).unwrap();
    assert_eq!(cycle.objects_marked, 1_000_001);
    assert_eq!(cycle.objects_swept, 0);

    // Path-tracking mode: same, and the path to the tail is the chain.
    struct Deepest {
        max_depth: usize,
    }
    impl TraceHooks for Deepest {
        fn wants_paths(&self) -> bool {
            true
        }
        fn visit_new(
            &mut self,
            heap: &mut Heap,
            _obj: gca_heap::ObjRef,
            ctx: &TraceCtx<'_>,
        ) -> Visit {
            // Reconstructing full million-step paths per node would be
            // quadratic; just track that the machinery survives depth by
            // sampling the parent edge.
            if ctx.parent_edge().is_some() {
                self.max_depth += 1;
            }
            let _ = heap;
            Visit::Descend
        }
    }
    let mut hooks = Deepest { max_depth: 0 };
    let cycle = gc.collect(&mut heap, &[head], &mut hooks).unwrap();
    assert_eq!(cycle.objects_marked, 1_000_001);
    assert_eq!(hooks.max_depth, 1_000_000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn collector_frees_exactly_unreachable(
        n in 1usize..40,
        edges in proptest::collection::vec((0usize..40, 0usize..4, 0usize..40), 0..120),
        root_picks in proptest::collection::vec(0usize..40, 0..6),
    ) {
        let mut heap = Heap::new();
        let (objs, roots) = build_graph(&mut heap, n, &edges, &root_picks);
        let expected_live = reachable(&heap, &roots);

        let mut gc = Collector::new();
        let cycle = gc.collect(&mut heap, &roots, &mut NoHooks).unwrap();

        for &o in &objs {
            prop_assert_eq!(
                heap.is_valid(o),
                expected_live.contains(&o),
                "object {} survival mismatch", o
            );
        }
        prop_assert_eq!(cycle.objects_marked as usize, expected_live.len());
        prop_assert_eq!(
            cycle.objects_swept as usize,
            objs.len() - expected_live.len()
        );
        prop_assert_eq!(heap.live_objects(), expected_live.len());
    }

    #[test]
    fn path_mode_matches_plain_mode_reclamation(
        n in 1usize..30,
        edges in proptest::collection::vec((0usize..30, 0usize..4, 0usize..30), 0..90),
        root_picks in proptest::collection::vec(0usize..30, 0..5),
    ) {
        // Same graph collected under both worklist disciplines must give
        // identical survivor sets, and every path handed to the hooks must
        // be a real heap path.
        let mut heap_a = Heap::new();
        let (objs_a, roots_a) = build_graph(&mut heap_a, n, &edges, &root_picks);
        let mut heap_b = Heap::new();
        let (objs_b, roots_b) = build_graph(&mut heap_b, n, &edges, &root_picks);

        let mut gc = Collector::new();
        gc.collect(&mut heap_a, &roots_a, &mut NoHooks).unwrap();
        let mut validator = PathValidator { checked: 0 };
        gc.collect(&mut heap_b, &roots_b, &mut validator).unwrap();

        for (&a, &b) in objs_a.iter().zip(&objs_b) {
            prop_assert_eq!(heap_a.is_valid(a), heap_b.is_valid(b));
        }
        prop_assert_eq!(validator.checked as usize, heap_b.live_objects());
    }

    #[test]
    fn consecutive_collections_idempotent(
        n in 1usize..30,
        edges in proptest::collection::vec((0usize..30, 0usize..4, 0usize..30), 0..60),
        root_picks in proptest::collection::vec(0usize..30, 0..5),
    ) {
        let mut heap = Heap::new();
        let (_objs, roots) = build_graph(&mut heap, n, &edges, &root_picks);
        let mut gc = Collector::new();
        let first = gc.collect(&mut heap, &roots, &mut NoHooks).unwrap();
        let second = gc.collect(&mut heap, &roots, &mut NoHooks).unwrap();
        // After one collection the heap is a fixpoint: nothing else dies.
        prop_assert_eq!(second.objects_swept, 0);
        prop_assert_eq!(second.objects_marked, first.objects_marked);
    }
}
