//! The event vocabulary of a recorded run.

/// A recorded object identity: the object's allocation sequence number
/// (0-based, in allocation order). Stable across replays regardless of
/// slot reuse.
pub type ObjId = u32;

/// One heap event. The recorder appends these in program order; replay
/// executes them in order against a fresh VM.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// A class registration (classes are identified by registration
    /// order at replay).
    RegisterClass {
        /// Class name.
        name: String,
        /// Reference-field names.
        fields: Vec<String>,
    },
    /// A new mutator was spawned (mutators are identified by spawn
    /// order; 0 is the main mutator).
    SpawnMutator,
    /// An allocation by `mutator`; the resulting object gets the next
    /// sequence number.
    Alloc {
        /// Spawning mutator (0 = main).
        mutator: u32,
        /// Class, by registration order.
        class: u32,
        /// Reference-field count.
        nrefs: u32,
        /// Data payload words.
        data_words: u32,
    },
    /// A reference-field write. `value` is `None` for null.
    SetField {
        /// Receiver.
        obj: ObjId,
        /// Field index.
        field: u32,
        /// New value.
        value: Option<ObjId>,
    },
    /// A data-word write.
    SetData {
        /// Receiver.
        obj: ObjId,
        /// Word index.
        index: u32,
        /// Value.
        value: u64,
    },
    /// `add_root` on a mutator's current frame.
    AddRoot {
        /// Mutator.
        mutator: u32,
        /// Rooted object.
        obj: ObjId,
    },
    /// `set_root` (local reassignment).
    SetRoot {
        /// Mutator.
        mutator: u32,
        /// Root slot.
        slot: u32,
        /// New value (`None` = null).
        value: Option<ObjId>,
    },
    /// `push_frame`.
    PushFrame {
        /// Mutator.
        mutator: u32,
    },
    /// `pop_frame`.
    PopFrame {
        /// Mutator.
        mutator: u32,
    },
    /// `add_global`.
    AddGlobal {
        /// The global root.
        obj: ObjId,
    },
    /// `remove_global`.
    RemoveGlobal {
        /// The removed global root.
        obj: ObjId,
    },
    /// `assert_dead`.
    AssertDead {
        /// Asserted object.
        obj: ObjId,
    },
    /// `assert_unshared`.
    AssertUnshared {
        /// Asserted object.
        obj: ObjId,
    },
    /// `assert_instances`.
    AssertInstances {
        /// Class, by registration order.
        class: u32,
        /// Limit.
        limit: u32,
    },
    /// `assert_owned_by`.
    AssertOwnedBy {
        /// Owner.
        owner: ObjId,
        /// Ownee.
        ownee: ObjId,
    },
    /// `release_ownee`.
    ReleaseOwnee {
        /// Released ownee.
        ownee: ObjId,
    },
    /// `start_region`.
    StartRegion {
        /// Mutator.
        mutator: u32,
    },
    /// `assert_alldead`.
    AssertAllDead {
        /// Mutator.
        mutator: u32,
    },
    /// An explicit (major) collection.
    Collect,
    /// An explicit minor collection.
    CollectMinor,
}
