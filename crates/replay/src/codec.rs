//! Compact binary encoding of event logs.
//!
//! One byte of tag per event plus little-endian fixed-width operands and
//! length-prefixed strings — small enough to keep "record in production"
//! plausible, simple enough to be an interchange format.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;

use crate::event::Event;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The buffer ended inside an event.
    Truncated,
    /// An unknown event tag.
    BadTag(u8),
    /// A string operand was not valid UTF-8.
    BadString,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "event log truncated"),
            CodecError::BadTag(t) => write!(f, "unknown event tag {t:#04x}"),
            CodecError::BadString => write!(f, "invalid utf-8 in string operand"),
        }
    }
}

impl Error for CodecError {}

const T_REGISTER_CLASS: u8 = 0x01;
const T_SPAWN_MUTATOR: u8 = 0x02;
const T_ALLOC: u8 = 0x03;
const T_SET_FIELD: u8 = 0x04;
const T_SET_DATA: u8 = 0x05;
const T_ADD_ROOT: u8 = 0x06;
const T_SET_ROOT: u8 = 0x07;
const T_PUSH_FRAME: u8 = 0x08;
const T_POP_FRAME: u8 = 0x09;
const T_ADD_GLOBAL: u8 = 0x0A;
const T_REMOVE_GLOBAL: u8 = 0x0B;
const T_ASSERT_DEAD: u8 = 0x0C;
const T_ASSERT_UNSHARED: u8 = 0x0D;
const T_ASSERT_INSTANCES: u8 = 0x0E;
const T_ASSERT_OWNED_BY: u8 = 0x0F;
const T_RELEASE_OWNEE: u8 = 0x10;
const T_START_REGION: u8 = 0x11;
const T_ASSERT_ALL_DEAD: u8 = 0x12;
const T_COLLECT: u8 = 0x13;
const T_COLLECT_MINOR: u8 = 0x14;

/// Null sentinel for optional object ids.
const NULL_ID: u32 = u32::MAX;

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Encodes an event log.
pub fn encode(events: &[Event]) -> Bytes {
    let mut buf = BytesMut::new();
    for e in events {
        match e {
            Event::RegisterClass { name, fields } => {
                buf.put_u8(T_REGISTER_CLASS);
                put_str(&mut buf, name);
                buf.put_u32_le(fields.len() as u32);
                for f in fields {
                    put_str(&mut buf, f);
                }
            }
            Event::SpawnMutator => buf.put_u8(T_SPAWN_MUTATOR),
            Event::Alloc {
                mutator,
                class,
                nrefs,
                data_words,
            } => {
                buf.put_u8(T_ALLOC);
                buf.put_u32_le(*mutator);
                buf.put_u32_le(*class);
                buf.put_u32_le(*nrefs);
                buf.put_u32_le(*data_words);
            }
            Event::SetField { obj, field, value } => {
                buf.put_u8(T_SET_FIELD);
                buf.put_u32_le(*obj);
                buf.put_u32_le(*field);
                buf.put_u32_le(value.unwrap_or(NULL_ID));
            }
            Event::SetData { obj, index, value } => {
                buf.put_u8(T_SET_DATA);
                buf.put_u32_le(*obj);
                buf.put_u32_le(*index);
                buf.put_u64_le(*value);
            }
            Event::AddRoot { mutator, obj } => {
                buf.put_u8(T_ADD_ROOT);
                buf.put_u32_le(*mutator);
                buf.put_u32_le(*obj);
            }
            Event::SetRoot {
                mutator,
                slot,
                value,
            } => {
                buf.put_u8(T_SET_ROOT);
                buf.put_u32_le(*mutator);
                buf.put_u32_le(*slot);
                buf.put_u32_le(value.unwrap_or(NULL_ID));
            }
            Event::PushFrame { mutator } => {
                buf.put_u8(T_PUSH_FRAME);
                buf.put_u32_le(*mutator);
            }
            Event::PopFrame { mutator } => {
                buf.put_u8(T_POP_FRAME);
                buf.put_u32_le(*mutator);
            }
            Event::AddGlobal { obj } => {
                buf.put_u8(T_ADD_GLOBAL);
                buf.put_u32_le(*obj);
            }
            Event::RemoveGlobal { obj } => {
                buf.put_u8(T_REMOVE_GLOBAL);
                buf.put_u32_le(*obj);
            }
            Event::AssertDead { obj } => {
                buf.put_u8(T_ASSERT_DEAD);
                buf.put_u32_le(*obj);
            }
            Event::AssertUnshared { obj } => {
                buf.put_u8(T_ASSERT_UNSHARED);
                buf.put_u32_le(*obj);
            }
            Event::AssertInstances { class, limit } => {
                buf.put_u8(T_ASSERT_INSTANCES);
                buf.put_u32_le(*class);
                buf.put_u32_le(*limit);
            }
            Event::AssertOwnedBy { owner, ownee } => {
                buf.put_u8(T_ASSERT_OWNED_BY);
                buf.put_u32_le(*owner);
                buf.put_u32_le(*ownee);
            }
            Event::ReleaseOwnee { ownee } => {
                buf.put_u8(T_RELEASE_OWNEE);
                buf.put_u32_le(*ownee);
            }
            Event::StartRegion { mutator } => {
                buf.put_u8(T_START_REGION);
                buf.put_u32_le(*mutator);
            }
            Event::AssertAllDead { mutator } => {
                buf.put_u8(T_ASSERT_ALL_DEAD);
                buf.put_u32_le(*mutator);
            }
            Event::Collect => buf.put_u8(T_COLLECT),
            Event::CollectMinor => buf.put_u8(T_COLLECT_MINOR),
        }
    }
    buf.freeze()
}

fn need(buf: &impl Buf, n: usize) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(CodecError::Truncated)
    } else {
        Ok(())
    }
}

fn get_u32(buf: &mut impl Buf) -> Result<u32, CodecError> {
    need(buf, 4)?;
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut impl Buf) -> Result<u64, CodecError> {
    need(buf, 8)?;
    Ok(buf.get_u64_le())
}

fn get_str(buf: &mut impl Buf) -> Result<String, CodecError> {
    let len = get_u32(buf)? as usize;
    need(buf, len)?;
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| CodecError::BadString)
}

fn opt_id(raw: u32) -> Option<u32> {
    if raw == NULL_ID {
        None
    } else {
        Some(raw)
    }
}

/// Decodes an event log.
///
/// # Errors
///
/// [`CodecError`] on truncation, unknown tags, or malformed strings.
pub fn decode(mut buf: &[u8]) -> Result<Vec<Event>, CodecError> {
    let mut events = Vec::new();
    while buf.has_remaining() {
        let tag = buf.get_u8();
        let event = match tag {
            T_REGISTER_CLASS => {
                let name = get_str(&mut buf)?;
                let n = get_u32(&mut buf)? as usize;
                let mut fields = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    fields.push(get_str(&mut buf)?);
                }
                Event::RegisterClass { name, fields }
            }
            T_SPAWN_MUTATOR => Event::SpawnMutator,
            T_ALLOC => Event::Alloc {
                mutator: get_u32(&mut buf)?,
                class: get_u32(&mut buf)?,
                nrefs: get_u32(&mut buf)?,
                data_words: get_u32(&mut buf)?,
            },
            T_SET_FIELD => Event::SetField {
                obj: get_u32(&mut buf)?,
                field: get_u32(&mut buf)?,
                value: opt_id(get_u32(&mut buf)?),
            },
            T_SET_DATA => Event::SetData {
                obj: get_u32(&mut buf)?,
                index: get_u32(&mut buf)?,
                value: get_u64(&mut buf)?,
            },
            T_ADD_ROOT => Event::AddRoot {
                mutator: get_u32(&mut buf)?,
                obj: get_u32(&mut buf)?,
            },
            T_SET_ROOT => Event::SetRoot {
                mutator: get_u32(&mut buf)?,
                slot: get_u32(&mut buf)?,
                value: opt_id(get_u32(&mut buf)?),
            },
            T_PUSH_FRAME => Event::PushFrame {
                mutator: get_u32(&mut buf)?,
            },
            T_POP_FRAME => Event::PopFrame {
                mutator: get_u32(&mut buf)?,
            },
            T_ADD_GLOBAL => Event::AddGlobal {
                obj: get_u32(&mut buf)?,
            },
            T_REMOVE_GLOBAL => Event::RemoveGlobal {
                obj: get_u32(&mut buf)?,
            },
            T_ASSERT_DEAD => Event::AssertDead {
                obj: get_u32(&mut buf)?,
            },
            T_ASSERT_UNSHARED => Event::AssertUnshared {
                obj: get_u32(&mut buf)?,
            },
            T_ASSERT_INSTANCES => Event::AssertInstances {
                class: get_u32(&mut buf)?,
                limit: get_u32(&mut buf)?,
            },
            T_ASSERT_OWNED_BY => Event::AssertOwnedBy {
                owner: get_u32(&mut buf)?,
                ownee: get_u32(&mut buf)?,
            },
            T_RELEASE_OWNEE => Event::ReleaseOwnee {
                ownee: get_u32(&mut buf)?,
            },
            T_START_REGION => Event::StartRegion {
                mutator: get_u32(&mut buf)?,
            },
            T_ASSERT_ALL_DEAD => Event::AssertAllDead {
                mutator: get_u32(&mut buf)?,
            },
            T_COLLECT => Event::Collect,
            T_COLLECT_MINOR => Event::CollectMinor,
            other => return Err(CodecError::BadTag(other)),
        };
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RegisterClass {
                name: "Order".into(),
                fields: vec!["customer".into(), "lines".into()],
            },
            Event::SpawnMutator,
            Event::Alloc {
                mutator: 1,
                class: 0,
                nrefs: 2,
                data_words: 4,
            },
            Event::SetField {
                obj: 0,
                field: 1,
                value: None,
            },
            Event::SetField {
                obj: 0,
                field: 0,
                value: Some(0),
            },
            Event::SetData {
                obj: 0,
                index: 3,
                value: u64::MAX,
            },
            Event::AddRoot { mutator: 0, obj: 0 },
            Event::SetRoot {
                mutator: 0,
                slot: 0,
                value: None,
            },
            Event::PushFrame { mutator: 1 },
            Event::PopFrame { mutator: 1 },
            Event::AddGlobal { obj: 0 },
            Event::RemoveGlobal { obj: 0 },
            Event::AssertDead { obj: 0 },
            Event::AssertUnshared { obj: 0 },
            Event::AssertInstances { class: 0, limit: 7 },
            Event::AssertOwnedBy { owner: 0, ownee: 0 },
            Event::ReleaseOwnee { ownee: 0 },
            Event::StartRegion { mutator: 1 },
            Event::AssertAllDead { mutator: 1 },
            Event::Collect,
            Event::CollectMinor,
        ]
    }

    #[test]
    fn roundtrip_every_event_kind() {
        let events = sample_events();
        let bytes = encode(&events);
        let back = decode(&bytes).unwrap();
        assert_eq!(events, back);
    }

    #[test]
    fn truncation_detected_mid_event() {
        // Cuts inside an event fail; cuts on an event boundary simply
        // decode the shorter log.
        let bytes = encode(&sample_events());
        for cut in [1, 3, 7] {
            let err = decode(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} should fail");
        }
        // Mid-alloc: an alloc is 17 bytes; cut 5 bytes into one.
        let alloc = encode(&[Event::Alloc {
            mutator: 0,
            class: 0,
            nrefs: 1,
            data_words: 1,
        }]);
        assert_eq!(decode(&alloc[..5]), Err(CodecError::Truncated));
        // Boundary cut: dropping the trailing 1-byte CollectMinor event
        // yields a valid, shorter log.
        let back = decode(&bytes[..bytes.len() - 1]).unwrap();
        assert_eq!(back.len(), sample_events().len() - 1);
    }

    #[test]
    fn bad_tag_detected() {
        assert_eq!(decode(&[0xFF]), Err(CodecError::BadTag(0xFF)));
    }

    #[test]
    fn empty_log_roundtrips() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<Event>::new());
    }

    #[test]
    fn encoding_is_compact() {
        // Tag + 16 operand bytes for an alloc: no bloat.
        let bytes = encode(&[Event::Alloc {
            mutator: 0,
            class: 0,
            nrefs: 2,
            data_words: 4,
        }]);
        assert_eq!(bytes.len(), 17);
    }
}
