//! Recording wrapper and replayer.

use std::collections::HashMap;

use gc_assertions::{ClassId, GcReport, MutatorId, ObjRef, Vm, VmConfig, VmError};

use crate::event::{Event, ObjId};

/// A [`Vm`] wrapper that logs every heap event it performs.
///
/// The recorder's API mirrors the `Vm` operations workloads use; each
/// call executes against the wrapped VM *and* appends an [`Event`].
/// [`Recorder::finish`] returns both the VM (with whatever it observed)
/// and the event log, which [`replay`] can re-execute under a different
/// configuration.
///
/// Replay fidelity: the log captures mutator behaviour, not collection
/// points, so a replay reclaims identically only if its configuration
/// does not collect *more aggressively* than the recording (same heap
/// budget) and does not mutate the heap on violations (`ForceTrue`
/// rewrites fields). Observability settings — path tracking, report
/// policy, `Log` vs `Halt`, Base vs Instrumented — replay exactly.
#[derive(Debug)]
pub struct Recorder {
    vm: Vm,
    events: Vec<Event>,
    ids: HashMap<ObjRef, ObjId>,
    next_id: ObjId,
    classes: Vec<ClassId>,
    mutators: Vec<MutatorId>,
}

impl Recorder {
    /// Creates a recorder around a fresh VM.
    pub fn new(config: VmConfig) -> Recorder {
        let vm = Vm::new(config);
        let main = vm.main();
        Recorder {
            vm,
            events: Vec::new(),
            ids: HashMap::new(),
            next_id: 0,
            classes: Vec::new(),
            mutators: vec![main],
        }
    }

    /// Read access to the underlying VM.
    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    /// Ends the recording, returning the VM and the event log.
    pub fn finish(self) -> (Vm, Vec<Event>) {
        (self.vm, self.events)
    }

    fn id_of(&self, obj: ObjRef) -> ObjId {
        *self
            .ids
            .get(&obj)
            .expect("recorded operations only use recorded objects")
    }

    /// Registers a class (recorded; identified by registration order).
    pub fn register_class(&mut self, name: &str, fields: &[&str]) -> ClassId {
        let id = self.vm.register_class(name, fields);
        if !self.classes.contains(&id) {
            self.classes.push(id);
            self.events.push(Event::RegisterClass {
                name: name.to_owned(),
                fields: fields.iter().map(|s| (*s).to_owned()).collect(),
            });
        }
        id
    }

    /// Spawns an additional mutator; returns its recording index (0 is
    /// the main mutator).
    pub fn spawn_mutator(&mut self) -> u32 {
        let m = self.vm.spawn_mutator();
        self.mutators.push(m);
        self.events.push(Event::SpawnMutator);
        (self.mutators.len() - 1) as u32
    }

    fn class_index(&self, class: ClassId) -> u32 {
        self.classes
            .iter()
            .position(|&c| c == class)
            .expect("class was registered through the recorder") as u32
    }

    /// Allocates on the main mutator.
    ///
    /// # Errors
    ///
    /// As [`Vm::alloc`].
    pub fn alloc(&mut self, class: ClassId, nrefs: usize, data: usize) -> Result<ObjRef, VmError> {
        self.alloc_on(0, class, nrefs, data)
    }

    /// Allocates on mutator `m` (recording index).
    ///
    /// # Errors
    ///
    /// As [`Vm::alloc`].
    pub fn alloc_on(
        &mut self,
        m: u32,
        class: ClassId,
        nrefs: usize,
        data: usize,
    ) -> Result<ObjRef, VmError> {
        let mutator = self.mutators[m as usize];
        let obj = self.vm.alloc(mutator, class, nrefs, data)?;
        self.ids.insert(obj, self.next_id);
        self.next_id += 1;
        self.events.push(Event::Alloc {
            mutator: m,
            class: self.class_index(class),
            nrefs: nrefs as u32,
            data_words: data as u32,
        });
        Ok(obj)
    }

    /// Writes a reference field.
    ///
    /// # Errors
    ///
    /// As [`Vm::set_field`].
    pub fn set_field(&mut self, obj: ObjRef, field: usize, value: ObjRef) -> Result<(), VmError> {
        self.vm.set_field(obj, field, value)?;
        self.events.push(Event::SetField {
            obj: self.id_of(obj),
            field: field as u32,
            value: if value.is_null() {
                None
            } else {
                Some(self.id_of(value))
            },
        });
        Ok(())
    }

    /// Writes a data word.
    ///
    /// # Errors
    ///
    /// As [`Vm::set_data_word`].
    pub fn set_data_word(&mut self, obj: ObjRef, index: usize, value: u64) -> Result<(), VmError> {
        self.vm.set_data_word(obj, index, value)?;
        self.events.push(Event::SetData {
            obj: self.id_of(obj),
            index: index as u32,
            value,
        });
        Ok(())
    }

    /// Roots `obj` on the main mutator's current frame.
    ///
    /// # Errors
    ///
    /// As [`Vm::add_root`].
    pub fn add_root(&mut self, obj: ObjRef) -> Result<usize, VmError> {
        self.add_root_on(0, obj)
    }

    /// Roots `obj` on mutator `m`'s current frame.
    ///
    /// # Errors
    ///
    /// As [`Vm::add_root`].
    pub fn add_root_on(&mut self, m: u32, obj: ObjRef) -> Result<usize, VmError> {
        let slot = self.vm.add_root(self.mutators[m as usize], obj)?;
        self.events.push(Event::AddRoot {
            mutator: m,
            obj: self.id_of(obj),
        });
        Ok(slot)
    }

    /// Reassigns a root slot on mutator `m`.
    ///
    /// # Errors
    ///
    /// As [`Vm::set_root`].
    pub fn set_root_on(&mut self, m: u32, slot: usize, value: ObjRef) -> Result<(), VmError> {
        self.vm.set_root(self.mutators[m as usize], slot, value)?;
        self.events.push(Event::SetRoot {
            mutator: m,
            slot: slot as u32,
            value: if value.is_null() {
                None
            } else {
                Some(self.id_of(value))
            },
        });
        Ok(())
    }

    /// Pushes a frame on mutator `m`.
    ///
    /// # Errors
    ///
    /// As [`Vm::push_frame`].
    pub fn push_frame_on(&mut self, m: u32) -> Result<(), VmError> {
        self.vm.push_frame(self.mutators[m as usize])?;
        self.events.push(Event::PushFrame { mutator: m });
        Ok(())
    }

    /// Pops mutator `m`'s top frame.
    ///
    /// # Errors
    ///
    /// As [`Vm::pop_frame`].
    pub fn pop_frame_on(&mut self, m: u32) -> Result<(), VmError> {
        self.vm.pop_frame(self.mutators[m as usize])?;
        self.events.push(Event::PopFrame { mutator: m });
        Ok(())
    }

    /// Adds a global root.
    ///
    /// # Errors
    ///
    /// As [`Vm::add_global`].
    pub fn add_global(&mut self, obj: ObjRef) -> Result<(), VmError> {
        self.vm.add_global(obj)?;
        self.events.push(Event::AddGlobal {
            obj: self.id_of(obj),
        });
        Ok(())
    }

    /// Removes a global root.
    ///
    /// # Errors
    ///
    /// As [`Vm::remove_global`].
    pub fn remove_global(&mut self, obj: ObjRef) -> Result<(), VmError> {
        self.vm.remove_global(obj)?;
        self.events.push(Event::RemoveGlobal {
            obj: self.id_of(obj),
        });
        Ok(())
    }

    /// Records `assert_dead`.
    ///
    /// # Errors
    ///
    /// As [`Vm::assert_dead`].
    pub fn assert_dead(&mut self, obj: ObjRef) -> Result<(), VmError> {
        self.vm.assert_dead(obj)?;
        self.events.push(Event::AssertDead {
            obj: self.id_of(obj),
        });
        Ok(())
    }

    /// Records `assert_unshared`.
    ///
    /// # Errors
    ///
    /// As [`Vm::assert_unshared`].
    pub fn assert_unshared(&mut self, obj: ObjRef) -> Result<(), VmError> {
        self.vm.assert_unshared(obj)?;
        self.events.push(Event::AssertUnshared {
            obj: self.id_of(obj),
        });
        Ok(())
    }

    /// Records `assert_instances`.
    ///
    /// # Errors
    ///
    /// As [`Vm::assert_instances`].
    pub fn assert_instances(&mut self, class: ClassId, limit: u32) -> Result<(), VmError> {
        self.vm.assert_instances(class, limit)?;
        self.events.push(Event::AssertInstances {
            class: self.class_index(class),
            limit,
        });
        Ok(())
    }

    /// Records `assert_owned_by`.
    ///
    /// # Errors
    ///
    /// As [`Vm::assert_owned_by`].
    pub fn assert_owned_by(&mut self, owner: ObjRef, ownee: ObjRef) -> Result<(), VmError> {
        self.vm.assert_owned_by(owner, ownee)?;
        self.events.push(Event::AssertOwnedBy {
            owner: self.id_of(owner),
            ownee: self.id_of(ownee),
        });
        Ok(())
    }

    /// Records `release_ownee`.
    ///
    /// # Errors
    ///
    /// As [`Vm::release_ownee`].
    pub fn release_ownee(&mut self, ownee: ObjRef) -> Result<bool, VmError> {
        let was = self.vm.release_ownee(ownee)?;
        self.events.push(Event::ReleaseOwnee {
            ownee: self.id_of(ownee),
        });
        Ok(was)
    }

    /// Records `start_region` on mutator `m`.
    ///
    /// # Errors
    ///
    /// As [`Vm::start_region`].
    pub fn start_region_on(&mut self, m: u32) -> Result<(), VmError> {
        self.vm.start_region(self.mutators[m as usize])?;
        self.events.push(Event::StartRegion { mutator: m });
        Ok(())
    }

    /// Records `assert_alldead` on mutator `m`.
    ///
    /// # Errors
    ///
    /// As [`Vm::assert_alldead`].
    pub fn assert_alldead_on(&mut self, m: u32) -> Result<usize, VmError> {
        let n = self.vm.assert_alldead(self.mutators[m as usize])?;
        self.events.push(Event::AssertAllDead { mutator: m });
        Ok(n)
    }

    /// Records an explicit collection.
    ///
    /// # Errors
    ///
    /// As [`Vm::collect`].
    pub fn collect(&mut self) -> Result<GcReport, VmError> {
        let report = self.vm.collect()?;
        self.events.push(Event::Collect);
        Ok(report)
    }

    /// Records an explicit minor collection (generational mode).
    ///
    /// # Errors
    ///
    /// As [`Vm::collect_minor`].
    pub fn collect_minor(&mut self) -> Result<(), VmError> {
        self.vm.collect_minor()?;
        self.events.push(Event::CollectMinor);
        Ok(())
    }
}

/// Re-executes a recorded event log against a fresh VM with `config`.
///
/// # Errors
///
/// A [`VmError`] from any replayed event — typically a sign that `config`
/// reclaims more aggressively than the recording configuration did (see
/// [`Recorder`] for the fidelity contract).
pub fn replay(events: &[Event], config: VmConfig) -> Result<Vm, VmError> {
    let mut vm = Vm::new(config);
    let mut classes: Vec<ClassId> = Vec::new();
    let mut mutators: Vec<MutatorId> = vec![vm.main()];
    let mut objects: Vec<ObjRef> = Vec::new();

    let resolve = |objects: &[ObjRef], id: Option<ObjId>| -> ObjRef {
        match id {
            Some(i) => objects[i as usize],
            None => ObjRef::NULL,
        }
    };

    for event in events {
        match event {
            Event::RegisterClass { name, fields } => {
                let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
                classes.push(vm.register_class(name, &refs));
            }
            Event::SpawnMutator => mutators.push(vm.spawn_mutator()),
            Event::Alloc {
                mutator,
                class,
                nrefs,
                data_words,
            } => {
                let obj = vm.alloc(
                    mutators[*mutator as usize],
                    classes[*class as usize],
                    *nrefs as usize,
                    *data_words as usize,
                )?;
                objects.push(obj);
            }
            Event::SetField { obj, field, value } => {
                let v = resolve(&objects, *value);
                vm.set_field(objects[*obj as usize], *field as usize, v)?;
            }
            Event::SetData { obj, index, value } => {
                vm.set_data_word(objects[*obj as usize], *index as usize, *value)?;
            }
            Event::AddRoot { mutator, obj } => {
                vm.add_root(mutators[*mutator as usize], objects[*obj as usize])?;
            }
            Event::SetRoot {
                mutator,
                slot,
                value,
            } => {
                let v = resolve(&objects, *value);
                vm.set_root(mutators[*mutator as usize], *slot as usize, v)?;
            }
            Event::PushFrame { mutator } => vm.push_frame(mutators[*mutator as usize])?,
            Event::PopFrame { mutator } => vm.pop_frame(mutators[*mutator as usize])?,
            Event::AddGlobal { obj } => vm.add_global(objects[*obj as usize])?,
            Event::RemoveGlobal { obj } => vm.remove_global(objects[*obj as usize])?,
            Event::AssertDead { obj } => vm.assert_dead(objects[*obj as usize])?,
            Event::AssertUnshared { obj } => vm.assert_unshared(objects[*obj as usize])?,
            Event::AssertInstances { class, limit } => {
                vm.assert_instances(classes[*class as usize], *limit)?;
            }
            Event::AssertOwnedBy { owner, ownee } => {
                vm.assert_owned_by(objects[*owner as usize], objects[*ownee as usize])?;
            }
            Event::ReleaseOwnee { ownee } => {
                vm.release_ownee(objects[*ownee as usize])?;
            }
            Event::StartRegion { mutator } => vm.start_region(mutators[*mutator as usize])?,
            Event::AssertAllDead { mutator } => {
                vm.assert_alldead(mutators[*mutator as usize])?;
            }
            Event::Collect => {
                vm.collect()?;
            }
            Event::CollectMinor => {
                vm.collect_minor()?;
            }
        }
    }
    Ok(vm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_then_replay_same_config_is_identical() {
        let mut rec = Recorder::new(VmConfig::builder().build());
        let c = rec.register_class("T", &["f"]);
        let a = rec.alloc(c, 1, 2).unwrap();
        rec.add_root(a).unwrap();
        let b = rec.alloc(c, 1, 0).unwrap();
        rec.set_field(a, 0, b).unwrap();
        rec.set_data_word(a, 1, 99).unwrap();
        rec.assert_unshared(b).unwrap();
        rec.collect().unwrap();
        let (vm, log) = rec.finish();

        let replayed = replay(&log, VmConfig::builder().build()).unwrap();
        assert_eq!(
            vm.heap_stats().allocations,
            replayed.heap_stats().allocations
        );
        assert_eq!(vm.collections(), replayed.collections());
        assert_eq!(vm.violation_log().len(), replayed.violation_log().len());
        assert_eq!(vm.heap().live_objects(), replayed.heap().live_objects());
    }

    #[test]
    fn production_summary_lab_forensics() {
        // Record with paths off; replay with paths on and get the path.
        let mut rec = Recorder::new(VmConfig::builder().path_tracking(false).build());
        let holder = rec.register_class("Holder", &["keep"]);
        let order = rec.register_class("Order", &[]);
        let h = rec.alloc(holder, 1, 0).unwrap();
        rec.add_root(h).unwrap();
        let o = rec.alloc(order, 0, 0).unwrap();
        rec.set_field(h, 0, o).unwrap();
        rec.assert_dead(o).unwrap();
        rec.collect().unwrap();
        let (vm, log) = rec.finish();
        assert_eq!(vm.violation_log().len(), 1);
        assert!(vm.violation_log()[0].path.is_empty());

        let lab = replay(&log, VmConfig::builder().path_tracking(true).build()).unwrap();
        assert_eq!(lab.violation_log().len(), 1);
        let text = lab.violation_log()[0].render(lab.registry());
        assert!(text.contains("Holder"), "{text}");
        assert!(text.contains(".keep Order"), "{text}");
    }

    #[test]
    fn regions_and_mutators_replay() {
        let mut rec = Recorder::new(VmConfig::builder().build());
        let c = rec.register_class("Req", &[]);
        let w = rec.spawn_mutator();
        rec.start_region_on(w).unwrap();
        rec.push_frame_on(w).unwrap();
        let r = rec.alloc_on(w, c, 0, 4).unwrap();
        let slot = rec.add_root_on(w, r).unwrap();
        let _ = slot;
        rec.pop_frame_on(w).unwrap();
        rec.assert_alldead_on(w).unwrap();
        rec.collect().unwrap();
        let (vm, log) = rec.finish();
        assert!(vm.violation_log().is_empty());

        let replayed = replay(&log, VmConfig::builder().build()).unwrap();
        assert!(replayed.violation_log().is_empty());
        assert_eq!(replayed.assertion_calls().region_objects, 1);
    }

    #[test]
    fn replay_under_base_mode_fails_on_assertions() {
        // Base mode has no assertion API — replaying an asserting log
        // under it reports the mismatch instead of panicking.
        let mut rec = Recorder::new(VmConfig::builder().build());
        let c = rec.register_class("T", &[]);
        let a = rec.alloc(c, 0, 0).unwrap();
        rec.assert_dead(a).unwrap();
        let (_, log) = rec.finish();
        let err = replay(
            &log,
            VmConfig::builder().mode(gc_assertions::Mode::Base).build(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn ownership_history_replays() {
        let mut rec = Recorder::new(VmConfig::builder().build());
        let c = rec.register_class("C", &["e"]);
        let owner = rec.alloc(c, 1, 0).unwrap();
        rec.add_root(owner).unwrap();
        let e = rec.alloc(c, 1, 0).unwrap();
        rec.set_field(owner, 0, e).unwrap();
        rec.assert_owned_by(owner, e).unwrap();
        rec.collect().unwrap();
        // Leak it.
        let keeper = rec.alloc(c, 1, 0).unwrap();
        rec.add_root(keeper).unwrap();
        rec.set_field(keeper, 0, e).unwrap();
        rec.set_field(owner, 0, ObjRef::NULL).unwrap();
        rec.collect().unwrap();
        let (vm, log) = rec.finish();
        assert_eq!(vm.violation_log().len(), 1);

        let replayed = replay(&log, VmConfig::builder().build()).unwrap();
        assert_eq!(replayed.violation_log().len(), 1);
    }
}
