//! # gca-replay — record and replay heap histories
//!
//! The paper's headline number (~3% total overhead) is what makes GC
//! assertions viable *in deployment*. This crate completes that story:
//! record a deployed run's heap events compactly (allocations, pointer
//! writes, root operations, assertion calls, collections), then **replay
//! the identical history in the lab** — possibly under a different
//! configuration (path tracking on, `report_once` off, a different
//! reaction, even a different collector mode) — to get the full forensic
//! picture of a violation that was only summarized in production.
//!
//! Objects are identified by *allocation sequence number*, which is
//! stable across record and replay even though slot indices may differ
//! (a replay can run with a different heap budget, so collections land
//! differently and the free list recycles slots in another order).
//!
//! # Example
//!
//! ```
//! use gc_assertions::VmConfig;
//! use gca_replay::{replay, Recorder};
//!
//! # fn main() -> Result<(), gc_assertions::VmError> {
//! // Record a buggy run with path tracking off (cheap, "deployed").
//! let mut rec = Recorder::new(VmConfig::builder().path_tracking(false).build());
//! let class = rec.register_class("Holder", &["f"]);
//! let h = rec.alloc(class, 1, 0)?;
//! rec.add_root(h)?;
//! let x = rec.alloc(class, 1, 0)?;
//! rec.set_field(h, 0, x)?;
//! rec.assert_dead(x)?;
//! rec.collect()?;
//! let (vm, log) = rec.finish();
//! assert_eq!(vm.violation_log().len(), 1);
//! assert!(vm.violation_log()[0].path.is_empty(), "no path in production");
//!
//! // Replay in the lab with paths on: same violation, now with the path.
//! let replayed = replay(&log, VmConfig::builder().path_tracking(true).build())?;
//! assert_eq!(replayed.violation_log().len(), 1);
//! assert!(!replayed.violation_log()[0].path.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod codec;
mod event;
mod recorder;

pub use codec::{decode, encode, CodecError};
pub use event::{Event, ObjId};
pub use recorder::{replay, Recorder};
