//! Property tests for record/replay: random recorded programs replay to
//! identical outcomes, and the codec round-trips arbitrary logs.

use gc_assertions::{ObjRef, VmConfig};
use gca_replay::{decode, encode, replay, Event, Recorder};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc {
        data: usize,
    },
    Link {
        from: usize,
        field: usize,
        to: usize,
    },
    Root {
        obj: usize,
    },
    Unlink {
        from: usize,
        field: usize,
    },
    AssertDead {
        obj: usize,
    },
    AssertUnshared {
        obj: usize,
    },
    Gc,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..6).prop_map(|data| Op::Alloc { data }),
        (0usize..64, 0usize..3, 0usize..64).prop_map(|(from, field, to)| Op::Link {
            from,
            field,
            to
        }),
        (0usize..64).prop_map(|obj| Op::Root { obj }),
        (0usize..64, 0usize..3).prop_map(|(from, field)| Op::Unlink { from, field }),
        (0usize..64).prop_map(|obj| Op::AssertDead { obj }),
        (0usize..64).prop_map(|obj| Op::AssertUnshared { obj }),
        Just(Op::Gc),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_recordings_replay_identically(
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        let mut rec = Recorder::new(VmConfig::builder().report_once(false).build());
        let class = rec.register_class("N", &["a", "b", "c"]);
        // Track only live handles; operations target live objects, as a
        // real recorded program would.
        let mut live: Vec<ObjRef> = Vec::new();

        for op in &ops {
            // Refresh liveness after possible collections.
            live.retain(|&o| rec.vm().is_live(o));
            match op {
                Op::Alloc { data } => {
                    let o = rec.alloc(class, 3, *data).unwrap();
                    live.push(o);
                }
                Op::Link { from, field, to } if !live.is_empty() => {
                    let f = live[from % live.len()];
                    let t = live[to % live.len()];
                    rec.set_field(f, field % 3, t).unwrap();
                }
                Op::Unlink { from, field } if !live.is_empty() => {
                    let f = live[from % live.len()];
                    rec.set_field(f, field % 3, ObjRef::NULL).unwrap();
                }
                Op::Root { obj } if !live.is_empty() => {
                    let o = live[obj % live.len()];
                    rec.add_root(o).unwrap();
                }
                Op::AssertDead { obj } if !live.is_empty() => {
                    let o = live[obj % live.len()];
                    rec.assert_dead(o).unwrap();
                }
                Op::AssertUnshared { obj } if !live.is_empty() => {
                    let o = live[obj % live.len()];
                    rec.assert_unshared(o).unwrap();
                }
                Op::Gc => {
                    rec.collect().unwrap();
                }
                _ => {}
            }
        }
        let (vm, log) = rec.finish();

        // Codec round-trip.
        let decoded = decode(&encode(&log)).unwrap();
        prop_assert_eq!(&decoded, &log);

        // Replay equivalence (same config).
        let replayed = replay(&decoded, VmConfig::builder().report_once(false).build()).unwrap();
        prop_assert_eq!(vm.heap_stats().allocations, replayed.heap_stats().allocations);
        prop_assert_eq!(vm.collections(), replayed.collections());
        prop_assert_eq!(vm.heap().live_objects(), replayed.heap().live_objects());
        prop_assert_eq!(vm.heap().occupied_words(), replayed.heap().occupied_words());
        prop_assert_eq!(vm.violation_log().len(), replayed.violation_log().len());
        for (a, b) in vm.violation_log().iter().zip(replayed.violation_log()) {
            prop_assert_eq!(a.summary(), b.summary());
        }
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode(&bytes); // Ok or Err, never panic
    }

    #[test]
    fn codec_roundtrips_synthetic_logs(
        ids in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<u64>()), 0..50),
    ) {
        let log: Vec<Event> = ids
            .iter()
            .flat_map(|&(a, b, v)| {
                vec![
                    Event::SetData { obj: a, index: b, value: v },
                    Event::SetField { obj: a, field: b, value: if v % 2 == 0 { None } else { Some(b) } },
                    Event::Collect,
                ]
            })
            .collect();
        prop_assert_eq!(decode(&encode(&log)).unwrap(), log);
    }
}
