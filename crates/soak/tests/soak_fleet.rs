//! End-to-end soak harness tests: deterministic metrics golden, seeded
//! fault detection latency, fleet false-positive rate, the live HTTP
//! scrape plane, and the JSONL / bench artifacts.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use gca_soak::{normalize_metrics, run_soak, FaultKind, FaultPlan, Fleet, Pacing, SoakConfig};

/// A unique scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gca-soak-test-{}-{}", std::process::id(), tag));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn virtual_smoke_fleet_is_clean_and_deterministic() {
    // Two identical runs of the deterministic smoke config must render
    // byte-identical /metrics payloads once wall-clock durations are
    // normalized out — the "golden" is the run itself.
    let metrics_of = || {
        let fleet = Fleet::start(SoakConfig::smoke()).expect("start");
        while !fleet.done() {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let metrics = fleet.metrics();
        let report = fleet.wait().expect("wait");
        (metrics, report)
    };

    let (metrics_a, report) = metrics_of();
    let (metrics_b, _) = metrics_of();
    assert_eq!(
        normalize_metrics(&metrics_a),
        normalize_metrics(&metrics_b),
        "virtual pacing must make normalized /metrics reproducible"
    );

    // Clean fleet: no faults planned, so zero reports anywhere.
    assert_eq!(report.shards.len(), 2);
    assert!(
        report.passed(),
        "clean fleet must pass: {}",
        report.summary()
    );
    assert_eq!(report.false_positive_rate(), 0.0);
    for s in &report.shards {
        assert!(s.requests > 400, "shard {} served {}", s.shard, s.requests);
        assert!(s.gc_cycles > 0, "soak must exercise the collector");
        assert_eq!(s.violations, 0);
        assert_eq!(s.drifting_keys, 0);
        assert!(s.error.is_none());
    }

    // Structural checks on the payload itself.
    for family in [
        "gca_gc_cycles_total{shard=\"0\"}",
        "gca_gc_cycles_total{shard=\"1\"}",
        "gca_census_live_objects",
        "gca_soak_requests_total{shard=\"0\",scenario=\"session-cache\"}",
        "gca_soak_requests_total{shard=\"1\",scenario=\"social-graph\"}",
        "gca_soak_request_latency_seconds_bucket",
        "gca_soak_shard_done",
    ] {
        assert!(
            metrics_a.contains(family),
            "missing {family} in:\n{metrics_a}"
        );
    }
    // Latency histogram counts every request.
    let total: u64 = report.shards.iter().map(|s| s.requests).sum();
    let counted: u64 = metrics_a
        .lines()
        .filter(|l| l.starts_with("gca_soak_request_latency_seconds_count"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(counted, total);
}

#[test]
fn seeded_leak_is_detected_with_finite_latency_and_clean_shards_stay_clean() {
    let mut config = SoakConfig::smoke();
    config.shards = 3;
    config.faults = vec![FaultPlan::new(1, FaultKind::Leak, 100)];
    let report = run_soak(config).expect("soak");

    let faulted = &report.shards[1];
    let d = faulted
        .detection
        .expect("the injected leak must be detected");
    assert!(d.cycles >= 1, "detection takes at least one collection");
    assert!(
        d.cycles <= faulted.gc_cycles,
        "latency {} must fit inside the run's {} cycles",
        d.cycles,
        faulted.gc_cycles
    );
    assert!(faulted.violations >= 1);

    for s in [&report.shards[0], &report.shards[2]] {
        assert_eq!(s.violations, 0, "clean shard {} must stay clean", s.shard);
        assert_eq!(s.drifting_keys, 0);
    }
    assert!(report.all_faults_detected());
    assert_eq!(report.false_positive_rate(), 0.0);
    assert!(report.passed(), "{}", report.summary());
}

#[test]
fn every_fault_kind_is_detected_in_a_soak() {
    // One faulted shard per kind, all in one fleet (4 faulted + 2 clean).
    let mut config = SoakConfig::smoke();
    config.shards = 6;
    config.faults = FaultKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &kind)| FaultPlan::new(i, kind, 50 + 25 * i as u64))
        .collect();
    let report = run_soak(config).expect("soak");

    for (i, &kind) in FaultKind::ALL.iter().enumerate() {
        let s = &report.shards[i];
        assert_eq!(s.fault, Some(kind));
        let d = s.detection.unwrap_or_else(|| {
            panic!("fault {kind} on shard {i} undetected: {}", report.summary())
        });
        assert!(d.cycles >= 1, "{kind}: {d:?}");
    }
    for s in &report.shards[4..] {
        assert!(s.is_clean_shard());
        assert!(!s.is_false_positive(), "{}", report.summary());
    }
    assert!(report.passed(), "{}", report.summary());
}

#[test]
fn http_plane_serves_metrics_healthz_and_status() {
    let mut config = SoakConfig::smoke();
    config.http_port = Some(0); // ephemeral
    let fleet = Fleet::start(config).expect("start");
    let addr = fleet.http_addr().expect("server must be up");

    let get = |path: &str| -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response.split_once("\r\n\r\n").expect("full response");
        (head.to_string(), body.to_string())
    };

    // Scrape while the fleet is live.
    let (head, body) = get("/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"));
    assert!(body.contains("# TYPE gca_gc_cycles_total counter"));
    assert!(body.contains("shard=\"0\""));
    assert!(body.contains("gca_soak_request_latency_seconds"));
    // Every non-comment line is `name{labels} value` — parseable shape.
    for line in body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (_, value) = line.rsplit_once(' ').expect("sample line");
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
            "unparseable value in: {line}"
        );
    }

    let (head, body) = get("/healthz");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert_eq!(body, "ok\n");

    let (head, body) = get("/status");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(head.contains("application/json"));
    assert!(body.starts_with("{\"elapsed_ms\":"));
    assert!(body.contains("\"scenario\":\"session-cache\""));
    assert!(body.contains("\"shards\":["));
    assert_eq!(body.matches('{').count(), body.matches('}').count());

    let (head, _) = get("/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    while !fleet.done() {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    // The plane stays scrapeable through the end of the run.
    let (head, body) = get("/status");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(body.contains("\"done\":true"));
    let report = fleet.wait().expect("wait");
    assert!(report.passed());
}

#[test]
fn jsonl_and_bench_artifacts_round_trip() {
    let dir = scratch("artifacts");
    let bench = dir.join("BENCH_soak.json");
    let mut config = SoakConfig::smoke();
    config.jsonl_dir = Some(dir.clone());
    config.bench_out = Some(bench.clone());
    config.faults = vec![FaultPlan::new(1, FaultKind::Unshared, 80)];
    let report = run_soak(config).expect("soak");
    assert!(report.all_faults_detected(), "{}", report.summary());

    // Per-shard streams exist and every line carries its shard tag.
    for shard in 0..2u64 {
        let path = dir.join(format!("shard-{shard}.jsonl"));
        let text = std::fs::read_to_string(&path).expect("shard log");
        assert!(!text.is_empty());
        for line in text.lines() {
            assert!(
                line.contains(&format!("\"shard\":{shard},")),
                "untagged line in {path:?}: {line}"
            );
        }
        // The tagged lines parse back through the telemetry reader.
        let parsed = gca_telemetry::export::parse_jsonl(&text).expect("parse");
        assert!(!parsed.is_empty());
        assert!(parsed.iter().all(|r| r.shard == Some(shard)));
    }

    // The merged fleet log holds every line, ordered by (seq, shard).
    let fleet_text = std::fs::read_to_string(dir.join("fleet.jsonl")).expect("fleet log");
    let per_shard_total: usize = (0..2)
        .map(|i| {
            std::fs::read_to_string(dir.join(format!("shard-{i}.jsonl")))
                .unwrap()
                .lines()
                .count()
        })
        .sum();
    assert_eq!(fleet_text.lines().count(), per_shard_total);
    let merged = gca_telemetry::export::parse_jsonl(&fleet_text).expect("parse fleet");
    let keys: Vec<(u64, u64)> = merged
        .iter()
        .map(|r| (r.record.seq, r.shard.unwrap_or(0)))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "fleet.jsonl must be (seq, shard)-ordered");

    // The bench summary is on disk and carries the detection record.
    let bench_text = std::fs::read_to_string(&bench).expect("bench json");
    assert!(bench_text.starts_with("{\"bench\":\"soak\""));
    assert!(bench_text.contains("\"fault\":\"unshared\""));
    assert!(bench_text.contains("\"detection\":{\"cycles\":"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wall_pacing_also_completes_a_short_run() {
    // A tiny wall-clock soak (the CI smoke shape) finishes promptly and
    // measures real latencies.
    let config = SoakConfig {
        shards: 2,
        pacing: Pacing::Wall,
        phases: vec![gca_soak::Phase::steady("s", 100, 400.0)],
        faults: vec![FaultPlan::new(0, FaultKind::Leak, 10)],
        ..SoakConfig::smoke()
    };
    let report = run_soak(config).expect("soak");
    assert!(report.all_faults_detected(), "{}", report.summary());
    let d = report.shards[0].detection.unwrap();
    assert!(d.wall_ns > 0, "wall detection latency must be measured");
    assert!(report.passed(), "{}", report.summary());
}
