//! One shard: a VM plus a scenario, driven through the open-loop
//! arrival schedule on its own thread, publishing snapshots for the
//! observability plane.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use gc_assertions::{Vm, VmConfig};
use gca_telemetry::{GcTelemetry, HeapCensus, LatencyHistogram};
use gca_workloads::scenario::ScenarioKind;

use crate::config::{Arrivals, Pacing, SoakConfig, GC_PENALTY_NS, SERVICE_NS};
use crate::fault::{Detection, FaultInjector, FaultKind};

/// How often (in served requests) a shard republishes its snapshot.
const PUBLISH_EVERY: u64 = 32;

/// The state a shard exposes to the observability plane. Shard threads
/// own their VM outright; scrapes only ever see these cloned snapshots,
/// so a slow scrape never blocks a mutator.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: u64,
    /// Scenario label this shard runs.
    pub scenario: &'static str,
    /// Requests served so far.
    pub requests_done: u64,
    /// Total scheduled requests.
    pub requests_total: u64,
    /// Telemetry snapshot (cycles, phases, overhead, pauses).
    pub telemetry: GcTelemetry,
    /// Census snapshot (per-class/site live histograms, drifts).
    pub census: HeapCensus,
    /// Request-latency histogram (completion − scheduled arrival).
    pub latency: LatencyHistogram,
    /// Latency samples above the configured SLO.
    pub slo_breaches: u64,
    /// Assertion violations reported so far.
    pub violations: u64,
    /// Census drift reports currently active.
    pub drifting_keys: usize,
    /// Scenario counters (hits/misses, produced/consumed, ...).
    pub counters: Vec<(&'static str, u64)>,
    /// The fault planned for this shard, if any.
    pub fault: Option<FaultKind>,
    /// Whether the planned fault has been injected yet.
    pub fault_armed: bool,
    /// Detection record, once the fault was reported.
    pub detection: Option<Detection>,
    /// The shard finished its schedule (or was stopped).
    pub done: bool,
    /// The shard died on a VM error (reported in `error`).
    pub error: Option<String>,
}

impl ShardSnapshot {
    fn new(shard: u64, scenario: &'static str, requests_total: u64) -> ShardSnapshot {
        ShardSnapshot {
            shard,
            scenario,
            requests_done: 0,
            requests_total,
            telemetry: GcTelemetry::default(),
            census: HeapCensus::default(),
            latency: LatencyHistogram::new(),
            slo_breaches: 0,
            violations: 0,
            drifting_keys: 0,
            counters: Vec::new(),
            fault: None,
            fault_armed: false,
            detection: None,
            done: false,
            error: None,
        }
    }

    /// `true` when the shard has neither violations nor active drift —
    /// the state every *clean* shard must end a soak in.
    pub fn is_clean(&self) -> bool {
        self.violations == 0 && self.drifting_keys == 0
    }
}

/// Everything a shard thread needs to run.
pub(crate) struct ShardTask {
    pub shard: u64,
    pub kind: ScenarioKind,
    pub seed: u64,
    pub pacing: Pacing,
    pub arrivals: Arrivals,
    pub slo_ns: u64,
    pub fault: Option<FaultInjector>,
    pub snapshot: Arc<Mutex<ShardSnapshot>>,
    pub stop: Arc<AtomicBool>,
    /// Stream this shard's cycle records here as JSONL, when set.
    pub jsonl_path: Option<std::path::PathBuf>,
}

/// Creates the published snapshot slot for a shard before its thread
/// starts, so the observability plane has a full fleet view immediately.
pub(crate) fn snapshot_slot(config: &SoakConfig, shard: usize) -> Arc<Mutex<ShardSnapshot>> {
    let kind = config.scenario_for(shard);
    let mut snap = ShardSnapshot::new(
        shard as u64,
        kind.label(),
        config.requests_per_shard() as u64,
    );
    snap.fault = config.fault_for(shard).map(|f| f.kind);
    Arc::new(Mutex::new(snap))
}

/// The shard thread body: builds the VM, runs setup, then serves the
/// arrival schedule, measuring latency and watching for its fault.
pub(crate) fn run_shard(mut task: ShardTask) {
    let mut scenario = task.kind.build(task.seed);
    let config = VmConfig::builder()
        .heap_budget(scenario.heap_budget())
        .grow_on_oom(true)
        .telemetry(true)
        .census(true)
        .shard(task.shard)
        .build();
    let mut vm = Vm::new(config);

    if let Err(e) = scenario.setup(&mut vm, true) {
        let mut snap = task.snapshot.lock().unwrap();
        snap.error = Some(format!("setup: {e}"));
        snap.done = true;
        return;
    }

    let started = Instant::now();
    let mut latency = LatencyHistogram::new();
    let mut slo_breaches = 0u64;
    let mut violations = 0u64;
    let mut requests_done = 0u64;
    // Virtual-pacing server model: the instant the server frees up.
    let mut busy_until_ns = 0u64;
    let mut last_cycles = vm.collections();
    let mut last_census_cycles = 0u64;
    let mut drifting = false;
    let mut records_streamed = 0usize;

    let arrivals: Vec<u64> = task.arrivals.clone().collect();
    for &arrival_ns in &arrivals {
        if task.stop.load(Ordering::Relaxed) {
            break;
        }
        // Open loop: wall pacing waits for the scheduled arrival (never
        // for the previous completion); virtual pacing just advances the
        // model clock.
        if task.pacing == Pacing::Wall {
            let now = started.elapsed().as_nanos() as u64;
            if now < arrival_ns {
                std::thread::sleep(std::time::Duration::from_nanos(arrival_ns - now));
            }
        }

        if let Err(e) = scenario.request(&mut vm, true) {
            let mut snap = task.snapshot.lock().unwrap();
            snap.error = Some(format!("request {requests_done}: {e}"));
            break;
        }
        requests_done += 1;
        if let Some(inj) = task.fault.as_mut() {
            if let Err(e) = inj.after_request(&mut vm, requests_done) {
                let mut snap = task.snapshot.lock().unwrap();
                snap.error = Some(format!("fault injection: {e}"));
                break;
            }
        }

        // Latency: completion minus *scheduled* arrival, so queueing
        // delay (from GC pauses or a spike outrunning the server) counts.
        let sample_ns = match task.pacing {
            Pacing::Wall => (started.elapsed().as_nanos() as u64).saturating_sub(arrival_ns),
            Pacing::Virtual => {
                let gc_delta = vm.collections() - last_cycles;
                let service = SERVICE_NS + gc_delta * GC_PENALTY_NS;
                busy_until_ns = busy_until_ns.max(arrival_ns) + service;
                busy_until_ns - arrival_ns
            }
        };
        latency.record_ns(sample_ns);
        if sample_ns > task.slo_ns {
            slo_breaches += 1;
        }

        // Observe: drain new violations; re-read the census only when a
        // collection actually happened (snapshotting it clones maps).
        let cycles = vm.collections();
        let drained = vm.take_violation_log();
        violations += drained.len() as u64;
        if cycles != last_census_cycles {
            drifting = !vm.census().drifts().is_empty();
            last_census_cycles = cycles;
        }
        if let Some(inj) = task.fault.as_mut() {
            inj.observe(&vm, &drained, drifting);
        }
        last_cycles = cycles;

        if requests_done.is_multiple_of(PUBLISH_EVERY) {
            publish(
                &task,
                &vm,
                scenario.counters(),
                &latency,
                slo_breaches,
                violations,
                requests_done,
                false,
            );
            stream_jsonl(&task, &vm, &mut records_streamed);
        }
    }

    // Settle: one final collection so end-of-run assertions (evictions,
    // acks, a just-armed fault) get their verdict, then publish.
    if vm.collect().is_ok() {
        let drained = vm.take_violation_log();
        violations += drained.len() as u64;
        drifting = !vm.census().drifts().is_empty();
        if let Some(inj) = task.fault.as_mut() {
            inj.observe(&vm, &drained, drifting);
        }
    }
    publish(
        &task,
        &vm,
        scenario.counters(),
        &latency,
        slo_breaches,
        violations,
        requests_done,
        true,
    );
    stream_jsonl(&task, &vm, &mut records_streamed);
}

/// Appends the cycle records produced since the last call to the shard's
/// JSONL file, each line tagged with the scenario label and shard index.
fn stream_jsonl(task: &ShardTask, vm: &Vm, streamed: &mut usize) {
    use std::io::Write as _;
    let Some(path) = task.jsonl_path.as_ref() else {
        return;
    };
    let telemetry = vm.telemetry();
    let records = telemetry.records();
    if records.len() <= *streamed {
        return;
    }
    let chunk = gca_telemetry::export::records_to_jsonl_tagged(
        &records[*streamed..],
        Some(task.kind.label()),
        Some(task.shard),
    );
    *streamed = records.len();
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = f.write_all(chunk.as_bytes());
    }
}

#[allow(clippy::too_many_arguments)]
fn publish(
    task: &ShardTask,
    vm: &Vm,
    counters: Vec<(&'static str, u64)>,
    latency: &LatencyHistogram,
    slo_breaches: u64,
    violations: u64,
    requests_done: u64,
    done: bool,
) {
    let census = vm.census();
    let mut snap = task.snapshot.lock().unwrap();
    snap.requests_done = requests_done;
    snap.telemetry = vm.telemetry();
    snap.drifting_keys = census.drifts().len();
    snap.census = census;
    snap.latency = latency.clone();
    snap.slo_breaches = slo_breaches;
    snap.violations = violations;
    snap.counters = counters;
    if let Some(inj) = task.fault.as_ref() {
        snap.fault_armed = inj.armed();
        snap.detection = inj.detection();
    }
    snap.done = done;
}
