//! Fleet soak harness: GC assertions as always-on production monitors.
//!
//! The paper's pitch is that piggybacking assertion checks on collection
//! makes them cheap enough to leave on in production. This crate is the
//! "production": an open-loop load generator drives a fleet of sharded
//! VMs (one thread, one VM, one scenario each) through session-style
//! traffic with ramp/steady/spike arrival phases, while the assertions
//! and the census drift detector run as the only monitoring plane.
//!
//! * [`config::SoakConfig`] — fleet shape, arrival-rate phases, pacing
//!   (wall-clock, or deterministic virtual time for golden tests).
//! * [`fault::FaultPlan`] — inject one of four canonical heap bugs into
//!   a minority of shards and measure **detection latency** (GC cycles
//!   and wall time from injection to the first matching report), plus
//!   the fleet-wide false-positive rate on the clean shards.
//! * [`fleet::Fleet`] — spawn, observe, join; [`fleet::run_soak`] for
//!   the one-call version.
//! * The observability plane — a dependency-free HTTP server with live
//!   `/metrics` (Prometheus, `shard` labels), `/healthz`, and `/status`
//!   (JSON); per-shard JSONL event streams merged into `fleet.jsonl`.
//! * [`report::SoakReport`] — the end-of-run verdict and the
//!   `BENCH_soak.json` writer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod fault;
pub mod fleet;
mod http;
pub mod report;
pub mod shard;

pub use config::{Pacing, Phase, SoakConfig};
pub use fault::{Detection, FaultInjector, FaultKind, FaultPlan};
pub use fleet::{run_soak, Fleet};
pub use report::{normalize_metrics, ShardReport, SoakReport};
pub use shard::ShardSnapshot;
