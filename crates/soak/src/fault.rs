//! Fault injection and detection-latency measurement.
//!
//! A [`FaultPlan`] plants one of four canonical heap bugs into a shard's
//! VM after a given number of requests, *alongside* the scenario's own
//! (clean) traffic. The shard then keeps serving; the assertions and the
//! census drift detector are the only things watching. The interval from
//! injection to the first matching report — in GC cycles and wall time —
//! is the fleet's **detection latency**, the headline number of running
//! GC assertions as always-on production monitors.

use std::time::Instant;

use gc_assertions::{ObjRef, ViolationKind, Vm, VmError};

/// The four injected bug kinds, one per assertion family the paper
/// proposes (§2.2–§2.5) plus census drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A hidden global root retains an object the program asserted dead
    /// (the §2.2 leak shape). Detected as `DeadReachable`.
    Leak,
    /// An ownee reachable around its asserted owner (§2.5.2). Detected
    /// as `NotOwned`.
    Ownership,
    /// A second incoming pointer to an asserted-unshared object
    /// (§2.5.1). Detected as `Shared`.
    Unshared,
    /// A rooted hoard that grows on every request — no assertion is
    /// violated; the rolling-window census drift detector must flag the
    /// growth instead.
    Drift,
}

impl FaultKind {
    /// All kinds, in reporting order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Leak,
        FaultKind::Ownership,
        FaultKind::Unshared,
        FaultKind::Drift,
    ];

    /// Stable CLI/export label.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Leak => "leak",
            FaultKind::Ownership => "ownership",
            FaultKind::Unshared => "unshared",
            FaultKind::Drift => "drift",
        }
    }

    /// Parses a CLI label (as printed by [`FaultKind::label`]).
    pub fn parse(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.label() == s)
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One planned fault: `kind` is injected into shard `shard`'s VM right
/// after that shard has served `after_requests` requests.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Target shard index.
    pub shard: usize,
    /// What to inject.
    pub kind: FaultKind,
    /// Inject after this many served requests.
    pub after_requests: u64,
}

impl FaultPlan {
    /// Creates a plan.
    pub fn new(shard: usize, kind: FaultKind, after_requests: u64) -> FaultPlan {
        FaultPlan {
            shard,
            kind,
            after_requests,
        }
    }
}

/// The moment a fault's first matching report appeared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    /// Major+minor collections between injection and the report.
    pub cycles: u64,
    /// Wall time between injection and the report, nanoseconds.
    pub wall_ns: u64,
}

/// Driver state for one shard's planned fault: arms it at the right
/// request, keeps degenerative faults (drift) progressing, and watches
/// the violation log / census for the first matching report.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    armed_at: Option<(u64, Instant)>,
    detection: Option<Detection>,
    /// Drift hoard: current list head (kept globally rooted).
    drift_head: ObjRef,
    drift_class: Option<gc_assertions::ClassId>,
}

impl FaultInjector {
    /// Creates the injector for `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            armed_at: None,
            detection: None,
            drift_head: ObjRef::NULL,
            drift_class: None,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether the fault has been injected yet.
    pub fn armed(&self) -> bool {
        self.armed_at.is_some()
    }

    /// The detection, once the fault has been reported.
    pub fn detection(&self) -> Option<Detection> {
        self.detection
    }

    /// Called after every served request: arms the fault when its time
    /// comes and keeps the drift hoard growing.
    ///
    /// # Errors
    ///
    /// VM errors from the injected allocations.
    pub fn after_request(&mut self, vm: &mut Vm, requests_done: u64) -> Result<(), VmError> {
        if self.armed_at.is_none() {
            if requests_done >= self.plan.after_requests {
                self.arm(vm)?;
                self.armed_at = Some((vm.collections(), Instant::now()));
            }
            return Ok(());
        }
        if self.plan.kind == FaultKind::Drift && self.detection.is_none() {
            self.grow_hoard(vm, 4)?;
        }
        Ok(())
    }

    /// Plants the bug. One-shot for the assertion faults; the drift
    /// fault plants the hoard's first node and grows from there.
    fn arm(&mut self, vm: &mut Vm) -> Result<(), VmError> {
        let m = vm.main();
        let site = vm.alloc_site("FaultInjector::arm");
        let prev_site = vm.set_alloc_site(site);
        match self.plan.kind {
            FaultKind::Leak => {
                // The program says "dead"; a forgotten registry says no.
                let cls = vm.register_class("LeakedSession", &["data"]);
                vm.push_frame(m)?;
                let obj = vm.alloc_rooted(m, cls, 1, 2)?;
                vm.add_global(obj)?;
                vm.pop_frame(m)?;
                vm.assert_dead(obj)?;
            }
            FaultKind::Ownership => {
                // Ownee reachable via a global, not through its owner.
                let cls = vm.register_class("FaultOwner", &["slot"]);
                vm.push_frame(m)?;
                let owner = vm.alloc_rooted(m, cls, 1, 0)?;
                vm.add_global(owner)?;
                let ownee = vm.alloc_rooted(m, cls, 1, 0)?;
                vm.add_global(ownee)?;
                vm.pop_frame(m)?;
                vm.assert_owned_by(owner, ownee)?;
            }
            FaultKind::Unshared => {
                // Two fields of one parent aimed at the same child.
                let cls = vm.register_class("FaultPair", &["a", "b"]);
                vm.push_frame(m)?;
                let parent = vm.alloc_rooted(m, cls, 2, 0)?;
                vm.add_global(parent)?;
                let child = vm.alloc(m, cls, 2, 0)?;
                vm.pop_frame(m)?;
                vm.set_field(parent, 0, child)?;
                vm.set_field(parent, 1, child)?;
                vm.assert_unshared(child)?;
            }
            FaultKind::Drift => {
                let cls = vm.register_class("DriftHoard", &["next"]);
                self.drift_class = Some(cls);
                self.grow_hoard(vm, 4)?;
            }
        }
        vm.set_alloc_site(prev_site);
        Ok(())
    }

    /// Prepends `n` nodes to the globally rooted hoard list.
    fn grow_hoard(&mut self, vm: &mut Vm, n: usize) -> Result<(), VmError> {
        let cls = self.drift_class.expect("arm() registers the class");
        let m = vm.main();
        let site = vm.alloc_site("FaultInjector::hoard");
        let prev_site = vm.set_alloc_site(site);
        for _ in 0..n {
            vm.push_frame(m)?;
            let node = vm.alloc_rooted(m, cls, 1, 2)?;
            vm.set_field(node, 0, self.drift_head)?;
            vm.add_global(node)?;
            vm.pop_frame(m)?;
            if self.drift_head.is_some() {
                vm.remove_global(self.drift_head)?;
            }
            self.drift_head = node;
        }
        vm.set_alloc_site(prev_site);
        Ok(())
    }

    /// Whether `kind` is the report this fault is waiting for.
    fn matches(&self, kind: &ViolationKind) -> bool {
        matches!(
            (self.plan.kind, kind),
            (FaultKind::Leak, ViolationKind::DeadReachable { .. })
                | (FaultKind::Ownership, ViolationKind::NotOwned { .. })
                | (FaultKind::Unshared, ViolationKind::Shared { .. })
        )
    }

    /// Feeds the violations drained since the last call, plus the
    /// current census drift view, and records the first matching report.
    /// Returns `true` when detection happened on this observation.
    pub fn observe(
        &mut self,
        vm: &Vm,
        drained: &[gc_assertions::Violation],
        census_drifting: bool,
    ) -> bool {
        if self.detection.is_some() {
            return false;
        }
        let Some((cycles_at_arm, at)) = self.armed_at else {
            return false;
        };
        let hit = match self.plan.kind {
            FaultKind::Drift => census_drifting,
            _ => drained.iter().any(|v| self.matches(&v.kind)),
        };
        if hit {
            self.detection = Some(Detection {
                cycles: vm.collections().saturating_sub(cycles_at_arm),
                wall_ns: at.elapsed().as_nanos() as u64,
            });
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_assertions::VmConfig;

    fn vm() -> Vm {
        Vm::new(
            VmConfig::builder()
                .heap_budget(16 * 1024)
                .grow_on_oom(true)
                .telemetry(true)
                .census(true)
                .build(),
        )
    }

    /// Every assertion fault is detected at the very next collection —
    /// detection latency of one cycle from a standing start.
    #[test]
    fn assertion_faults_detected_in_one_cycle() {
        for kind in [FaultKind::Leak, FaultKind::Ownership, FaultKind::Unshared] {
            let mut vm = vm();
            let mut inj = FaultInjector::new(FaultPlan::new(0, kind, 0));
            inj.after_request(&mut vm, 0).unwrap();
            assert!(inj.armed());
            vm.collect().unwrap();
            let drained = vm.take_violation_log();
            assert!(!drained.is_empty(), "{kind}: must violate");
            assert!(inj.observe(&vm, &drained, false), "{kind}: must detect");
            let d = inj.detection().unwrap();
            assert_eq!(d.cycles, 1, "{kind}: next collection finds it");
        }
    }

    #[test]
    fn drift_fault_needs_census_not_violations() {
        let mut vm = vm();
        let mut inj = FaultInjector::new(FaultPlan::new(0, FaultKind::Drift, 0));
        for req in 0..400 {
            inj.after_request(&mut vm, req).unwrap();
        }
        vm.collect().unwrap();
        assert!(
            vm.take_violation_log().is_empty(),
            "a hoard violates no assertion"
        );
        // The hoard grows monotonically, so once enough majors have
        // passed the census flags the DriftHoard class.
        while vm.census().cycles() < 8 {
            inj.after_request(&mut vm, 1_000).unwrap();
            vm.collect().unwrap();
        }
        let drifting = vm.census().drifts().iter().any(|d| d.name == "DriftHoard");
        assert!(
            drifting,
            "census must flag the hoard: {:?}",
            vm.census().drifts()
        );
        assert!(inj.observe(&vm, &[], drifting));
        assert!(inj.detection().unwrap().cycles >= 1);
    }

    #[test]
    fn labels_parse_back() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(FaultKind::parse("nope"), None);
    }
}
