//! Fleet orchestration: spawn one thread per shard, keep the
//! observability plane fed, merge the event logs, and produce the final
//! [`SoakReport`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gca_telemetry::export::{fleet_to_prometheus, prom_label, push_histogram_family, ShardExport};

use crate::config::{Arrivals, SoakConfig};
use crate::fault::FaultInjector;
use crate::http::{HttpServer, HttpState};
use crate::report::SoakReport;
use crate::shard::{run_shard, snapshot_slot, ShardSnapshot, ShardTask};

/// A running soak fleet. Construct with [`Fleet::start`]; consume with
/// [`Fleet::wait`]. While running, [`Fleet::metrics`] /
/// [`Fleet::status_json`] render the same payloads the HTTP plane serves.
#[derive(Debug)]
pub struct Fleet {
    config: SoakConfig,
    snapshots: Vec<Arc<Mutex<ShardSnapshot>>>,
    handles: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    http: Option<HttpServer>,
    started: Instant,
}

impl Fleet {
    /// Spawns the shard threads (and the HTTP server, when configured)
    /// and returns immediately.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from binding the HTTP port, creating the
    /// JSONL directory, or spawning threads.
    pub fn start(config: SoakConfig) -> std::io::Result<Fleet> {
        if let Some(dir) = config.jsonl_dir.as_ref() {
            std::fs::create_dir_all(dir)?;
        }
        let stop = Arc::new(AtomicBool::new(false));
        let snapshots: Vec<_> = (0..config.shards)
            .map(|i| snapshot_slot(&config, i))
            .collect();
        let started = Instant::now();

        let http = match config.http_port {
            Some(port) => Some(HttpServer::start(
                port,
                HttpState {
                    snapshots: snapshots.clone(),
                    slo_ns: config.slo_ns,
                    started,
                },
            )?),
            None => None,
        };

        let mut handles = Vec::with_capacity(config.shards);
        for (i, snapshot) in snapshots.iter().enumerate() {
            let task = ShardTask {
                shard: i as u64,
                kind: config.scenario_for(i),
                // Decorrelate shard RNG streams from one base seed.
                seed: config.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)),
                pacing: config.pacing,
                arrivals: Arrivals::new(&config.phases),
                slo_ns: config.slo_ns,
                fault: config.fault_for(i).map(|p| FaultInjector::new(*p)),
                snapshot: Arc::clone(snapshot),
                stop: Arc::clone(&stop),
                jsonl_path: config
                    .jsonl_dir
                    .as_ref()
                    .map(|d| d.join(format!("shard-{i}.jsonl"))),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("gca-soak-shard-{i}"))
                    .spawn(move || run_shard(task))?,
            );
        }

        Ok(Fleet {
            config,
            snapshots,
            handles,
            stop,
            http,
            started,
        })
    }

    /// The observability server's bound address, when one is running
    /// (with `http_port = Some(0)` this is where the ephemeral port
    /// shows up).
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http.as_ref().map(|h| h.addr)
    }

    /// Clones the current per-shard snapshots.
    pub fn snapshots(&self) -> Vec<ShardSnapshot> {
        self.snapshots
            .iter()
            .map(|s| s.lock().unwrap().clone())
            .collect()
    }

    /// `true` once every shard has finished its schedule.
    pub fn done(&self) -> bool {
        self.snapshots.iter().all(|s| s.lock().unwrap().done)
    }

    /// Renders the current `/metrics` payload.
    pub fn metrics(&self) -> String {
        render_metrics(&self.snapshots())
    }

    /// Renders the current `/status` payload.
    pub fn status_json(&self) -> String {
        render_status(
            &self.snapshots(),
            self.config.slo_ns,
            self.started.elapsed(),
        )
    }

    /// Asks every shard to stop at its next request boundary.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Joins every shard, merges the per-shard JSONL logs into
    /// `fleet.jsonl`, writes `BENCH_soak.json` when configured, shuts
    /// the HTTP server down, and returns the report.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the log merge or the bench write.
    pub fn wait(mut self) -> std::io::Result<SoakReport> {
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        let wall_ms = self.started.elapsed().as_millis() as u64;
        if let Some(dir) = self.config.jsonl_dir.as_ref() {
            merge_fleet_jsonl(dir, self.config.shards)?;
        }
        let report = SoakReport::from_snapshots(&self.snapshots(), wall_ms);
        if let Some(path) = self.config.bench_out.as_ref() {
            report.write_bench(path)?;
        }
        if let Some(mut http) = self.http.take() {
            http.stop();
        }
        Ok(report)
    }
}

/// Runs a whole soak start-to-finish and returns the report.
///
/// # Errors
///
/// See [`Fleet::start`] and [`Fleet::wait`].
pub fn run_soak(config: SoakConfig) -> std::io::Result<SoakReport> {
    Fleet::start(config)?.wait()
}

/// Merges `shard-<i>.jsonl` files into one `fleet.jsonl`, ordered by
/// `(seq, shard)` so interleaved fleet history reads chronologically.
fn merge_fleet_jsonl(dir: &std::path::Path, shards: usize) -> std::io::Result<()> {
    let mut lines: Vec<(u64, u64, String)> = Vec::new();
    for i in 0..shards {
        let path = dir.join(format!("shard-{i}.jsonl"));
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue; // a shard that never collected writes no file
        };
        for line in text.lines() {
            lines.push((json_u64_field(line, "seq"), i as u64, line.to_string()));
        }
    }
    lines.sort_by_key(|(seq, shard, _)| (*seq, *shard));
    let mut out = String::with_capacity(lines.iter().map(|(_, _, l)| l.len() + 1).sum());
    for (_, _, line) in &lines {
        out.push_str(line);
        out.push('\n');
    }
    std::fs::write(dir.join("fleet.jsonl"), out)
}

/// Pulls an unsigned integer field out of a flat JSON line (the merge
/// key only — full parsing lives in `gca-telemetry`).
fn json_u64_field(line: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let Some(at) = line.find(&needle) else {
        return 0;
    };
    line[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

/// Renders the fleet `/metrics` payload: every telemetry and census
/// family with `shard` labels, plus the soak harness's own families
/// (request latency vs SLO, fault-injection detection).
pub(crate) fn render_metrics(snaps: &[ShardSnapshot]) -> String {
    let exports: Vec<ShardExport<'_>> = snaps
        .iter()
        .map(|s| ShardExport {
            shard: s.shard.to_string(),
            telemetry: &s.telemetry,
            census: Some(&s.census),
        })
        .collect();
    let mut out = fleet_to_prometheus(&exports);

    let labels: Vec<String> = snaps.iter().map(shard_labels).collect();
    push_counter_family(
        &mut out,
        "gca_soak_requests_total",
        "Requests served by each shard.",
        snaps
            .iter()
            .zip(&labels)
            .map(|(s, l)| (l.as_str(), s.requests_done)),
    );
    push_counter_family(
        &mut out,
        "gca_soak_slo_breaches_total",
        "Requests whose latency exceeded the configured SLO.",
        snaps
            .iter()
            .zip(&labels)
            .map(|(s, l)| (l.as_str(), s.slo_breaches)),
    );
    push_counter_family(
        &mut out,
        "gca_soak_assertion_violations_total",
        "GC assertion violations reported by each shard.",
        snaps
            .iter()
            .zip(&labels)
            .map(|(s, l)| (l.as_str(), s.violations)),
    );
    push_counter_family(
        &mut out,
        "gca_soak_shard_done",
        "1 once the shard finished its arrival schedule.",
        snaps
            .iter()
            .zip(&labels)
            .map(|(s, l)| (l.as_str(), u64::from(s.done))),
    );

    let series: Vec<(String, &gca_telemetry::LatencyHistogram)> = snaps
        .iter()
        .zip(&labels)
        .map(|(s, l)| (l.clone(), &s.latency))
        .collect();
    push_histogram_family(
        &mut out,
        "gca_soak_request_latency_seconds",
        "Request latency from scheduled arrival to completion.",
        &series,
    );

    // Fault-injection plane: armed/detected markers and the headline
    // detection-latency figures, one series per faulted shard.
    let faulted: Vec<_> = snaps.iter().filter(|s| s.fault.is_some()).collect();
    if !faulted.is_empty() {
        push_help_type(
            &mut out,
            "gca_soak_fault_armed",
            "1 once the planned fault was injected.",
            "gauge",
        );
        for s in &faulted {
            out.push_str(&format!(
                "gca_soak_fault_armed{{{}}} {}\n",
                fault_labels(s),
                u64::from(s.fault_armed)
            ));
        }
        push_help_type(
            &mut out,
            "gca_soak_fault_detected",
            "1 once the fault's first matching report arrived.",
            "gauge",
        );
        for s in &faulted {
            out.push_str(&format!(
                "gca_soak_fault_detected{{{}}} {}\n",
                fault_labels(s),
                u64::from(s.detection.is_some())
            ));
        }
        push_help_type(
            &mut out,
            "gca_soak_detection_latency_cycles",
            "GC cycles from injection to detection.",
            "gauge",
        );
        push_help_type(
            &mut out,
            "gca_soak_detection_latency_seconds",
            "Wall time from injection to detection.",
            "gauge",
        );
        for s in &faulted {
            if let Some(d) = s.detection {
                out.push_str(&format!(
                    "gca_soak_detection_latency_cycles{{{}}} {}\n",
                    fault_labels(s),
                    d.cycles
                ));
                out.push_str(&format!(
                    "gca_soak_detection_latency_seconds{{{}}} {:.9}\n",
                    fault_labels(s),
                    d.wall_ns as f64 / 1e9
                ));
            }
        }
    }
    out
}

fn shard_labels(s: &ShardSnapshot) -> String {
    format!(
        "{},{}",
        prom_label("shard", &s.shard.to_string()),
        prom_label("scenario", s.scenario)
    )
}

fn fault_labels(s: &ShardSnapshot) -> String {
    let kind = s.fault.map(|k| k.label()).unwrap_or("none");
    format!("{},{}", shard_labels(s), prom_label("fault", kind))
}

fn push_help_type(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str(&format!("# HELP {name} {help}\n"));
    out.push_str(&format!("# TYPE {name} {kind}\n"));
}

fn push_counter_family<'a>(
    out: &mut String,
    name: &str,
    help: &str,
    series: impl Iterator<Item = (&'a str, u64)>,
) {
    push_help_type(out, name, help, "counter");
    for (labels, value) in series {
        out.push_str(&format!("{name}{{{labels}}} {value}\n"));
    }
}

/// Renders the `/status` JSON payload.
pub(crate) fn render_status(snaps: &[ShardSnapshot], slo_ns: u64, elapsed: Duration) -> String {
    let mut out = String::with_capacity(512 + snaps.len() * 256);
    out.push_str(&format!(
        "{{\"elapsed_ms\":{},\"slo_ns\":{slo_ns},\"shards\":[",
        elapsed.as_millis()
    ));
    for (i, s) in snaps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"shard\":{},\"scenario\":\"{}\",\"requests_done\":{},\"requests_total\":{},\
             \"gc_cycles\":{},\"minor_cycles\":{},\"violations\":{},\"drifting_keys\":{},\
             \"slo_breaches\":{},\"latency_p50_ns\":{},\"latency_p99_ns\":{}",
            s.shard,
            s.scenario,
            s.requests_done,
            s.requests_total,
            s.telemetry.cycles(),
            s.telemetry.minor_cycles(),
            s.violations,
            s.drifting_keys,
            s.slo_breaches,
            s.latency.quantile_ns(50),
            s.latency.quantile_ns(99),
        ));
        match s.fault {
            Some(kind) => {
                out.push_str(&format!(
                    ",\"fault\":\"{}\",\"fault_armed\":{}",
                    kind.label(),
                    s.fault_armed
                ));
                match s.detection {
                    Some(d) => out.push_str(&format!(
                        ",\"detection\":{{\"cycles\":{},\"wall_ns\":{}}}",
                        d.cycles, d.wall_ns
                    )),
                    None => out.push_str(",\"detection\":null"),
                }
            }
            None => out.push_str(",\"fault\":null"),
        }
        for (name, value) in &s.counters {
            out.push_str(&format!(",\"{name}\":{value}"));
        }
        out.push_str(&format!(
            ",\"clean\":{},\"done\":{},\"error\":{}}}",
            s.is_clean(),
            s.done,
            match s.error.as_ref() {
                Some(e) => format!("\"{}\"", escape_json(e)),
                None => "null".to_string(),
            }
        ));
    }
    out.push_str("]}");
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
