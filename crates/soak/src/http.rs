//! Dependency-free observability endpoint.
//!
//! A single background thread accepts plain HTTP/1.1 connections on
//! `127.0.0.1` and serves three read-only routes off the fleet's
//! published shard snapshots:
//!
//! * `GET /metrics` — Prometheus text exposition (fleet-aggregated,
//!   `shard="i"` labels on every series).
//! * `GET /healthz` — `ok` while every shard is healthy, `503` once any
//!   shard has died on an error.
//! * `GET /status`  — a JSON fleet summary for humans and scripts.
//!
//! The listener is non-blocking and polls a stop flag every few
//! milliseconds, so shutdown is prompt and the server never outlives the
//! soak. Scrapes read snapshot clones only — they can never block a
//! mutator thread.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::shard::ShardSnapshot;

/// Shared state the server renders responses from.
pub(crate) struct HttpState {
    /// Per-shard snapshot slots (same `Arc`s the shard threads publish to).
    pub snapshots: Vec<Arc<Mutex<ShardSnapshot>>>,
    /// SLO threshold, for the status payload.
    pub slo_ns: u64,
    /// Run start, for the status payload's elapsed clock.
    pub started: Instant,
}

/// A running observability server; dropping the handle after
/// [`HttpServer::stop`] joins the thread.
pub(crate) struct HttpServer {
    /// The bound address (port is ephemeral when configured as 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl HttpServer {
    /// Binds `127.0.0.1:port` and starts serving.
    pub fn start(port: u16, state: HttpState) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("gca-soak-http".into())
            .spawn(move || serve(listener, state, thread_stop))?;
        Ok(HttpServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// Signals the accept loop to exit and joins it.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve(listener: TcpListener, state: HttpState, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: scrapes are cheap (snapshot clones) and a
                // soak has a handful of scrapers at most.
                let _ = handle_conn(stream, &state);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_conn(mut stream: TcpStream, state: &HttpState) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Read until the end of the request head; we only need the request
    // line, and every route is a body-less GET.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = route(method, path, state);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

fn route(method: &str, path: &str, state: &HttpState) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        );
    }
    let snaps: Vec<ShardSnapshot> = state
        .snapshots
        .iter()
        .map(|s| s.lock().unwrap().clone())
        .collect();
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            crate::fleet::render_metrics(&snaps),
        ),
        "/healthz" => {
            if snaps.iter().any(|s| s.error.is_some()) {
                (
                    "503 Service Unavailable",
                    "text/plain; charset=utf-8",
                    "degraded\n".to_string(),
                )
            } else {
                ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string())
            }
        }
        "/status" => (
            "200 OK",
            "application/json",
            crate::fleet::render_status(&snaps, state.slo_ns, state.started.elapsed()),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    }
}
