//! End-of-run reporting: the machine-readable `BENCH_soak.json` summary,
//! the pass/fail verdict the CLI (and CI) gate on, and the `/metrics`
//! normalizer the golden test uses.

use crate::fault::{Detection, FaultKind};
use crate::shard::ShardSnapshot;

/// One shard's end-of-run summary.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: u64,
    /// Scenario label.
    pub scenario: &'static str,
    /// Requests served.
    pub requests: u64,
    /// Major collections over the run.
    pub gc_cycles: u64,
    /// Minor collections over the run.
    pub minor_cycles: u64,
    /// Assertion violations reported.
    pub violations: u64,
    /// Census keys drifting at the end of the run.
    pub drifting_keys: usize,
    /// Latency samples above the SLO.
    pub slo_breaches: u64,
    /// Conservative (bucket-upper-bound) latency quantiles, ns.
    pub p50_ns: u64,
    /// See `p50_ns`.
    pub p99_ns: u64,
    /// Mean request latency, ns.
    pub mean_ns: u64,
    /// The fault injected into this shard, if any.
    pub fault: Option<FaultKind>,
    /// Detection latency, once the fault was reported.
    pub detection: Option<Detection>,
    /// Shard-thread error, if it died early.
    pub error: Option<String>,
}

impl ShardReport {
    /// A shard with no planned fault — the population the false-positive
    /// rate is computed over.
    pub fn is_clean_shard(&self) -> bool {
        self.fault.is_none()
    }

    /// A clean shard that reported anyway: a fleet false positive.
    pub fn is_false_positive(&self) -> bool {
        self.is_clean_shard() && (self.violations > 0 || self.drifting_keys > 0)
    }
}

/// Whole-fleet end-of-run summary; what `BENCH_soak.json` serializes.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Per-shard summaries, in shard order.
    pub shards: Vec<ShardReport>,
    /// Wall time of the whole run, milliseconds.
    pub wall_ms: u64,
}

impl SoakReport {
    /// Builds the report from the fleet's final snapshots.
    pub fn from_snapshots(snaps: &[ShardSnapshot], wall_ms: u64) -> SoakReport {
        SoakReport {
            shards: snaps
                .iter()
                .map(|s| ShardReport {
                    shard: s.shard,
                    scenario: s.scenario,
                    requests: s.requests_done,
                    gc_cycles: s.telemetry.cycles(),
                    minor_cycles: s.telemetry.minor_cycles(),
                    violations: s.violations,
                    drifting_keys: s.drifting_keys,
                    slo_breaches: s.slo_breaches,
                    p50_ns: s.latency.quantile_ns(50),
                    p99_ns: s.latency.quantile_ns(99),
                    mean_ns: s.latency.mean_ns(),
                    fault: s.fault,
                    detection: s.detection,
                    error: s.error.clone(),
                })
                .collect(),
            wall_ms,
        }
    }

    /// Every planned fault produced a finite detection latency.
    pub fn all_faults_detected(&self) -> bool {
        self.shards
            .iter()
            .filter(|s| s.fault.is_some())
            .all(|s| s.detection.is_some())
    }

    /// Fraction of *clean* shards that reported a violation or drift —
    /// the fleet-wide false-positive rate. 0.0 when there are no clean
    /// shards.
    pub fn false_positive_rate(&self) -> f64 {
        let clean = self.shards.iter().filter(|s| s.is_clean_shard()).count();
        if clean == 0 {
            return 0.0;
        }
        let noisy = self.shards.iter().filter(|s| s.is_false_positive()).count();
        noisy as f64 / clean as f64
    }

    /// The verdict the CLI exits on: every fault detected, no clean
    /// shard reported, no shard died.
    pub fn passed(&self) -> bool {
        self.all_faults_detected()
            && self.false_positive_rate() == 0.0
            && self.shards.iter().all(|s| s.error.is_none())
    }

    /// Serializes the report as the `BENCH_soak.json` payload.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.shards.len() * 256);
        out.push_str(&format!(
            "{{\"bench\":\"soak\",\"wall_ms\":{},\"passed\":{},\
             \"false_positive_rate\":{:.4},\"shards\":[",
            self.wall_ms,
            self.passed(),
            self.false_positive_rate()
        ));
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"shard\":{},\"scenario\":\"{}\",\"requests\":{},\"gc_cycles\":{},\
                 \"minor_cycles\":{},\"violations\":{},\"drifting_keys\":{},\
                 \"slo_breaches\":{},\"latency_p50_ns\":{},\"latency_p99_ns\":{},\
                 \"latency_mean_ns\":{}",
                s.shard,
                s.scenario,
                s.requests,
                s.gc_cycles,
                s.minor_cycles,
                s.violations,
                s.drifting_keys,
                s.slo_breaches,
                s.p50_ns,
                s.p99_ns,
                s.mean_ns,
            ));
            match s.fault {
                Some(kind) => out.push_str(&format!(",\"fault\":\"{kind}\"")),
                None => out.push_str(",\"fault\":null"),
            }
            match s.detection {
                Some(d) => out.push_str(&format!(
                    ",\"detection\":{{\"cycles\":{},\"wall_ns\":{}}}",
                    d.cycles, d.wall_ns
                )),
                None => out.push_str(",\"detection\":null"),
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Writes [`SoakReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn write_bench(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json() + "\n")
    }

    /// A human-readable summary for the CLI.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for s in &self.shards {
            out.push_str(&format!(
                "shard {} [{}]: {} requests, {} majors/{} minors, {} violations, {} drifting, p99 {:.3}ms",
                s.shard,
                s.scenario,
                s.requests,
                s.gc_cycles,
                s.minor_cycles,
                s.violations,
                s.drifting_keys,
                s.p99_ns as f64 / 1e6,
            ));
            if let Some(kind) = s.fault {
                match s.detection {
                    Some(d) => out.push_str(&format!(
                        " — fault {kind} DETECTED after {} cycles / {:.1}ms",
                        d.cycles,
                        d.wall_ns as f64 / 1e6
                    )),
                    None => out.push_str(&format!(" — fault {kind} NOT DETECTED")),
                }
            }
            if let Some(e) = &s.error {
                out.push_str(&format!(" — ERROR: {e}"));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "fleet: {} shards, {:.0}% false positives, {} in {}ms\n",
            self.shards.len(),
            self.false_positive_rate() * 100.0,
            if self.passed() { "PASS" } else { "FAIL" },
            self.wall_ms
        ));
        out
    }
}

/// Strips the wall-clock-dependent values out of a `/metrics` payload so
/// the rest can be golden-tested. Under virtual pacing every *count* in
/// the payload is deterministic; only measured GC durations vary run to
/// run. Specifically:
///
/// * `gca_gc_phase_seconds_total` and `gca_gc_worker_mark_seconds_total`
///   values are replaced with `NORM`;
/// * `gca_gc_pause_seconds` `_bucket` and `_sum` lines are dropped
///   (bucket shape depends on measured pauses) while `_count` is kept;
/// * `gca_soak_detection_latency_seconds` values are replaced with
///   `NORM` (the `_cycles` variant is deterministic and kept verbatim).
pub fn normalize_metrics(metrics: &str) -> String {
    let mut out = String::with_capacity(metrics.len());
    for line in metrics.lines() {
        if !line.starts_with('#') {
            let family = line.split(['{', ' ']).next().unwrap_or("");
            match family {
                "gca_gc_pause_seconds_bucket" | "gca_gc_pause_seconds_sum" => continue,
                "gca_gc_phase_seconds_total"
                | "gca_gc_worker_mark_seconds_total"
                | "gca_soak_detection_latency_seconds" => {
                    if let Some(at) = line.rfind(' ') {
                        out.push_str(&line[..at]);
                        out.push_str(" NORM\n");
                        continue;
                    }
                }
                _ => {}
            }
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizer_strips_time_families_only() {
        let metrics = "\
# HELP gca_gc_phase_seconds_total t\n\
gca_gc_phase_seconds_total{phase=\"mark\"} 0.123456\n\
gca_gc_pause_seconds_bucket{le=\"0.001\"} 3\n\
gca_gc_pause_seconds_sum 0.5\n\
gca_gc_pause_seconds_count 3\n\
gca_gc_cycles_total 7\n";
        let norm = normalize_metrics(metrics);
        assert!(norm.contains("gca_gc_phase_seconds_total{phase=\"mark\"} NORM\n"));
        assert!(!norm.contains("gca_gc_pause_seconds_bucket"));
        assert!(!norm.contains("gca_gc_pause_seconds_sum"));
        assert!(norm.contains("gca_gc_pause_seconds_count 3\n"));
        assert!(norm.contains("gca_gc_cycles_total 7\n"));
        assert!(norm.contains("# HELP gca_gc_phase_seconds_total t\n"));
    }

    #[test]
    fn report_verdicts() {
        let clean = ShardReport {
            shard: 0,
            scenario: "session-cache",
            requests: 100,
            gc_cycles: 5,
            minor_cycles: 10,
            violations: 0,
            drifting_keys: 0,
            slo_breaches: 0,
            p50_ns: 1,
            p99_ns: 2,
            mean_ns: 1,
            fault: None,
            detection: None,
            error: None,
        };
        let mut faulted = clean.clone();
        faulted.shard = 1;
        faulted.fault = Some(FaultKind::Leak);
        faulted.violations = 1;
        faulted.detection = Some(Detection {
            cycles: 1,
            wall_ns: 1_000,
        });
        let report = SoakReport {
            shards: vec![clean.clone(), faulted.clone()],
            wall_ms: 10,
        };
        assert!(report.passed());
        assert_eq!(report.false_positive_rate(), 0.0);

        // An undetected fault fails the run.
        let mut undetected = faulted.clone();
        undetected.detection = None;
        let report = SoakReport {
            shards: vec![clean.clone(), undetected],
            wall_ms: 10,
        };
        assert!(!report.passed());

        // A violating clean shard is a false positive and fails the run.
        let mut noisy = clean.clone();
        noisy.violations = 2;
        let report = SoakReport {
            shards: vec![clean, noisy],
            wall_ms: 10,
        };
        assert!((report.false_positive_rate() - 0.5).abs() < 1e-9);
        assert!(!report.passed());
    }

    #[test]
    fn bench_json_is_parseable_shape() {
        let report = SoakReport {
            shards: vec![ShardReport {
                shard: 0,
                scenario: "broker",
                requests: 42,
                gc_cycles: 3,
                minor_cycles: 6,
                violations: 0,
                drifting_keys: 0,
                slo_breaches: 1,
                p50_ns: 1023,
                p99_ns: 8191,
                mean_ns: 900,
                fault: Some(FaultKind::Drift),
                detection: Some(Detection {
                    cycles: 9,
                    wall_ns: 123,
                }),
                error: None,
            }],
            wall_ms: 77,
        };
        let json = report.to_json();
        assert!(json.starts_with("{\"bench\":\"soak\""));
        assert!(json.contains("\"fault\":\"drift\""));
        assert!(json.contains("\"detection\":{\"cycles\":9,\"wall_ns\":123}"));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
