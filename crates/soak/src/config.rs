//! Soak-run configuration: fleet shape, arrival-rate phases, pacing.

use crate::fault::FaultPlan;
use gca_workloads::scenario::ScenarioKind;

/// How the load generator advances time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pacing {
    /// Real time: the shard thread sleeps until each scheduled arrival
    /// and latency is measured with wall clocks. What a real soak uses.
    #[default]
    Wall,
    /// Deterministic virtual time: arrivals, service times, and queueing
    /// follow a fixed analytical model (`SERVICE_NS` per request plus
    /// `GC_PENALTY_NS` per major collection observed during it), so the
    /// latency histograms — and therefore the `/metrics` payload — are
    /// bit-identical across runs. What the golden tests use.
    Virtual,
}

/// Virtual-pacing model: nominal service time per request, nanoseconds.
pub const SERVICE_NS: u64 = 1_000_000;
/// Virtual-pacing model: added pause per major collection that ran
/// during a request, nanoseconds.
pub const GC_PENALTY_NS: u64 = 5_000_000;

/// One arrival-rate phase of the open-loop schedule. The instantaneous
/// rate interpolates linearly from `rate_start` to `rate_end` across the
/// phase, so a ramp, a steady plateau, and a spike are all the same
/// shape with different endpoints.
#[derive(Debug, Clone)]
pub struct Phase {
    /// Display name ("ramp", "steady", "spike", ...).
    pub name: String,
    /// Phase length in milliseconds (virtual or wall, per [`Pacing`]).
    pub duration_ms: u64,
    /// Arrival rate at the start of the phase, requests/second.
    pub rate_start: f64,
    /// Arrival rate at the end of the phase, requests/second.
    pub rate_end: f64,
}

impl Phase {
    /// A phase holding `rps` constant for `duration_ms`.
    pub fn steady(name: &str, duration_ms: u64, rps: f64) -> Phase {
        Phase {
            name: name.to_string(),
            duration_ms,
            rate_start: rps,
            rate_end: rps,
        }
    }

    /// A phase ramping linearly from `from` to `to` requests/second.
    pub fn ramp(name: &str, duration_ms: u64, from: f64, to: f64) -> Phase {
        Phase {
            name: name.to_string(),
            duration_ms,
            rate_start: from,
            rate_end: to,
        }
    }
}

/// Full configuration of a soak run.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Number of shards: one VM, one scenario instance, one thread each.
    pub shards: usize,
    /// Scenarios assigned to shards round-robin.
    pub scenarios: Vec<ScenarioKind>,
    /// The arrival-rate schedule, identical for every shard.
    pub phases: Vec<Phase>,
    /// Virtual (deterministic) or wall-clock pacing.
    pub pacing: Pacing,
    /// Base RNG seed; shard `i` derives its own stream from it.
    pub seed: u64,
    /// Faults to inject, each on one shard (see [`FaultPlan`]).
    pub faults: Vec<FaultPlan>,
    /// Request-latency SLO in nanoseconds; breaches are counted per
    /// shard and exported.
    pub slo_ns: u64,
    /// Serve `/metrics`, `/healthz` and `/status` on `127.0.0.1:port`
    /// for the duration of the run (`Some(0)` = ephemeral port).
    pub http_port: Option<u16>,
    /// Write per-shard `shard-<i>.jsonl` files plus a merged
    /// `fleet.jsonl` event log under this directory.
    pub jsonl_dir: Option<std::path::PathBuf>,
    /// Write a `BENCH_soak.json` machine-readable summary here.
    pub bench_out: Option<std::path::PathBuf>,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            shards: 4,
            scenarios: ScenarioKind::ALL.to_vec(),
            phases: vec![
                Phase::ramp("ramp", 250, 100.0, 800.0),
                Phase::steady("steady", 500, 800.0),
                Phase::ramp("spike", 250, 2400.0, 2400.0),
            ],
            pacing: Pacing::Wall,
            seed: 42,
            faults: Vec::new(),
            slo_ns: 10_000_000,
            http_port: None,
            jsonl_dir: None,
            bench_out: None,
        }
    }
}

impl SoakConfig {
    /// The deterministic 2-shard configuration the golden tests (and the
    /// `figures --soak-bench` hook) run: virtual pacing, fixed seed, no
    /// faults, no I/O.
    pub fn smoke() -> SoakConfig {
        SoakConfig {
            shards: 2,
            pacing: Pacing::Virtual,
            ..SoakConfig::default()
        }
    }

    /// The scenario shard `i` runs (round-robin over `scenarios`).
    pub fn scenario_for(&self, shard: usize) -> ScenarioKind {
        self.scenarios[shard % self.scenarios.len()]
    }

    /// The fault planned for shard `i`, if any.
    pub fn fault_for(&self, shard: usize) -> Option<&FaultPlan> {
        self.faults.iter().find(|f| f.shard == shard)
    }

    /// Total scheduled arrivals per shard under this phase schedule.
    pub fn requests_per_shard(&self) -> usize {
        Arrivals::new(&self.phases).count()
    }
}

/// Iterator over the open-loop arrival schedule: yields each scheduled
/// arrival offset in nanoseconds from the start of the run. The schedule
/// is a pure function of the phases — deterministic, and independent of
/// how fast the server actually processes requests (that difference *is*
/// the queueing delay the latency histograms measure).
#[derive(Debug, Clone)]
pub struct Arrivals {
    phases: Vec<Phase>,
    phase: usize,
    /// Offset inside the current phase, nanoseconds.
    in_phase_ns: f64,
    /// Sum of completed phases' durations, nanoseconds.
    base_ns: f64,
}

impl Arrivals {
    /// Builds the schedule for `phases`.
    pub fn new(phases: &[Phase]) -> Arrivals {
        Arrivals {
            phases: phases.to_vec(),
            phase: 0,
            in_phase_ns: 0.0,
            base_ns: 0.0,
        }
    }
}

impl Iterator for Arrivals {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            let p = self.phases.get(self.phase)?;
            let dur_ns = p.duration_ms as f64 * 1e6;
            if self.in_phase_ns >= dur_ns {
                self.base_ns += dur_ns;
                self.in_phase_ns -= dur_ns;
                self.phase += 1;
                continue;
            }
            let frac = self.in_phase_ns / dur_ns;
            let rate = p.rate_start + (p.rate_end - p.rate_start) * frac;
            if rate <= 0.0 {
                // Silent phase: skip to its end.
                self.in_phase_ns = dur_ns;
                continue;
            }
            let arrival = self.base_ns + self.in_phase_ns;
            self.in_phase_ns += 1e9 / rate;
            return Some(arrival as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_phase_arrivals_are_evenly_spaced() {
        let arrivals: Vec<u64> = Arrivals::new(&[Phase::steady("s", 10, 1000.0)]).collect();
        assert_eq!(arrivals.len(), 10, "10ms at 1000rps = 10 arrivals");
        assert_eq!(arrivals[0], 0);
        let gaps: Vec<u64> = arrivals.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.iter().all(|&g| g == 1_000_000), "1ms gaps: {gaps:?}");
    }

    #[test]
    fn ramp_phase_tightens_gaps() {
        let arrivals: Vec<u64> = Arrivals::new(&[Phase::ramp("r", 100, 100.0, 2000.0)]).collect();
        let first_gap = arrivals[1] - arrivals[0];
        let last_gap = arrivals[arrivals.len() - 1] - arrivals[arrivals.len() - 2];
        assert!(
            first_gap > 4 * last_gap,
            "ramp must accelerate: {first_gap} vs {last_gap}"
        );
    }

    #[test]
    fn phases_chain_and_zero_rate_is_silent() {
        let phases = [
            Phase::steady("a", 5, 1000.0),
            Phase::steady("quiet", 5, 0.0),
            Phase::steady("b", 5, 1000.0),
        ];
        let arrivals: Vec<u64> = Arrivals::new(&phases).collect();
        assert_eq!(arrivals.len(), 10);
        // The second burst starts after the silent phase.
        assert!(arrivals[5] >= 10_000_000);
    }

    #[test]
    fn schedule_is_deterministic() {
        let c = SoakConfig::smoke();
        let a: Vec<u64> = Arrivals::new(&c.phases).collect();
        let b: Vec<u64> = Arrivals::new(&c.phases).collect();
        assert_eq!(a, b);
        assert_eq!(c.requests_per_shard(), a.len());
        assert!(
            a.len() > 500,
            "smoke schedule drives real load: {}",
            a.len()
        );
    }

    #[test]
    fn round_robin_scenarios_and_fault_lookup() {
        let c = SoakConfig {
            faults: vec![FaultPlan::new(1, crate::fault::FaultKind::Leak, 50)],
            ..SoakConfig::default()
        };
        assert_eq!(c.scenario_for(0), ScenarioKind::SessionCache);
        assert_eq!(c.scenario_for(3), ScenarioKind::SessionCache);
        assert_eq!(c.scenario_for(4), ScenarioKind::SocialGraph);
        assert!(c.fault_for(1).is_some());
        assert!(c.fault_for(0).is_none());
    }
}
