//! luindex — the DaCapo text-indexing benchmark, modelled as a real
//! inverted-index builder (companion to [`crate::lusearch_app`], which
//! models the search side).
//!
//! Heap shape: `Index { terms: HashMap } -> PostingList (LinkedList) ->
//! Posting { doc } -> Document`. Indexing a document allocates transient
//! token buffers that must die with the document's processing — an ideal
//! workload for combining two assertion styles:
//!
//! * `assert_owned_by(index, posting)` — every posting must stay
//!   reachable through the index (one owner, many thousands of ownees);
//! * `assert_dead(scratch)` — per-document tokenization scratch must be
//!   garbage once the document is indexed.
//!
//! The `scratch_cache_bug` switch plants the leak this instrumentation
//! catches: a "recent tokens" cache that pins every document's scratch
//! buffer.

use gc_assertions::{Vm, VmError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::runner::Workload;
use crate::structures::{HHashMap, HList};

/// The luindex workload.
#[derive(Debug, Clone)]
pub struct Luindex {
    /// Documents to index.
    pub documents: usize,
    /// Tokens per document.
    pub tokens_per_doc: usize,
    /// Vocabulary size (term ids).
    pub vocabulary: u64,
    /// Plant the scratch-cache leak.
    pub scratch_cache_bug: bool,
    /// Heap budget in words.
    pub budget: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Luindex {
    fn default() -> Self {
        Luindex {
            documents: 150,
            tokens_per_doc: 40,
            vocabulary: 500,
            scratch_cache_bug: false,
            budget: 120_000,
            seed: 0x10D8,
        }
    }
}

impl Luindex {
    /// The buggy variant for the case-study tests.
    pub fn with_scratch_cache_bug() -> Luindex {
        Luindex {
            scratch_cache_bug: true,
            ..Luindex::default()
        }
    }
}

impl Workload for Luindex {
    fn name(&self) -> &str {
        "luindex_app"
    }

    fn heap_budget(&self) -> usize {
        self.budget
    }

    fn run(&self, vm: &mut Vm, assertions: bool) -> Result<(), VmError> {
        let m = vm.main();
        let index_class = vm.register_class("Index", &["terms"]);
        let doc_class = vm.register_class("Document", &[]);
        let posting_class = vm.register_class("Posting", &["doc"]);
        let scratch_class = vm.register_class("TokenScratch", &[]);
        let cache_class = vm.register_class("RecentTokens", &["latest"]);

        let index = vm.alloc(m, index_class, 1, 1)?;
        vm.add_root(m, index)?;
        let terms = HHashMap::new(vm, m, 64)?;
        vm.set_field(index, 0, terms.handle())?;

        // The buggy "recent tokens" cache.
        let cache = vm.alloc(m, cache_class, 1, 0)?;
        vm.add_root(m, cache)?;

        let mut rng = SmallRng::seed_from_u64(self.seed);
        for d in 0..self.documents {
            vm.push_frame(m)?;
            let doc = vm.alloc_rooted(m, doc_class, 0, 6)?;
            vm.set_data_word(doc, 0, d as u64)?;

            // Tokenize: a scratch buffer that must die with this loop.
            let scratch = vm.alloc_rooted(m, scratch_class, 0, self.tokens_per_doc)?;
            for t in 0..self.tokens_per_doc {
                let term = rng.gen_range(0..self.vocabulary);
                vm.set_data_word(scratch, t, term)?;
            }
            if self.scratch_cache_bug {
                vm.set_field(cache, 0, scratch)?; // pins the scratch
            }

            // Post each token into the inverted index.
            for t in 0..self.tokens_per_doc {
                let term = vm.data_word(scratch, t)?;
                let list = match terms.get(vm, term)? {
                    Some(handle) => HList::from_handle(vm, handle)?,
                    None => {
                        let list = HList::new(vm, m)?;
                        terms.put(vm, m, term, list.handle())?;
                        list
                    }
                };
                let posting = vm.alloc(m, posting_class, 1, 1)?;
                vm.set_field(posting, 0, doc)?;
                list.push_front(vm, m, posting)?;
                if assertions {
                    // Every posting is owned by the index.
                    vm.assert_owned_by(index, posting)?;
                }
            }

            vm.pop_frame(m)?;
            if assertions {
                // Tokenization scratch must be garbage once the document
                // is indexed; with the cache bug present this fires with
                // a path through RecentTokens.
                vm.assert_dead(scratch)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_once, ExpConfig};
    use gc_assertions::ViolationKind;

    fn small(mut l: Luindex) -> Luindex {
        l.documents = 40;
        l.tokens_per_doc = 20;
        l.budget = 40_000;
        l
    }

    #[test]
    fn clean_indexing_passes_both_assertion_styles() {
        let l = small(Luindex::default());
        let m = run_once(&l, ExpConfig::WithAssertions).unwrap();
        assert_eq!(m.violations, 0);
        assert!(m.ownees_checked_per_gc > 0.0, "postings were checked");
    }

    #[test]
    fn scratch_cache_bug_caught_by_assert_dead() {
        let l = small(Luindex::with_scratch_cache_bug());
        let mut vm = gc_assertions::Vm::new(
            gc_assertions::VmConfig::builder()
                .heap_budget(l.budget)
                .build(),
        );
        l.run(&mut vm, true).unwrap();
        vm.collect().unwrap();
        let log = vm.take_violation_log();
        let scratch_leaks = log
            .iter()
            .filter(|v| match &v.kind {
                ViolationKind::DeadReachable { class_name, .. } => class_name == "TokenScratch",
                _ => false,
            })
            .count();
        assert!(scratch_leaks > 0, "cached scratch buffers must fire");
        // The path names the cache.
        let v = log
            .iter()
            .find(|v| matches!(&v.kind, ViolationKind::DeadReachable { class_name, .. } if class_name == "TokenScratch"))
            .unwrap();
        assert!(v.path.passes_through(vm.registry(), "RecentTokens"));
    }

    #[test]
    fn postings_stay_owned_through_queries() {
        // After indexing, every term lookup sees postings that remain
        // owned — repeated GCs stay clean.
        let l = small(Luindex::default());
        let mut vm = gc_assertions::Vm::new(
            gc_assertions::VmConfig::builder()
                .heap_budget(l.budget)
                .build(),
        );
        l.run(&mut vm, true).unwrap();
        for _ in 0..3 {
            let report = vm.collect().unwrap();
            assert!(report.is_clean(), "{report}");
        }
        assert!(vm.ownee_count() > 100);
    }

    #[test]
    fn deterministic_allocations() {
        let l = small(Luindex::default());
        let a = run_once(&l, ExpConfig::Base).unwrap();
        let b = run_once(&l, ExpConfig::Base).unwrap();
        assert_eq!(a.allocations, b.allocations);
    }
}
