//! pseudojbb — a fixed-workload model of SPEC JBB2000 (§3.1.1, §3.2.1).
//!
//! SPEC JBB2000 emulates a three-tier order-processing system with data
//! stored in B-trees rather than an external database; `pseudojbb` is the
//! fixed-transaction-count variant the paper benchmarks. This module
//! rebuilds its heap shape and its **three documented memory bugs**:
//!
//! 1. **Customer.lastOrder leak** — destroying an `Order` does not clear
//!    the back reference from its `Customer`, so "destroyed" orders stay
//!    reachable. Fixed by [`JbbBugs::fix_customer_back_ref`].
//! 2. **orderTable BTree leak** (first reported by Jump & McKinley) —
//!    delivered orders are never removed from the `District.orderTable`
//!    B-tree. Fixed by [`JbbBugs::fix_order_table`].
//! 3. **oldCompany drag** — the main loop keeps the previous `Company` in
//!    a local variable for the whole method, delaying reclamation of the
//!    entire old hierarchy by one iteration. Fixed by
//!    [`JbbBugs::fix_old_company_drag`].
//!
//! The class graph matches the paper's Figure 1 path:
//! `Company -> Object[] -> Warehouse -> Object[] -> District ->
//! longBTree -> longBTreeNode -> Object[] -> Order`.

use gc_assertions::{ClassId, MutatorId, ObjRef, Vm, VmError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

use crate::runner::Workload;
use crate::structures::HBTree;

/// Which of SPEC JBB2000's bugs are repaired in this run.
#[derive(Debug, Clone, Copy)]
pub struct JbbBugs {
    /// Clear `Customer.lastOrder` when the order it names is destroyed
    /// (repairs leak 1).
    pub fix_customer_back_ref: bool,
    /// Remove delivered orders from the district's orderTable (repairs
    /// leak 2).
    pub fix_order_table: bool,
    /// Null the `oldCompany` local as soon as the old company is
    /// destroyed (repairs drag 3).
    pub fix_old_company_drag: bool,
}

impl JbbBugs {
    /// All bugs present — faithful SPEC JBB2000 behaviour.
    pub fn all_present() -> JbbBugs {
        JbbBugs {
            fix_customer_back_ref: false,
            fix_order_table: false,
            fix_old_company_drag: false,
        }
    }

    /// All bugs repaired, as after the paper's debugging sessions.
    pub fn all_fixed() -> JbbBugs {
        JbbBugs {
            fix_customer_back_ref: true,
            fix_order_table: true,
            fix_old_company_drag: true,
        }
    }
}

/// Which assertion style instruments the run (§3.2.1 uses both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JbbAssertions {
    /// `assert_dead` in the destructors (requires knowing *where* objects
    /// should die) plus `assert_instances(Company, 1)`.
    Dead,
    /// `assert_owned_by(orderTable, order)` at insertion (the "easier way
    /// to detect such problems", per the paper) plus
    /// `assert_instances(Company, 1)`.
    Ownership,
}

/// The pseudojbb workload.
#[derive(Debug, Clone)]
pub struct PseudoJbb {
    /// Warehouses per company.
    pub warehouses: usize,
    /// Districts per warehouse (each has an orderTable B-tree).
    pub districts: usize,
    /// Customers per company.
    pub customers: usize,
    /// Transactions to run.
    pub transactions: usize,
    /// Order lines per order.
    pub orderlines: usize,
    /// Orders outstanding before a delivery transaction fires.
    pub delivery_batch: usize,
    /// Company generations (the main loop destroys and recreates the
    /// company; >1 exercises the oldCompany drag).
    pub company_generations: usize,
    /// Simulated order-processing computation per transaction (heap
    /// reads plus arithmetic); dilutes GC time to a realistic fraction
    /// of total run time, as in the real three-tier benchmark.
    pub compute: usize,
    /// Bug switches.
    pub bugs: JbbBugs,
    /// Assertion style used when the runner enables assertions.
    pub style: JbbAssertions,
    /// Heap budget in words.
    pub budget: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PseudoJbb {
    fn default() -> Self {
        PseudoJbb {
            warehouses: 2,
            districts: 3,
            customers: 40,
            transactions: 20_000,
            orderlines: 4,
            delivery_batch: 8,
            company_generations: 1,
            compute: 500,
            bugs: JbbBugs::all_fixed(),
            style: JbbAssertions::Ownership,
            budget: 90_000,
            seed: 0x1BB,
        }
    }
}

impl PseudoJbb {
    /// The configuration used for the Figure 2–5 performance runs: bugs
    /// fixed (so WithAssertions measures checking cost, not violation
    /// reporting) and ownership-style assertions at every order insertion.
    pub fn for_figures() -> PseudoJbb {
        PseudoJbb::default()
    }

    /// The §3.2.1 debugging scenario: all three bugs present,
    /// `assert_dead` instrumentation in the destructors.
    pub fn buggy_with_dead_asserts() -> PseudoJbb {
        PseudoJbb {
            bugs: JbbBugs::all_present(),
            style: JbbAssertions::Dead,
            transactions: 600,
            ..PseudoJbb::default()
        }
    }

    /// The §3.2.1 follow-up: the same bugs found with ownership assertions
    /// instead (no need to know where orders die).
    pub fn buggy_with_ownership_asserts() -> PseudoJbb {
        PseudoJbb {
            bugs: JbbBugs::all_present(),
            style: JbbAssertions::Ownership,
            transactions: 600,
            ..PseudoJbb::default()
        }
    }
}

/// Class handles, registered once per VM.
#[derive(Debug, Clone, Copy)]
struct JbbClasses {
    company: ClassId,
    array: ClassId,
    warehouse: ClassId,
    district: ClassId,
    customer: ClassId,
    order: ClassId,
    orderline: ClassId,
}

fn register_classes(vm: &mut Vm) -> JbbClasses {
    JbbClasses {
        company: vm.register_class("Company", &["warehouses", "customers"]),
        array: vm.register_class("Object[]", &[]),
        warehouse: vm.register_class("Warehouse", &["districts"]),
        district: vm.register_class("District", &["orderTable"]),
        customer: vm.register_class("Customer", &["lastOrder"]),
        order: vm.register_class("Order", &["customer", "orderLines"]),
        orderline: vm.register_class("OrderLine", &[]),
    }
}

/// One company hierarchy plus the driver-side bookkeeping a real JBB
/// driver would hold in locals.
#[derive(Debug)]
struct World {
    company: ObjRef,
    customers: Vec<ObjRef>,
    /// One order table per (warehouse, district).
    districts: Vec<HBTree>,
    /// Undelivered order ids per district (driver-side queue).
    pending: Vec<VecDeque<u64>>,
    next_order_id: u64,
}

fn build_world(
    vm: &mut Vm,
    m: MutatorId,
    cls: &JbbClasses,
    cfg: &PseudoJbb,
    assertions: bool,
) -> Result<World, VmError> {
    vm.push_frame(m)?;
    let company = vm.alloc_rooted(m, cls.company, 2, 2)?;

    let warehouses = vm.alloc(m, cls.array, cfg.warehouses, 0)?;
    vm.set_field(company, 0, warehouses)?;
    let customers_arr = vm.alloc(m, cls.array, cfg.customers, 0)?;
    vm.set_field(company, 1, customers_arr)?;

    let mut districts = Vec::new();
    let mut pending = Vec::new();
    for w in 0..cfg.warehouses {
        let wh = vm.alloc(m, cls.warehouse, 1, 4)?;
        vm.set_field(warehouses, w, wh)?;
        let darr = vm.alloc(m, cls.array, cfg.districts, 0)?;
        vm.set_field(wh, 0, darr)?;
        for d in 0..cfg.districts {
            let district = vm.alloc(m, cls.district, 1, 4)?;
            vm.set_field(darr, d, district)?;
            let table = HBTree::new(vm, m)?;
            vm.set_field(district, 0, table.handle())?;
            districts.push(table);
            pending.push(VecDeque::new());
        }
    }

    let mut customers = Vec::new();
    for c in 0..cfg.customers {
        let cust = vm.alloc(m, cls.customer, 1, 6)?;
        vm.set_field(customers_arr, c, cust)?;
        vm.set_data_word(cust, 0, c as u64)?;
        customers.push(cust);
    }

    if assertions {
        // The Company is a singleton: at most one live instance (§3.2.1
        // notes assert-instances would also have caught the drag).
        vm.assert_instances(cls.company, 1)?;
    }

    vm.pop_frame(m)?;
    Ok(World {
        company,
        customers,
        districts,
        pending,
        next_order_id: 1,
    })
}

/// NewOrder transaction: allocate an order with its lines, insert it into
/// the district's orderTable, and point the customer's `lastOrder` at it.
#[allow(clippy::too_many_arguments)]
fn new_order(
    vm: &mut Vm,
    m: MutatorId,
    cls: &JbbClasses,
    cfg: &PseudoJbb,
    world: &mut World,
    district: usize,
    customer: usize,
    assertions: bool,
) -> Result<(), VmError> {
    vm.push_frame(m)?;
    let order = vm.alloc_rooted(m, cls.order, 2, 4)?;
    let id = world.next_order_id;
    world.next_order_id += 1;
    vm.set_data_word(order, 0, id)?;

    let lines = vm.alloc(m, cls.array, cfg.orderlines, 0)?;
    vm.set_field(order, 1, lines)?;
    for l in 0..cfg.orderlines {
        let line = vm.alloc(m, cls.orderline, 0, 3)?;
        vm.set_field(lines, l, line)?;
    }

    let cust = world.customers[customer];
    vm.set_field(order, 0, cust)?;
    vm.set_field(cust, 0, order)?; // Customer.lastOrder — the leak source

    world.districts[district].insert(vm, m, id, order)?;
    world.pending[district].push_back(id);

    if assertions && cfg.style == JbbAssertions::Ownership {
        // "we instrumented District.addOrder() and asserted that each
        // Order added is owned by its orderTable."
        vm.assert_owned_by(world.districts[district].handle(), order)?;
    }

    // Order processing: price the lines and update the customer totals
    // (the benchmark's business logic — heap reads plus arithmetic).
    let mut acc: u64 = id;
    for k in 0..cfg.compute {
        let line = vm.field(lines, k % cfg.orderlines)?;
        let v = vm.data_word(line, k % 3)?;
        acc = std::hint::black_box(
            acc.wrapping_mul(6364136223846793005)
                .wrapping_add(v ^ k as u64),
        );
    }
    vm.set_data_word(order, 1, acc)?;
    vm.set_data_word(cust, 1, acc)?;

    vm.pop_frame(m)?;
    Ok(())
}

/// DeliveryTransaction: process the oldest pending orders of a district.
/// SPEC JBB2000's bug is that processed orders are *not* removed from the
/// orderTable; the destructor bug is that `Customer.lastOrder` is not
/// cleared.
fn delivery(
    vm: &mut Vm,
    _m: MutatorId,
    cfg: &PseudoJbb,
    world: &mut World,
    district: usize,
    assertions: bool,
) -> Result<(), VmError> {
    for _ in 0..cfg.delivery_batch {
        let Some(id) = world.pending[district].pop_front() else {
            break;
        };
        let table = &world.districts[district];
        let Some(order) = table.get(vm, id)? else {
            continue;
        };

        // "Process" the order, then destroy it (factory pattern).
        if cfg.bugs.fix_order_table {
            table.remove(vm, id)?;
        }
        if cfg.bugs.fix_customer_back_ref {
            let cust = vm.field(order, 0)?;
            if cust.is_some() && vm.field(cust, 0)? == order {
                vm.set_field(cust, 0, ObjRef::NULL)?;
            }
        }
        if assertions && cfg.style == JbbAssertions::Dead {
            // "we placed an assert-dead assertion for the Order object at
            // the end of DeliveryTransaction.process()."
            vm.assert_dead(order)?;
        }
    }
    Ok(())
}

impl Workload for PseudoJbb {
    fn name(&self) -> &str {
        "pseudojbb"
    }

    fn heap_budget(&self) -> usize {
        self.budget
    }

    fn run(&self, vm: &mut Vm, assertions: bool) -> Result<(), VmError> {
        let cls = register_classes(vm);
        let m = vm.main();
        let mut rng = SmallRng::seed_from_u64(self.seed);

        // The main loop's `oldCompany` local (§3.2.1): a root slot that —
        // unfixed — holds the destroyed company until it is overwritten by
        // the *next* generation's destruction.
        let old_company_slot = {
            let placeholder = build_world(vm, m, &cls, self, false)?;
            // Root slot for oldCompany; starts null via a fresh slot.
            let slot = vm.add_root(m, placeholder.company)?;
            vm.set_root(m, slot, ObjRef::NULL)?;
            // Tear the placeholder down; the real generations follow.
            let _ = placeholder;
            slot
        };

        let ndistricts = self.warehouses * self.districts;
        for generation in 0..self.company_generations.max(1) {
            let mut world = build_world(vm, m, &cls, self, assertions && generation == 0)?;
            vm.push_frame(m)?;
            vm.add_root(m, world.company)?;

            let txns = self.transactions / self.company_generations.max(1);
            for t in 0..txns {
                let district = rng.gen_range(0..ndistricts);
                let customer = rng.gen_range(0..self.customers);
                new_order(
                    vm, m, &cls, self, &mut world, district, customer, assertions,
                )?;
                if t % self.delivery_batch == self.delivery_batch - 1 {
                    delivery(vm, m, self, &mut world, district, assertions)?;
                }
            }

            // End-of-generation collection while the hierarchy is still
            // live (the real benchmark GCs between measurement
            // iterations), so assertions issued late in the run are
            // checked against the live world.
            vm.collect()?;

            // Destroy the company (factory pattern): the driver drops its
            // frame root, but the `oldCompany` local still references it.
            if assertions && self.style == JbbAssertions::Dead {
                vm.assert_dead(world.company)?;
            }
            vm.pop_frame(m)?;
            vm.set_root(m, old_company_slot, world.company)?;
            if self.bugs.fix_old_company_drag {
                vm.set_root(m, old_company_slot, ObjRef::NULL)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_once, ExpConfig};
    use gc_assertions::ViolationKind;

    fn small(mut jbb: PseudoJbb) -> PseudoJbb {
        jbb.transactions = 300;
        jbb.budget = 60_000;
        jbb
    }

    #[test]
    fn fixed_version_is_clean_under_ownership_asserts() {
        let jbb = small(PseudoJbb {
            bugs: JbbBugs::all_fixed(),
            style: JbbAssertions::Ownership,
            ..PseudoJbb::default()
        });
        let m = run_once(&jbb, ExpConfig::WithAssertions).unwrap();
        assert_eq!(m.violations, 0, "fixed pseudojbb must not fire");
        assert!(m.collections > 0);
    }

    #[test]
    fn fixed_version_is_clean_under_dead_asserts() {
        let jbb = small(PseudoJbb {
            bugs: JbbBugs::all_fixed(),
            style: JbbAssertions::Dead,
            ..PseudoJbb::default()
        });
        let m = run_once(&jbb, ExpConfig::WithAssertions).unwrap();
        assert_eq!(m.violations, 0);
    }

    #[test]
    fn customer_leak_found_by_dead_asserts() {
        let jbb = small(PseudoJbb {
            bugs: JbbBugs {
                fix_customer_back_ref: false,
                fix_order_table: true,
                fix_old_company_drag: true,
            },
            style: JbbAssertions::Dead,
            ..PseudoJbb::default()
        });
        let m = run_once(&jbb, ExpConfig::WithAssertions).unwrap();
        assert!(m.violations > 0, "Customer.lastOrder keeps orders alive");
    }

    #[test]
    fn order_table_leak_found_by_dead_asserts_with_figure1_path() {
        let jbb = small(PseudoJbb {
            bugs: JbbBugs {
                fix_customer_back_ref: true,
                fix_order_table: false,
                fix_old_company_drag: true,
            },
            style: JbbAssertions::Dead,
            ..PseudoJbb::default()
        });
        // Run manually to inspect the violation log.
        let mut vm = gc_assertions::Vm::new(
            gc_assertions::VmConfig::builder()
                .heap_budget(jbb.budget)
                .build(),
        );
        jbb.run(&mut vm, true).unwrap();
        vm.collect().unwrap();
        let log = vm.take_violation_log();
        assert!(!log.is_empty());
        let v = log
            .iter()
            .find(|v| matches!(v.kind, ViolationKind::DeadReachable { .. }))
            .expect("a dead-reachable order");
        let text = v.render(vm.registry());
        // Figure 1's chain of types.
        for cls in [
            "Company",
            "Warehouse",
            "District",
            "longBTree",
            "longBTreeNode",
            "Order",
        ] {
            assert!(text.contains(cls), "missing {cls} in:\n{text}");
        }
    }

    #[test]
    fn both_leaks_found_by_ownership_asserts() {
        let jbb = small(PseudoJbb::buggy_with_ownership_asserts());
        let mut vm = gc_assertions::Vm::new(
            gc_assertions::VmConfig::builder()
                .heap_budget(jbb.budget)
                .build(),
        );
        jbb.run(&mut vm, true).unwrap();
        vm.collect().unwrap();
        let log = vm.take_violation_log();
        // With the orderTable leak present, orders stay in the table and
        // remain properly owned; the *customer* leak shows once orders are
        // delivered... but unremoved orders never leave the owner. So with
        // all bugs on, ownership asserts stay quiet — fix only the table
        // bug to expose the back-reference leak:
        let _ = log;
        let jbb2 = small(PseudoJbb {
            bugs: JbbBugs {
                fix_customer_back_ref: false,
                fix_order_table: true,
                fix_old_company_drag: true,
            },
            style: JbbAssertions::Ownership,
            ..PseudoJbb::default()
        });
        let mut vm2 = gc_assertions::Vm::new(
            gc_assertions::VmConfig::builder()
                .heap_budget(jbb2.budget)
                .build(),
        );
        jbb2.run(&mut vm2, true).unwrap();
        vm2.collect().unwrap();
        let log2 = vm2.take_violation_log();
        let not_owned = log2
            .iter()
            .filter(|v| matches!(v.kind, ViolationKind::NotOwned { .. }))
            .count();
        assert!(not_owned > 0, "lastOrder keeps delivered orders reachable");
        // The path identifies the Customer as the culprit.
        let v = log2
            .iter()
            .find(|v| matches!(v.kind, ViolationKind::NotOwned { .. }))
            .unwrap();
        assert!(v.path.passes_through(vm2.registry(), "Customer"));
    }

    #[test]
    fn company_drag_found_by_instance_limit_and_dead() {
        let jbb = PseudoJbb {
            bugs: JbbBugs {
                fix_customer_back_ref: true,
                fix_order_table: true,
                fix_old_company_drag: false,
            },
            style: JbbAssertions::Dead,
            transactions: 400,
            company_generations: 4,
            budget: 120_000,
            ..PseudoJbb::default()
        };
        let mut vm = gc_assertions::Vm::new(
            gc_assertions::VmConfig::builder()
                .heap_budget(jbb.budget)
                .build(),
        );
        jbb.run(&mut vm, true).unwrap();
        vm.collect().unwrap();
        let log = vm.take_violation_log();
        let dead_companies = log
            .iter()
            .filter(|v| match &v.kind {
                ViolationKind::DeadReachable { class_name, .. } => class_name == "Company",
                _ => false,
            })
            .count();
        assert!(dead_companies > 0, "oldCompany drags destroyed companies");
    }

    #[test]
    fn drag_fix_passes() {
        let jbb = PseudoJbb {
            bugs: JbbBugs::all_fixed(),
            style: JbbAssertions::Dead,
            transactions: 400,
            company_generations: 4,
            budget: 120_000,
            ..PseudoJbb::default()
        };
        let m = run_once(&jbb, ExpConfig::WithAssertions).unwrap();
        assert_eq!(m.violations, 0);
    }

    #[test]
    fn base_and_infrastructure_run_clean() {
        let jbb = small(PseudoJbb::for_figures());
        for cfg in [ExpConfig::Base, ExpConfig::Infrastructure] {
            let m = run_once(&jbb, cfg).unwrap();
            assert_eq!(m.violations, 0);
            assert!(m.allocations > 1000);
        }
    }
}
