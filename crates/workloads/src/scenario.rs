//! Stepwise session scenarios — the request-at-a-time face of a workload.
//!
//! The batch [`crate::runner::Workload`] interface runs a whole workload
//! against a fresh VM; the fleet soak harness instead needs to *drive*
//! a VM one request at a time, under arrival-rate control, while the
//! observability plane watches from outside. A [`Scenario`] is that
//! stepwise face: `setup` builds the steady-state heap (so the census
//! sees a plateau, not a startup ramp), then each `request` call serves
//! one simulated user request, registering the scenario's GC assertions
//! when they are enabled.
//!
//! Scenarios are deterministic (seeded RNG) and designed to be
//! *assertion-clean*: with assertions on and no injected fault, a
//! scenario must produce zero violations and zero census drift at steady
//! state — the fleet's false-positive measurement depends on it.

use gc_assertions::{Vm, VmError};

use crate::broker::MessageBroker;
use crate::session_cache::SessionCache;
use crate::social_graph::SocialGraph;

/// A workload that can be driven one request at a time.
///
/// Implementations must be deterministic for a fixed seed and must keep
/// their live set bounded at steady state (the census drift detector is
/// watching). `Send` so a fleet can run one scenario per shard thread.
pub trait Scenario: Send {
    /// Display name (matches [`ScenarioKind::label`]).
    fn name(&self) -> &'static str;

    /// Heap budget in words suited to one shard running this scenario.
    fn heap_budget(&self) -> usize;

    /// One-time heap construction on a fresh VM, through to steady state.
    ///
    /// # Errors
    ///
    /// VM errors (should not occur for a correct scenario).
    fn setup(&mut self, vm: &mut Vm, assertions: bool) -> Result<(), VmError>;

    /// Serves one request. `assertions` selects whether the scenario's
    /// own GC assertions ride along (the always-on-monitor configuration).
    ///
    /// # Errors
    ///
    /// VM errors (should not occur for a correct scenario).
    fn request(&mut self, vm: &mut Vm, assertions: bool) -> Result<(), VmError>;

    /// Scenario-specific counters for the fleet status plane
    /// (name, value) — hits/misses, messages produced, and so on.
    fn counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

/// The built-in session-style scenarios the soak harness can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// LRU session cache: lookups, misses, evictions asserted dead.
    SessionCache,
    /// Social-graph friend-of-friend traversal with region-bracketed
    /// per-request temporaries.
    SocialGraph,
    /// Message-broker topic queues: single-owner messages, unshared and
    /// ownership assertions, acked messages asserted dead.
    Broker,
}

impl ScenarioKind {
    /// All kinds, in reporting order.
    pub const ALL: [ScenarioKind; 3] = [
        ScenarioKind::SessionCache,
        ScenarioKind::SocialGraph,
        ScenarioKind::Broker,
    ];

    /// Stable CLI/exporter label.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioKind::SessionCache => "session-cache",
            ScenarioKind::SocialGraph => "social-graph",
            ScenarioKind::Broker => "broker",
        }
    }

    /// Parses a CLI label (as printed by [`ScenarioKind::label`]).
    pub fn parse(s: &str) -> Option<ScenarioKind> {
        ScenarioKind::ALL.into_iter().find(|k| k.label() == s)
    }

    /// Builds a fresh scenario instance with soak-sized parameters,
    /// seeded deterministically.
    pub fn build(self, seed: u64) -> Box<dyn Scenario> {
        match self {
            ScenarioKind::SessionCache => Box::new(SessionCache::new(seed)),
            ScenarioKind::SocialGraph => Box::new(SocialGraph::new(seed)),
            ScenarioKind::Broker => Box::new(MessageBroker::new(seed)),
        }
    }
}

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_assertions::VmConfig;

    #[test]
    fn labels_parse_back() {
        for kind in ScenarioKind::ALL {
            assert_eq!(ScenarioKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(ScenarioKind::parse("nope"), None);
    }

    /// Every scenario, driven stepwise with assertions on, stays
    /// violation-free and census-drift-free at steady state — the
    /// clean-shard guarantee the fleet's false-positive rate rests on.
    #[test]
    fn every_scenario_is_assertion_clean_and_drift_free() {
        for kind in ScenarioKind::ALL {
            let mut s = kind.build(7);
            let mut vm = Vm::new(
                VmConfig::builder()
                    .heap_budget(s.heap_budget())
                    .grow_on_oom(true)
                    .telemetry(true)
                    .census(true)
                    .build(),
            );
            s.setup(&mut vm, true).unwrap();
            for _ in 0..400 {
                s.request(&mut vm, true).unwrap();
            }
            vm.collect().unwrap();
            assert_eq!(
                vm.violation_log().len(),
                0,
                "{kind}: clean scenario must not violate"
            );
            assert!(
                vm.census().drifts().is_empty(),
                "{kind}: steady state must not drift: {:?}",
                vm.census().drifts()
            );
            assert!(vm.collections() > 0, "{kind}: soak pressure must collect");
        }
    }
}
