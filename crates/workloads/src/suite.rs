//! Synthetic analogues of the paper's benchmark suite (§3.1.1): DaCapo
//! 2006-10-MR2 and SPEC JVM98, plus pseudojbb from [`crate::pseudojbb`].
//!
//! We cannot run Java bytecode, so each benchmark is modelled by a
//! parameterized allocation/mutation kernel whose knobs — allocation
//! volume, object-size mix, survivor rate, structure depth, and container
//! churn — are set to echo the qualitative behaviour the literature
//! reports for that benchmark (e.g. `bloat` is allocation-heavy with deep
//! temporary structures, which is why it shows the worst GC-time overhead
//! in the paper's Figure 3; `compress` allocates few large buffers and
//! barely collects). The figures compare configurations *on the same
//! workload*, so relative overheads are meaningful even though the
//! kernels are synthetic. See DESIGN.md §2 for the substitution argument.

use gc_assertions::{ObjRef, Vm, VmError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::runner::Workload;
use crate::structures::{HArrayList, HBTree, HHashMap};

/// A parameterized allocation/mutation kernel; see the module docs.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    /// Benchmark name.
    pub name: &'static str,
    /// Heap budget in words (≈2× the kernel's minimum live size).
    pub heap_budget: usize,
    /// Outer iterations ("transactions").
    pub iterations: usize,
    /// Temporary objects allocated per iteration.
    pub allocs_per_iter: usize,
    /// Payload words of a small object.
    pub small_data: usize,
    /// Every Nth temporary is a large buffer (0 = never).
    pub large_every: usize,
    /// Payload words of a large buffer.
    pub large_data: usize,
    /// Every Nth temporary survives into the retained set (0 = none).
    pub survivor_every: usize,
    /// Retained-set capacity (FIFO eviction beyond it).
    pub retained_cap: usize,
    /// Depth of the temporary linked chain built each iteration (deep
    /// structures stress the path-tracking worklist).
    pub list_depth: usize,
    /// Hash-map put/remove operations per iteration (long-lived map).
    pub map_ops: usize,
    /// B-tree insert/remove operations per iteration (long-lived tree).
    pub tree_ops: usize,
    /// RNG seed (runs are deterministic).
    pub seed: u64,
}

impl Workload for SyntheticWorkload {
    fn name(&self) -> &str {
        self.name
    }

    fn heap_budget(&self) -> usize {
        self.heap_budget
    }

    fn run(&self, vm: &mut Vm, _assertions: bool) -> Result<(), VmError> {
        let m = vm.main();
        let temp_class = vm.register_class("Temp", &["next"]);
        let buffer_class = vm.register_class("Buffer", &[]);
        let survivor_class = vm.register_class("Survivor", &["link"]);

        // Long-lived structures, rooted for the whole run.
        let retained = HArrayList::new(vm, m, 16)?;
        vm.add_root(m, retained.handle())?;
        let map = HHashMap::new(vm, m, 16)?;
        vm.add_root(m, map.handle())?;
        let tree = HBTree::new(vm, m)?;
        vm.add_root(m, tree.handle())?;

        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut next_key: u64 = 0;
        let mut survivor_cursor: usize = 0;

        for _ in 0..self.iterations {
            vm.push_frame(m)?;

            // Temporary allocation burst: linked chains of `list_depth`,
            // interspersed with large buffers and survivors.
            let mut chain_head = ObjRef::NULL;
            let mut chain_len = 0usize;
            let mut chain_slot: Option<usize> = None;
            for i in 0..self.allocs_per_iter {
                if self.large_every != 0 && i % self.large_every == self.large_every - 1 {
                    vm.alloc(m, buffer_class, 0, self.large_data)?;
                    continue;
                }
                let obj = vm.alloc(m, temp_class, 1, self.small_data)?;
                match chain_slot {
                    // Extend the current chain; one root tracks its head
                    // (the rest of the chain hangs off it).
                    Some(slot) if chain_head.is_some() && chain_len < self.list_depth => {
                        vm.set_field(obj, 0, chain_head)?;
                        chain_head = obj;
                        chain_len += 1;
                        vm.set_root(m, slot, obj)?;
                    }
                    _ => {
                        chain_head = obj;
                        chain_len = 1;
                        chain_slot = Some(vm.add_root(m, obj)?);
                    }
                }

                if self.survivor_every != 0 && i % self.survivor_every == self.survivor_every - 1 {
                    let s = vm.alloc(m, survivor_class, 1, self.small_data)?;
                    // Bounded retained set with O(1) slot replacement
                    // (ring eviction), so long-lived churn does not
                    // dominate mutator time quadratically.
                    let len = retained.len(vm)?;
                    if len < self.retained_cap.max(1) {
                        retained.push(vm, m, s)?;
                    } else {
                        retained.set(vm, survivor_cursor % len, s)?;
                        survivor_cursor = survivor_cursor.wrapping_add(1);
                    }
                }
            }

            // Container churn on the long-lived map and tree.
            for _ in 0..self.map_ops {
                if rng.gen_bool(0.6) || map.is_empty(vm)? {
                    let v = vm.alloc(m, survivor_class, 1, 1)?;
                    map.put(vm, m, next_key, v)?;
                    next_key += 1;
                } else {
                    let k = rng.gen_range(0..next_key.max(1));
                    map.remove(vm, k)?;
                }
            }
            for _ in 0..self.tree_ops {
                if rng.gen_bool(0.6) || tree.is_empty(vm)? {
                    let v = vm.alloc(m, survivor_class, 1, 1)?;
                    tree.insert(vm, m, next_key, v)?;
                    next_key += 1;
                } else {
                    let k = rng.gen_range(0..next_key.max(1));
                    tree.remove(vm, k)?;
                }
            }

            vm.pop_frame(m)?; // temporaries die here
        }
        Ok(())
    }
}

/// Iteration multiplier applied to the base definitions so a measured run
/// lasts long enough (tens of milliseconds) for stable timing; tests and
/// smoke runs scale back down.
const ITER_SCALE: usize = 8;

fn scale_up(mut v: Vec<SyntheticWorkload>) -> Vec<SyntheticWorkload> {
    for w in &mut v {
        w.iterations *= ITER_SCALE;
    }
    v
}

/// The eleven DaCapo 2006 analogues.
pub fn dacapo() -> Vec<SyntheticWorkload> {
    scale_up(dacapo_base())
}

fn dacapo_base() -> Vec<SyntheticWorkload> {
    vec![
        // antlr: parser generator — bursts of small short-lived objects.
        SyntheticWorkload {
            name: "antlr",
            heap_budget: 60_000,
            iterations: 60,
            allocs_per_iter: 700,
            small_data: 3,
            large_every: 0,
            large_data: 0,
            survivor_every: 40,
            retained_cap: 300,
            list_depth: 24,
            map_ops: 6,
            tree_ops: 0,
            seed: 0xA17A,
        },
        // bloat: bytecode analysis — allocation-heavy with deep temporary
        // structures; the paper's worst case for GC-time overhead.
        SyntheticWorkload {
            name: "bloat",
            heap_budget: 90_000,
            iterations: 70,
            allocs_per_iter: 1_400,
            small_data: 2,
            large_every: 0,
            large_data: 0,
            survivor_every: 25,
            retained_cap: 900,
            list_depth: 220,
            map_ops: 4,
            tree_ops: 0,
            seed: 0xB10A7,
        },
        // chart: plotting — medium churn plus rendering buffers.
        SyntheticWorkload {
            name: "chart",
            heap_budget: 80_000,
            iterations: 50,
            allocs_per_iter: 600,
            small_data: 4,
            large_every: 60,
            large_data: 180,
            survivor_every: 50,
            retained_cap: 250,
            list_depth: 12,
            map_ops: 8,
            tree_ops: 0,
            seed: 0xC4A27,
        },
        // eclipse: IDE — the largest retained set (plugin metadata).
        SyntheticWorkload {
            name: "eclipse",
            heap_budget: 200_000,
            iterations: 60,
            allocs_per_iter: 700,
            small_data: 4,
            large_every: 90,
            large_data: 120,
            survivor_every: 8,
            retained_cap: 4_000,
            list_depth: 30,
            map_ops: 25,
            tree_ops: 10,
            seed: 0xEC11,
        },
        // fop: XSL-FO to PDF — deep formatting trees, short run.
        SyntheticWorkload {
            name: "fop",
            heap_budget: 50_000,
            iterations: 30,
            allocs_per_iter: 800,
            small_data: 3,
            large_every: 120,
            large_data: 90,
            survivor_every: 60,
            retained_cap: 200,
            list_depth: 100,
            map_ops: 4,
            tree_ops: 0,
            seed: 0xF09,
        },
        // hsqldb: in-memory database — high survivor rate into tables.
        SyntheticWorkload {
            name: "hsqldb",
            heap_budget: 160_000,
            iterations: 45,
            allocs_per_iter: 500,
            small_data: 5,
            large_every: 0,
            large_data: 0,
            survivor_every: 4,
            retained_cap: 3_000,
            list_depth: 8,
            map_ops: 30,
            tree_ops: 25,
            seed: 0x45DB,
        },
        // jython: Python on the JVM — extreme small-object churn.
        SyntheticWorkload {
            name: "jython",
            heap_budget: 70_000,
            iterations: 80,
            allocs_per_iter: 1_100,
            small_data: 2,
            large_every: 0,
            large_data: 0,
            survivor_every: 90,
            retained_cap: 250,
            list_depth: 16,
            map_ops: 10,
            tree_ops: 0,
            seed: 0x9170,
        },
        // luindex: text indexing — tree/map insert-heavy.
        SyntheticWorkload {
            name: "luindex",
            heap_budget: 110_000,
            iterations: 45,
            allocs_per_iter: 450,
            small_data: 4,
            large_every: 0,
            large_data: 0,
            survivor_every: 12,
            retained_cap: 1_800,
            list_depth: 10,
            map_ops: 20,
            tree_ops: 35,
            seed: 0x10DE,
        },
        // lusearch: text search — pure churn, almost nothing survives.
        SyntheticWorkload {
            name: "lusearch",
            heap_budget: 60_000,
            iterations: 85,
            allocs_per_iter: 900,
            small_data: 3,
            large_every: 0,
            large_data: 0,
            survivor_every: 0,
            retained_cap: 0,
            list_depth: 10,
            map_ops: 6,
            tree_ops: 0,
            seed: 0x105E,
        },
        // pmd: source-code analysis — deep AST-like chains.
        SyntheticWorkload {
            name: "pmd",
            heap_budget: 80_000,
            iterations: 55,
            allocs_per_iter: 750,
            small_data: 3,
            large_every: 0,
            large_data: 0,
            survivor_every: 35,
            retained_cap: 700,
            list_depth: 130,
            map_ops: 8,
            tree_ops: 0,
            seed: 0x93D,
        },
        // xalan: XSLT — temporary result trees, high churn.
        SyntheticWorkload {
            name: "xalan",
            heap_budget: 90_000,
            iterations: 70,
            allocs_per_iter: 950,
            small_data: 3,
            large_every: 150,
            large_data: 60,
            survivor_every: 70,
            retained_cap: 300,
            list_depth: 45,
            map_ops: 10,
            tree_ops: 0,
            seed: 0xA1A7,
        },
    ]
}

/// The seven SPEC JVM98 analogues (run at the `-s100` scale of §3.1.1,
/// proportionally).
pub fn specjvm98() -> Vec<SyntheticWorkload> {
    scale_up(specjvm98_base())
}

fn specjvm98_base() -> Vec<SyntheticWorkload> {
    vec![
        // _201_compress: few large buffers, minimal GC activity.
        SyntheticWorkload {
            name: "compress",
            heap_budget: 120_000,
            iterations: 25,
            allocs_per_iter: 60,
            small_data: 4,
            large_every: 4,
            large_data: 700,
            survivor_every: 0,
            retained_cap: 0,
            list_depth: 4,
            map_ops: 0,
            tree_ops: 0,
            seed: 0x201,
        },
        // _202_jess: expert system — very many tiny short-lived facts.
        SyntheticWorkload {
            name: "jess",
            heap_budget: 50_000,
            iterations: 90,
            allocs_per_iter: 900,
            small_data: 1,
            large_every: 0,
            large_data: 0,
            survivor_every: 120,
            retained_cap: 200,
            list_depth: 12,
            map_ops: 6,
            tree_ops: 0,
            seed: 0x202,
        },
        // _209_db: in-memory database — large retained set with address
        // churn. (The assertion-instrumented version lives in crate::db.)
        SyntheticWorkload {
            name: "db",
            heap_budget: 150_000,
            iterations: 50,
            allocs_per_iter: 260,
            small_data: 6,
            large_every: 0,
            large_data: 0,
            survivor_every: 3,
            retained_cap: 3_500,
            list_depth: 6,
            map_ops: 25,
            tree_ops: 0,
            seed: 0x209,
        },
        // _213_javac: compiler — deep ASTs, moderate retention.
        SyntheticWorkload {
            name: "javac",
            heap_budget: 90_000,
            iterations: 55,
            allocs_per_iter: 800,
            small_data: 3,
            large_every: 0,
            large_data: 0,
            survivor_every: 25,
            retained_cap: 1_200,
            list_depth: 110,
            map_ops: 10,
            tree_ops: 5,
            seed: 0x213,
        },
        // _222_mpegaudio: decoder — compute-bound, tiny allocation rate.
        SyntheticWorkload {
            name: "mpegaudio",
            heap_budget: 60_000,
            iterations: 20,
            allocs_per_iter: 40,
            small_data: 8,
            large_every: 8,
            large_data: 260,
            survivor_every: 0,
            retained_cap: 0,
            list_depth: 3,
            map_ops: 0,
            tree_ops: 0,
            seed: 0x222,
        },
        // _227_mtrt: multithreaded raytracer — small scene objects shared
        // across worker "threads".
        SyntheticWorkload {
            name: "mtrt",
            heap_budget: 70_000,
            iterations: 70,
            allocs_per_iter: 850,
            small_data: 2,
            large_every: 0,
            large_data: 0,
            survivor_every: 60,
            retained_cap: 500,
            list_depth: 20,
            map_ops: 4,
            tree_ops: 0,
            seed: 0x227,
        },
        // _228_jack: parser generator — repeated parse churn.
        SyntheticWorkload {
            name: "jack",
            heap_budget: 60_000,
            iterations: 75,
            allocs_per_iter: 700,
            small_data: 3,
            large_every: 0,
            large_data: 0,
            survivor_every: 80,
            retained_cap: 250,
            list_depth: 30,
            map_ops: 6,
            tree_ops: 0,
            seed: 0x228,
        },
    ]
}

/// The full figure-2/3 suite: DaCapo + SPECjvm98. (pseudojbb is appended
/// by the harness from [`crate::pseudojbb`], which also carries the
/// assertion sites.)
pub fn full_suite() -> Vec<SyntheticWorkload> {
    let mut all = dacapo();
    all.extend(specjvm98());
    all
}

/// Runs every workload once under `config` with telemetry enabled and
/// returns the concatenated JSON-lines export: one record per GC cycle,
/// each tagged with its benchmark name (`"bench"` field). This is the
/// per-benchmark emission used by `figures --telemetry` and the CI
/// artifact step.
///
/// # Errors
///
/// Propagates workload VM errors.
pub fn suite_telemetry_jsonl(
    workloads: &[SyntheticWorkload],
    config: crate::runner::ExpConfig,
) -> Result<String, VmError> {
    suite_telemetry_jsonl_collector(workloads, config, gc_assertions::CollectorKind::MarkSweep)
}

/// As [`suite_telemetry_jsonl`], but on the chosen collector backend —
/// the copying leg of the CI artifact step runs through here.
///
/// # Errors
///
/// Propagates workload VM errors.
pub fn suite_telemetry_jsonl_collector(
    workloads: &[SyntheticWorkload],
    config: crate::runner::ExpConfig,
    collector: gc_assertions::CollectorKind,
) -> Result<String, VmError> {
    let mut out = String::new();
    for w in workloads {
        let (_, telemetry) = crate::runner::run_once_telemetry_collector(w, config, collector)?;
        out.push_str(&telemetry.to_jsonl(Some(w.name)));
    }
    Ok(out)
}

/// As [`suite_telemetry_jsonl`], but with the heap census enabled so each
/// cycle record additionally carries per-class live tallies and top
/// allocation sites. This feeds `figures --census` and the CI census
/// artifact.
///
/// # Errors
///
/// Propagates workload VM errors.
pub fn suite_census_jsonl(
    workloads: &[SyntheticWorkload],
    config: crate::runner::ExpConfig,
) -> Result<String, VmError> {
    suite_census_jsonl_collector(workloads, config, gc_assertions::CollectorKind::MarkSweep)
}

/// As [`suite_census_jsonl`], but on the chosen collector backend.
///
/// # Errors
///
/// Propagates workload VM errors.
pub fn suite_census_jsonl_collector(
    workloads: &[SyntheticWorkload],
    config: crate::runner::ExpConfig,
    collector: gc_assertions::CollectorKind,
) -> Result<String, VmError> {
    let mut out = String::new();
    for w in workloads {
        let (_, telemetry, _) = crate::runner::run_once_census_collector(w, config, collector)?;
        out.push_str(&telemetry.to_jsonl(Some(w.name)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_once, ExpConfig};

    #[test]
    fn suite_has_the_papers_benchmarks() {
        let suite = full_suite();
        assert_eq!(suite.len(), 18);
        let names: Vec<&str> = suite.iter().map(|w| w.name).collect();
        for expected in [
            "antlr",
            "bloat",
            "chart",
            "eclipse",
            "fop",
            "hsqldb",
            "jython",
            "luindex",
            "lusearch",
            "pmd",
            "xalan",
            "compress",
            "jess",
            "db",
            "javac",
            "mpegaudio",
            "mtrt",
            "jack",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn every_workload_runs_and_collects() {
        // Scaled-down versions so the test stays fast: shrink iterations.
        for mut w in full_suite() {
            w.iterations = (w.iterations / 10).max(3);
            let m = run_once(&w, ExpConfig::Base).unwrap();
            assert!(
                m.collections > 0 || w.name == "mpegaudio" || w.name == "compress",
                "{} performed no GC",
                w.name
            );
            assert!(m.allocations > 0);
            let m2 = run_once(&w, ExpConfig::Infrastructure).unwrap();
            assert_eq!(m2.violations, 0, "{} has no assertions", w.name);
        }
    }

    #[test]
    fn suite_jsonl_is_tagged_and_parseable() {
        let mut w = dacapo().remove(0);
        w.iterations = 5;
        let jsonl = suite_telemetry_jsonl(&[w], ExpConfig::Infrastructure).unwrap();
        assert!(
            !jsonl.is_empty(),
            "at least one GC cycle should be recorded"
        );
        let parsed = gc_assertions::parse_jsonl(&jsonl).unwrap();
        assert!(!parsed.is_empty());
        assert!(parsed.iter().all(|r| r.bench.as_deref() == Some("antlr")));
    }

    #[test]
    fn suite_census_jsonl_records_carry_census_fields() {
        let mut w = dacapo().remove(0);
        // Enough iterations that a GC triggers mid-burst, while the
        // temporary chain is still rooted (so "Temp" shows up live).
        w.iterations = 20;
        let jsonl = suite_census_jsonl(&[w], ExpConfig::Infrastructure).unwrap();
        let parsed = gc_assertions::parse_jsonl(&jsonl).unwrap();
        assert!(!parsed.is_empty());
        let censuses: Vec<_> = parsed
            .iter()
            .filter_map(|r| r.record.census.as_ref())
            .collect();
        assert!(!censuses.is_empty(), "census fields present");
        assert!(censuses
            .iter()
            .any(|c| c.classes.iter().any(|e| e.name == "Temp")));
        assert!(censuses
            .iter()
            .all(|c| c.classes.iter().all(|e| e.objects > 0 && e.bytes > 0)));
    }

    #[test]
    fn workloads_are_deterministic_in_allocation_count() {
        let mut w = dacapo().remove(0);
        w.iterations = 5;
        let a = run_once(&w, ExpConfig::Base).unwrap();
        let b = run_once(&w, ExpConfig::Base).unwrap();
        assert_eq!(a.allocations, b.allocations);
        let c = run_once(&w, ExpConfig::Infrastructure).unwrap();
        assert_eq!(
            a.allocations, c.allocations,
            "config must not change behaviour"
        );
    }
}
