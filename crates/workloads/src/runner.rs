//! The measurement harness: runs workloads under the paper's three
//! configurations and reports total / GC / mutator time.

use std::fmt;
use std::time::{Duration, Instant};

use gc_assertions::{CollectorKind, Mode, Vm, VmConfig, VmError};

/// A workload that can be run against a fresh VM.
///
/// Workloads must be deterministic: the same parameters produce the same
/// allocation and pointer behaviour on every run, so timing differences
/// between configurations are attributable to the configurations alone.
pub trait Workload {
    /// Display name (benchmark name in the figures).
    fn name(&self) -> &str;

    /// Heap budget in words for this workload — the analogue of the
    /// paper's "heap size fixed at two times the minimum" methodology.
    fn heap_budget(&self) -> usize;

    /// Runs one iteration. `assertions` selects whether the workload adds
    /// its GC assertions (the WithAssertions configuration); workloads
    /// with no assertion sites ignore it.
    ///
    /// # Errors
    ///
    /// VM errors (should not occur for a correct workload).
    fn run(&self, vm: &mut Vm, assertions: bool) -> Result<(), VmError>;
}

/// The three measured configurations of §3.1.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpConfig {
    /// Unmodified collector, no assertion infrastructure.
    Base,
    /// Assertion infrastructure attached (flag checks + path-tracking
    /// worklist) but no assertions registered.
    Infrastructure,
    /// Infrastructure plus the workload's own assertions.
    WithAssertions,
}

impl ExpConfig {
    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ExpConfig::Base => "Base",
            ExpConfig::Infrastructure => "Infrastructure",
            ExpConfig::WithAssertions => "WithAssertions",
        }
    }
}

impl fmt::Display for ExpConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload name.
    pub workload: String,
    /// Configuration measured.
    pub config: ExpConfig,
    /// Wall-clock time of the whole run.
    pub total: Duration,
    /// Time inside the collector.
    pub gc: Duration,
    /// `total - gc` (the paper's "mutator time").
    pub mutator: Duration,
    /// Collections performed.
    pub collections: u64,
    /// Violations detected (WithAssertions runs on buggy workloads).
    pub violations: u64,
    /// Objects allocated.
    pub allocations: u64,
    /// Average ownees checked per collection (§3.1.2 reports this).
    pub ownees_checked_per_gc: f64,
}

/// Runs `workload` once under `config` with a fresh VM and returns the
/// measurement.
///
/// # Errors
///
/// Propagates workload VM errors.
pub fn run_once(workload: &dyn Workload, config: ExpConfig) -> Result<Measurement, VmError> {
    let mode = match config {
        ExpConfig::Base => Mode::Base,
        _ => Mode::Instrumented,
    };
    let vm_config = VmConfig::builder()
        .heap_budget(workload.heap_budget())
        .grow_on_oom(true)
        .mode(mode)
        .build();
    run_once_config(workload, config, vm_config)
}

/// As [`run_once`], but with full control of the [`VmConfig`] (used by the
/// ablation benchmarks, e.g. to disable path tracking). The `config`
/// argument is recorded in the measurement and selects whether the
/// workload registers its assertions; `vm_config` is used as given.
///
/// # Errors
///
/// Propagates workload VM errors.
pub fn run_once_config(
    workload: &dyn Workload,
    config: ExpConfig,
    vm_config: VmConfig,
) -> Result<Measurement, VmError> {
    run_once_vm(workload, config, vm_config).map(|(m, _)| m)
}

/// As [`run_once_config`], but additionally returns the finished [`Vm`] so
/// callers can inspect post-run state (telemetry snapshots, violation
/// logs, heap statistics).
///
/// # Errors
///
/// Propagates workload VM errors.
pub fn run_once_vm(
    workload: &dyn Workload,
    config: ExpConfig,
    vm_config: VmConfig,
) -> Result<(Measurement, Vm), VmError> {
    let mut vm = Vm::new(vm_config);
    let assertions = config == ExpConfig::WithAssertions;

    let start = Instant::now();
    workload.run(&mut vm, assertions)?;
    // Final collection so assertions issued near the end of the run are
    // checked at least once (uniform across configurations).
    vm.collect()?;
    let total = start.elapsed();

    let gc = vm.gc_stats().total_gc_time;
    let collections = vm.gc_stats().collections;
    let measurement = Measurement {
        workload: workload.name().to_owned(),
        config,
        total,
        gc,
        mutator: total.saturating_sub(gc),
        collections,
        violations: vm.violation_log().len() as u64,
        allocations: vm.heap_stats().allocations,
        ownees_checked_per_gc: if collections == 0 {
            0.0
        } else {
            vm.check_totals().ownees_checked as f64 / collections as f64
        },
    };
    Ok((measurement, vm))
}

/// Runs `workload` once under `config` with telemetry recording enabled
/// and returns the measurement plus the telemetry snapshot.
///
/// # Errors
///
/// Propagates workload VM errors.
pub fn run_once_telemetry(
    workload: &dyn Workload,
    config: ExpConfig,
) -> Result<(Measurement, gc_assertions::GcTelemetry), VmError> {
    run_once_telemetry_collector(workload, config, CollectorKind::MarkSweep)
}

/// As [`run_once_telemetry`], but on the chosen collector backend —
/// telemetry attributes phases to whichever engine ran the cycle.
///
/// # Errors
///
/// Propagates workload VM errors.
pub fn run_once_telemetry_collector(
    workload: &dyn Workload,
    config: ExpConfig,
    collector: CollectorKind,
) -> Result<(Measurement, gc_assertions::GcTelemetry), VmError> {
    let mode = match config {
        ExpConfig::Base => Mode::Base,
        _ => Mode::Instrumented,
    };
    let vm_config = VmConfig::builder()
        .heap_budget(workload.heap_budget())
        .grow_on_oom(true)
        .mode(mode)
        .telemetry(true)
        .collector(collector)
        .build();
    let (measurement, vm) = run_once_vm(workload, config, vm_config)?;
    Ok((measurement, vm.telemetry()))
}

/// Runs `workload` once under `config` with both telemetry and the heap
/// census enabled and returns the measurement, the telemetry snapshot
/// (whose cycle records carry census fields), and the census snapshot
/// (per-class/per-site live tallies, drift detection, heap diffing).
///
/// # Errors
///
/// Propagates workload VM errors.
pub fn run_once_census(
    workload: &dyn Workload,
    config: ExpConfig,
) -> Result<
    (
        Measurement,
        gc_assertions::GcTelemetry,
        gc_assertions::HeapCensus,
    ),
    VmError,
> {
    run_once_census_collector(workload, config, CollectorKind::MarkSweep)
}

/// As [`run_once_census`], but on the chosen collector backend — the
/// copying engine observes the census at evacuation time, so the tallies
/// must come out identical.
///
/// # Errors
///
/// Propagates workload VM errors.
pub fn run_once_census_collector(
    workload: &dyn Workload,
    config: ExpConfig,
    collector: CollectorKind,
) -> Result<
    (
        Measurement,
        gc_assertions::GcTelemetry,
        gc_assertions::HeapCensus,
    ),
    VmError,
> {
    let mode = match config {
        ExpConfig::Base => Mode::Base,
        _ => Mode::Instrumented,
    };
    let vm_config = VmConfig::builder()
        .heap_budget(workload.heap_budget())
        .grow_on_oom(true)
        .mode(mode)
        .telemetry(true)
        .census(true)
        .collector(collector)
        .build();
    let (measurement, vm) = run_once_vm(workload, config, vm_config)?;
    let telemetry = vm.telemetry();
    Ok((measurement, telemetry, vm.census()))
}

/// Runs `workload` `n` times under `config` and returns the run with the
/// median total time — the repetition discipline of §3.1.1, scaled down.
///
/// # Errors
///
/// Propagates workload VM errors.
pub fn run_median(
    workload: &dyn Workload,
    config: ExpConfig,
    n: usize,
) -> Result<Measurement, VmError> {
    let mut runs: Vec<Measurement> = (0..n.max(1))
        .map(|_| run_once(workload, config))
        .collect::<Result<_, _>>()?;
    runs.sort_by_key(|r| r.total);
    Ok(runs.swap_remove(runs.len() / 2))
}

/// Relative overhead of `new` vs `base` in percent (e.g. `3.1` = +3.1%).
pub fn overhead_percent(base: Duration, new: Duration) -> f64 {
    if base.is_zero() {
        return 0.0;
    }
    (new.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0
}

/// Geometric mean of normalized ratios (`new/base`), in percent overhead,
/// as the paper reports its cross-benchmark means.
pub fn geomean_overhead_percent(pairs: &[(Duration, Duration)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = pairs
        .iter()
        .map(|(base, new)| {
            let b = base.as_secs_f64().max(1e-9);
            (new.as_secs_f64().max(1e-9) / b).ln()
        })
        .sum();
    ((log_sum / pairs.len() as f64).exp() - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal allocation-churn workload for harness tests.
    struct Churn;

    impl Workload for Churn {
        fn name(&self) -> &str {
            "churn"
        }
        fn heap_budget(&self) -> usize {
            4_000
        }
        fn run(&self, vm: &mut Vm, _assertions: bool) -> Result<(), VmError> {
            let c = vm.register_class("X", &[]);
            let m = vm.main();
            for _ in 0..2_000 {
                vm.alloc(m, c, 0, 6)?;
            }
            Ok(())
        }
    }

    #[test]
    fn run_once_measures_gc_activity() {
        let m = run_once(&Churn, ExpConfig::Base).unwrap();
        assert_eq!(m.workload, "churn");
        assert!(m.collections > 0);
        assert_eq!(m.allocations, 2_000);
        assert!(m.total >= m.gc);
        assert_eq!(m.violations, 0);
    }

    #[test]
    fn all_three_configs_run() {
        for config in [
            ExpConfig::Base,
            ExpConfig::Infrastructure,
            ExpConfig::WithAssertions,
        ] {
            let m = run_once(&Churn, config).unwrap();
            assert_eq!(m.config, config);
            assert!(m.collections > 0, "{config} should collect");
        }
    }

    #[test]
    fn median_of_three() {
        let m = run_median(&Churn, ExpConfig::Base, 3).unwrap();
        assert_eq!(m.workload, "churn");
    }

    #[test]
    fn overhead_math() {
        let base = Duration::from_millis(100);
        let new = Duration::from_millis(103);
        let pct = overhead_percent(base, new);
        assert!((pct - 3.0).abs() < 0.01);
        let g = geomean_overhead_percent(&[(base, new), (base, new)]);
        assert!((g - 3.0).abs() < 0.01);
        assert_eq!(overhead_percent(Duration::ZERO, new), 0.0);
        assert_eq!(geomean_overhead_percent(&[]), 0.0);
    }

    #[test]
    fn labels() {
        assert_eq!(ExpConfig::Base.to_string(), "Base");
        assert_eq!(ExpConfig::Infrastructure.label(), "Infrastructure");
        assert_eq!(ExpConfig::WithAssertions.label(), "WithAssertions");
    }
}
