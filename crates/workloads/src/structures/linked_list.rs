//! A singly linked list of object references.

use gc_assertions::{ClassId, MutatorId, ObjRef, Vm, VmError};

/// A singly linked list living in the VM heap.
///
/// Heap shape: `LinkedList { head } -> ListNode { next, value } -> …`,
/// with the element count in the list header's data word.
///
/// # Example
///
/// ```
/// use gc_assertions::{Vm, VmConfig};
/// use gca_workloads::structures::HList;
///
/// # fn main() -> Result<(), gc_assertions::VmError> {
/// let mut vm = Vm::new(VmConfig::builder().build());
/// let m = vm.main();
/// let elem = vm.register_class("Elem", &[]);
/// let list = HList::new(&mut vm, m)?;
/// vm.add_root(m, list.handle())?;
///
/// let e = vm.alloc(m, elem, 0, 0)?;
/// list.push_front(&mut vm, m, e)?;
/// assert_eq!(list.len(&vm)?, 1);
/// assert_eq!(list.pop_front(&mut vm)?, Some(e));
/// assert_eq!(list.len(&vm)?, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct HList {
    handle: ObjRef,
    node_class: ClassId,
}

const HEAD: usize = 0;
const NODE_NEXT: usize = 0;
const NODE_VALUE: usize = 1;
const LEN_WORD: usize = 0;

impl HList {
    /// Allocates an empty list on behalf of `m`. Root the handle to keep
    /// the list alive.
    ///
    /// # Errors
    ///
    /// Allocation errors.
    pub fn new(vm: &mut Vm, m: MutatorId) -> Result<HList, VmError> {
        let list_class = vm.register_class("LinkedList", &["head"]);
        let node_class = vm.register_class("ListNode", &["next", "value"]);
        let handle = vm.alloc(m, list_class, 1, 1)?;
        Ok(HList { handle, node_class })
    }

    /// The in-heap container object.
    pub fn handle(&self) -> ObjRef {
        self.handle
    }

    /// Rebuilds a wrapper from a container handle previously obtained via
    /// [`HList::handle`] (e.g. stored in another structure).
    ///
    /// # Errors
    ///
    /// Reference-validity errors if `handle` is not a live `LinkedList`.
    pub fn from_handle(vm: &mut Vm, handle: ObjRef) -> Result<HList, VmError> {
        let list_class = vm.register_class("LinkedList", &["head"]);
        let node_class = vm.register_class("ListNode", &["next", "value"]);
        let actual = vm.class_of(handle)?;
        if actual != list_class {
            return Err(VmError::Heap(gc_assertions::HeapError::InvalidRef(handle)));
        }
        Ok(HList { handle, node_class })
    }

    /// Number of elements.
    ///
    /// # Errors
    ///
    /// Reference-validity errors if the list was collected.
    pub fn len(&self, vm: &Vm) -> Result<usize, VmError> {
        Ok(vm.data_word(self.handle, LEN_WORD)? as usize)
    }

    /// Returns `true` if the list has no elements.
    ///
    /// # Errors
    ///
    /// Reference-validity errors if the list was collected.
    pub fn is_empty(&self, vm: &Vm) -> Result<bool, VmError> {
        Ok(self.len(vm)? == 0)
    }

    /// Pushes `value` at the front.
    ///
    /// # Errors
    ///
    /// Allocation or reference-validity errors.
    pub fn push_front(&self, vm: &mut Vm, m: MutatorId, value: ObjRef) -> Result<(), VmError> {
        // Allocation may collect; `value` has no heap parent yet, so pin it.
        vm.push_frame(m)?;
        vm.add_root(m, value)?;
        let node = vm.alloc(m, self.node_class, 2, 0)?;
        vm.pop_frame(m)?;
        let old_head = vm.field(self.handle, HEAD)?;
        vm.set_field(node, NODE_NEXT, old_head)?;
        vm.set_field(node, NODE_VALUE, value)?;
        vm.set_field(self.handle, HEAD, node)?;
        let n = vm.data_word(self.handle, LEN_WORD)?;
        vm.set_data_word(self.handle, LEN_WORD, n + 1)?;
        Ok(())
    }

    /// Pops the front element, or `None` if empty.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn pop_front(&self, vm: &mut Vm) -> Result<Option<ObjRef>, VmError> {
        let head = vm.field(self.handle, HEAD)?;
        if head.is_null() {
            return Ok(None);
        }
        let value = vm.field(head, NODE_VALUE)?;
        let next = vm.field(head, NODE_NEXT)?;
        vm.set_field(self.handle, HEAD, next)?;
        let n = vm.data_word(self.handle, LEN_WORD)?;
        vm.set_data_word(self.handle, LEN_WORD, n - 1)?;
        Ok(Some(value))
    }

    /// Removes the first node holding `value`. Returns whether a node was
    /// removed.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn remove(&self, vm: &mut Vm, value: ObjRef) -> Result<bool, VmError> {
        let mut prev = ObjRef::NULL;
        let mut cur = vm.field(self.handle, HEAD)?;
        while cur.is_some() {
            if vm.field(cur, NODE_VALUE)? == value {
                let next = vm.field(cur, NODE_NEXT)?;
                if prev.is_null() {
                    vm.set_field(self.handle, HEAD, next)?;
                } else {
                    vm.set_field(prev, NODE_NEXT, next)?;
                }
                let n = vm.data_word(self.handle, LEN_WORD)?;
                vm.set_data_word(self.handle, LEN_WORD, n - 1)?;
                return Ok(true);
            }
            prev = cur;
            cur = vm.field(cur, NODE_NEXT)?;
        }
        Ok(false)
    }

    /// Collects the element references front-to-back.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn elements(&self, vm: &Vm) -> Result<Vec<ObjRef>, VmError> {
        let mut out = Vec::new();
        let mut cur = vm.field(self.handle, HEAD)?;
        while cur.is_some() {
            out.push(vm.field(cur, NODE_VALUE)?);
            cur = vm.field(cur, NODE_NEXT)?;
        }
        Ok(out)
    }

    /// Drops all elements.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn clear(&self, vm: &mut Vm) -> Result<(), VmError> {
        vm.set_field(self.handle, HEAD, ObjRef::NULL)?;
        vm.set_data_word(self.handle, LEN_WORD, 0)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_assertions::VmConfig;

    fn setup() -> (Vm, MutatorId, HList, ClassId) {
        let mut vm = Vm::new(VmConfig::builder().build());
        let m = vm.main();
        let elem = vm.register_class("Elem", &[]);
        let list = HList::new(&mut vm, m).unwrap();
        vm.add_root(m, list.handle()).unwrap();
        (vm, m, list, elem)
    }

    #[test]
    fn push_pop_fifo_at_front() {
        let (mut vm, m, list, elem) = setup();
        let a = vm.alloc_rooted(m, elem, 0, 0).unwrap();
        let b = vm.alloc_rooted(m, elem, 0, 0).unwrap();
        list.push_front(&mut vm, m, a).unwrap();
        list.push_front(&mut vm, m, b).unwrap();
        assert_eq!(list.len(&vm).unwrap(), 2);
        assert_eq!(list.elements(&vm).unwrap(), vec![b, a]);
        assert_eq!(list.pop_front(&mut vm).unwrap(), Some(b));
        assert_eq!(list.pop_front(&mut vm).unwrap(), Some(a));
        assert_eq!(list.pop_front(&mut vm).unwrap(), None);
        assert!(list.is_empty(&vm).unwrap());
    }

    #[test]
    fn elements_survive_gc_through_list() {
        let (mut vm, m, list, elem) = setup();
        // Elements are rooted only through the list.
        for _ in 0..10 {
            let e = vm.alloc(m, elem, 0, 2).unwrap();
            list.push_front(&mut vm, m, e).unwrap();
        }
        vm.collect().unwrap();
        assert_eq!(list.len(&vm).unwrap(), 10);
        for e in list.elements(&vm).unwrap() {
            assert!(vm.is_live(e));
        }
    }

    #[test]
    fn cleared_elements_die() {
        let (mut vm, m, list, elem) = setup();
        let e = vm.alloc(m, elem, 0, 0).unwrap();
        list.push_front(&mut vm, m, e).unwrap();
        list.clear(&mut vm).unwrap();
        vm.collect().unwrap();
        assert!(!vm.is_live(e));
        assert_eq!(list.len(&vm).unwrap(), 0);
    }

    #[test]
    fn remove_middle() {
        let (mut vm, m, list, elem) = setup();
        let xs: Vec<ObjRef> = (0..3)
            .map(|_| vm.alloc_rooted(m, elem, 0, 0).unwrap())
            .collect();
        for &x in &xs {
            list.push_front(&mut vm, m, x).unwrap();
        }
        assert!(list.remove(&mut vm, xs[1]).unwrap());
        assert!(!list.remove(&mut vm, xs[1]).unwrap());
        assert_eq!(list.elements(&vm).unwrap(), vec![xs[2], xs[0]]);
        assert_eq!(list.len(&vm).unwrap(), 2);
    }

    #[test]
    fn push_survives_gc_pressure() {
        // Tiny heap: pushes trigger collections mid-operation; the
        // internal pinning must keep the half-linked value alive.
        let mut vm = Vm::new(
            VmConfig::builder()
                .heap_budget(200)
                .grow_on_oom(true)
                .build(),
        );
        let m = vm.main();
        let elem = vm.register_class("Elem", &[]);
        let list = HList::new(&mut vm, m).unwrap();
        vm.add_root(m, list.handle()).unwrap();
        for i in 0..50 {
            let e = vm.alloc(m, elem, 0, 3).unwrap();
            vm.set_data_word(e, 0, i).unwrap();
            list.push_front(&mut vm, m, e).unwrap();
        }
        assert_eq!(list.len(&vm).unwrap(), 50);
        let elems = list.elements(&vm).unwrap();
        assert_eq!(vm.data_word(elems[0], 0).unwrap(), 49);
        assert_eq!(vm.data_word(elems[49], 0).unwrap(), 0);
    }
}
