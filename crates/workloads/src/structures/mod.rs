//! Data structures built out of VM heap objects.
//!
//! Each structure is a thin Rust wrapper around a *handle* to an in-heap
//! container object; all element storage and linkage lives in the heap, so
//! the collector (and the assertion engine) sees the same shapes a Java
//! program would produce. The wrapper itself is the analogue of a local
//! variable holding the container — callers must root the handle
//! ([`gc_assertions::Vm::add_root`]) if the structure is to survive a
//! collection.
//!
//! Internal operations that allocate more than one object at a time use a
//! temporary root frame so a collection triggered mid-operation cannot
//! reclaim a half-linked node.

mod array_list;
mod btree;
mod hash_map;
mod linked_list;

pub use array_list::HArrayList;
pub use btree::HBTree;
pub use hash_map::HHashMap;
pub use linked_list::HList;
