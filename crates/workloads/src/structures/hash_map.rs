//! A chained hash map from `u64` keys to object references.

use gc_assertions::{ClassId, MutatorId, ObjRef, Vm, VmError};

/// A chained hash table living in the VM heap.
///
/// Heap shape: `HashMap { buckets } -> Object[] -> HashEntry { next,
/// value } -> …`, with each entry's key in its data word and the size in
/// the map header's data word. This is the "cached in a hash table" shape
/// from the paper's ownership discussion.
///
/// # Example
///
/// ```
/// use gc_assertions::{Vm, VmConfig};
/// use gca_workloads::structures::HHashMap;
///
/// # fn main() -> Result<(), gc_assertions::VmError> {
/// let mut vm = Vm::new(VmConfig::builder().build());
/// let m = vm.main();
/// let elem = vm.register_class("Elem", &[]);
/// let map = HHashMap::new(&mut vm, m, 4)?;
/// vm.add_root(m, map.handle())?;
/// let e = vm.alloc(m, elem, 0, 0)?;
/// map.put(&mut vm, m, 42, e)?;
/// assert_eq!(map.get(&vm, 42)?, Some(e));
/// assert_eq!(map.remove(&mut vm, 42)?, Some(e));
/// assert_eq!(map.get(&vm, 42)?, None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct HHashMap {
    handle: ObjRef,
    entry_class: ClassId,
    array_class: ClassId,
}

const BUCKETS: usize = 0;
const SIZE_WORD: usize = 0;
const ENTRY_NEXT: usize = 0;
const ENTRY_VALUE: usize = 1;
const ENTRY_KEY_WORD: usize = 0;

fn bucket_of(key: u64, nbuckets: usize) -> usize {
    // Fibonacci hashing; deterministic and well-spread for dense keys.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % nbuckets
}

impl HHashMap {
    /// Allocates an empty map with `nbuckets` chains (minimum 1). Root the
    /// handle to keep it alive.
    ///
    /// # Errors
    ///
    /// Allocation errors.
    pub fn new(vm: &mut Vm, m: MutatorId, nbuckets: usize) -> Result<HHashMap, VmError> {
        let map_class = vm.register_class("HashMap", &["buckets"]);
        let entry_class = vm.register_class("HashEntry", &["next", "value"]);
        let array_class = vm.register_class("Object[]", &[]);
        vm.push_frame(m)?;
        let handle = vm.alloc_rooted(m, map_class, 1, 1)?;
        let buckets = vm.alloc(m, array_class, nbuckets.max(1), 0)?;
        vm.set_field(handle, BUCKETS, buckets)?;
        vm.pop_frame(m)?;
        Ok(HHashMap {
            handle,
            entry_class,
            array_class,
        })
    }

    /// The in-heap container object.
    pub fn handle(&self) -> ObjRef {
        self.handle
    }

    /// Number of entries.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn len(&self, vm: &Vm) -> Result<usize, VmError> {
        Ok(vm.data_word(self.handle, SIZE_WORD)? as usize)
    }

    /// Returns `true` if the map has no entries.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn is_empty(&self, vm: &Vm) -> Result<bool, VmError> {
        Ok(self.len(vm)? == 0)
    }

    fn nbuckets(&self, vm: &Vm) -> Result<usize, VmError> {
        let buckets = vm.field(self.handle, BUCKETS)?;
        Ok(vm.heap().get(buckets).map_err(VmError::Heap)?.ref_count())
    }

    /// Inserts or replaces the mapping for `key`, returning the previous
    /// value if any. Resizes (doubles the bucket array) past a load factor
    /// of 0.75, like `java.util.HashMap`.
    ///
    /// # Errors
    ///
    /// Allocation or reference-validity errors.
    pub fn put(
        &self,
        vm: &mut Vm,
        m: MutatorId,
        key: u64,
        value: ObjRef,
    ) -> Result<Option<ObjRef>, VmError> {
        // Replace in place if present.
        if let Some(entry) = self.find_entry(vm, key)? {
            let old = vm.set_field(entry, ENTRY_VALUE, value)?;
            return Ok(Some(old));
        }
        let len = self.len(vm)?;
        if (len + 1) * 4 > self.nbuckets(vm)? * 3 {
            self.resize(vm, m, value)?;
        }
        vm.push_frame(m)?;
        if value.is_some() {
            vm.add_root(m, value)?;
        }
        let entry = vm.alloc(m, self.entry_class, 2, 1)?;
        vm.pop_frame(m)?;
        vm.set_data_word(entry, ENTRY_KEY_WORD, key)?;
        vm.set_field(entry, ENTRY_VALUE, value)?;
        let buckets = vm.field(self.handle, BUCKETS)?;
        let b = bucket_of(key, self.nbuckets(vm)?);
        let head = vm.field(buckets, b)?;
        vm.set_field(entry, ENTRY_NEXT, head)?;
        vm.set_field(buckets, b, entry)?;
        vm.set_data_word(self.handle, SIZE_WORD, (len + 1) as u64)?;
        Ok(None)
    }

    fn resize(&self, vm: &mut Vm, m: MutatorId, pin: ObjRef) -> Result<(), VmError> {
        let old_n = self.nbuckets(vm)?;
        let new_n = old_n * 2;
        vm.push_frame(m)?;
        if pin.is_some() {
            vm.add_root(m, pin)?;
        }
        let new_buckets = vm.alloc(m, self.array_class, new_n, 0)?;
        let old_buckets = vm.field(self.handle, BUCKETS)?;
        for b in 0..old_n {
            let mut cur = vm.field(old_buckets, b)?;
            while cur.is_some() {
                let next = vm.field(cur, ENTRY_NEXT)?;
                let key = vm.data_word(cur, ENTRY_KEY_WORD)?;
                let nb = bucket_of(key, new_n);
                let head = vm.field(new_buckets, nb)?;
                vm.set_field(cur, ENTRY_NEXT, head)?;
                vm.set_field(new_buckets, nb, cur)?;
                cur = next;
            }
        }
        vm.set_field(self.handle, BUCKETS, new_buckets)?;
        vm.pop_frame(m)?;
        Ok(())
    }

    fn find_entry(&self, vm: &Vm, key: u64) -> Result<Option<ObjRef>, VmError> {
        let buckets = vm.field(self.handle, BUCKETS)?;
        let b = bucket_of(key, self.nbuckets(vm)?);
        let mut cur = vm.field(buckets, b)?;
        while cur.is_some() {
            if vm.data_word(cur, ENTRY_KEY_WORD)? == key {
                return Ok(Some(cur));
            }
            cur = vm.field(cur, ENTRY_NEXT)?;
        }
        Ok(None)
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn get(&self, vm: &Vm, key: u64) -> Result<Option<ObjRef>, VmError> {
        match self.find_entry(vm, key)? {
            Some(entry) => Ok(Some(vm.field(entry, ENTRY_VALUE)?)),
            None => Ok(None),
        }
    }

    /// Removes the mapping for `key`, returning the value if present.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn remove(&self, vm: &mut Vm, key: u64) -> Result<Option<ObjRef>, VmError> {
        let buckets = vm.field(self.handle, BUCKETS)?;
        let b = bucket_of(key, self.nbuckets(vm)?);
        let mut prev = ObjRef::NULL;
        let mut cur = vm.field(buckets, b)?;
        while cur.is_some() {
            let next = vm.field(cur, ENTRY_NEXT)?;
            if vm.data_word(cur, ENTRY_KEY_WORD)? == key {
                let value = vm.field(cur, ENTRY_VALUE)?;
                if prev.is_null() {
                    vm.set_field(buckets, b, next)?;
                } else {
                    vm.set_field(prev, ENTRY_NEXT, next)?;
                }
                let len = self.len(vm)?;
                vm.set_data_word(self.handle, SIZE_WORD, (len - 1) as u64)?;
                return Ok(Some(value));
            }
            prev = cur;
            cur = next;
        }
        Ok(None)
    }

    /// Collects all `(key, value)` pairs (bucket order).
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn entries(&self, vm: &Vm) -> Result<Vec<(u64, ObjRef)>, VmError> {
        let buckets = vm.field(self.handle, BUCKETS)?;
        let n = self.nbuckets(vm)?;
        let mut out = Vec::new();
        for b in 0..n {
            let mut cur = vm.field(buckets, b)?;
            while cur.is_some() {
                out.push((
                    vm.data_word(cur, ENTRY_KEY_WORD)?,
                    vm.field(cur, ENTRY_VALUE)?,
                ));
                cur = vm.field(cur, ENTRY_NEXT)?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_assertions::VmConfig;

    fn setup() -> (Vm, MutatorId, HHashMap, ClassId) {
        let mut vm = Vm::new(VmConfig::builder().build());
        let m = vm.main();
        let elem = vm.register_class("Elem", &[]);
        let map = HHashMap::new(&mut vm, m, 4).unwrap();
        vm.add_root(m, map.handle()).unwrap();
        (vm, m, map, elem)
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let (mut vm, m, map, elem) = setup();
        let a = vm.alloc_rooted(m, elem, 0, 0).unwrap();
        let b = vm.alloc_rooted(m, elem, 0, 0).unwrap();
        assert_eq!(map.put(&mut vm, m, 1, a).unwrap(), None);
        assert_eq!(map.put(&mut vm, m, 2, b).unwrap(), None);
        assert_eq!(map.len(&vm).unwrap(), 2);
        assert_eq!(map.get(&vm, 1).unwrap(), Some(a));
        assert_eq!(map.get(&vm, 3).unwrap(), None);
        // Replacement returns old.
        assert_eq!(map.put(&mut vm, m, 1, b).unwrap(), Some(a));
        assert_eq!(map.len(&vm).unwrap(), 2);
        assert_eq!(map.remove(&mut vm, 1).unwrap(), Some(b));
        assert_eq!(map.remove(&mut vm, 1).unwrap(), None);
        assert_eq!(map.len(&vm).unwrap(), 1);
    }

    #[test]
    fn many_keys_with_resize() {
        let (mut vm, m, map, elem) = setup();
        let mut vals = Vec::new();
        for k in 0..200u64 {
            let e = vm.alloc(m, elem, 0, 1).unwrap();
            vm.set_data_word(e, 0, k).unwrap();
            map.put(&mut vm, m, k, e).unwrap();
            vals.push((k, e));
        }
        assert_eq!(map.len(&vm).unwrap(), 200);
        assert!(map.nbuckets(&vm).unwrap() > 4, "resized");
        for (k, e) in vals {
            assert_eq!(map.get(&vm, k).unwrap(), Some(e));
            assert_eq!(vm.data_word(e, 0).unwrap(), k);
        }
        assert_eq!(map.entries(&vm).unwrap().len(), 200);
    }

    #[test]
    fn entries_survive_gc_through_map() {
        let (mut vm, m, map, elem) = setup();
        for k in 0..50u64 {
            let e = vm.alloc(m, elem, 0, 0).unwrap();
            map.put(&mut vm, m, k, e).unwrap();
        }
        vm.collect().unwrap();
        assert_eq!(map.len(&vm).unwrap(), 50);
        for (_, v) in map.entries(&vm).unwrap() {
            assert!(vm.is_live(v));
        }
    }

    #[test]
    fn removed_entries_become_garbage() {
        let (mut vm, m, map, elem) = setup();
        let e = vm.alloc(m, elem, 0, 0).unwrap();
        map.put(&mut vm, m, 7, e).unwrap();
        map.remove(&mut vm, 7).unwrap();
        vm.collect().unwrap();
        assert!(!vm.is_live(e));
    }

    #[test]
    fn put_under_gc_pressure() {
        let mut vm = Vm::new(
            VmConfig::builder()
                .heap_budget(400)
                .grow_on_oom(true)
                .build(),
        );
        let m = vm.main();
        let elem = vm.register_class("Elem", &[]);
        let map = HHashMap::new(&mut vm, m, 2).unwrap();
        vm.add_root(m, map.handle()).unwrap();
        for k in 0..80u64 {
            let e = vm.alloc(m, elem, 0, 2).unwrap();
            vm.set_data_word(e, 0, k).unwrap();
            map.put(&mut vm, m, k, e).unwrap();
        }
        assert_eq!(map.len(&vm).unwrap(), 80);
        for k in 0..80u64 {
            let v = map.get(&vm, k).unwrap().unwrap();
            assert_eq!(vm.data_word(v, 0).unwrap(), k);
        }
    }
}
