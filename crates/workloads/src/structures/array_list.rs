//! A growable array of object references (java.util.ArrayList analogue).

use gc_assertions::{ClassId, MutatorId, ObjRef, Vm, VmError};

/// A growable object array living in the VM heap.
///
/// Heap shape: `ArrayList { storage } -> Object[] -> elements…`, with the
/// logical length in the header's data word. Growth allocates a doubled
/// `Object[]` and copies the references, exactly like the Java class —
/// the old array becomes garbage for the next collection.
///
/// # Example
///
/// ```
/// use gc_assertions::{Vm, VmConfig};
/// use gca_workloads::structures::HArrayList;
///
/// # fn main() -> Result<(), gc_assertions::VmError> {
/// let mut vm = Vm::new(VmConfig::builder().build());
/// let m = vm.main();
/// let elem = vm.register_class("Elem", &[]);
/// let list = HArrayList::new(&mut vm, m, 2)?;
/// vm.add_root(m, list.handle())?;
/// for _ in 0..10 {
///     let e = vm.alloc(m, elem, 0, 0)?;
///     list.push(&mut vm, m, e)?;
/// }
/// assert_eq!(list.len(&vm)?, 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct HArrayList {
    handle: ObjRef,
    array_class: ClassId,
}

const STORAGE: usize = 0;
const LEN_WORD: usize = 0;

impl HArrayList {
    /// Allocates an empty array list with the given initial capacity
    /// (minimum 1). Root the handle to keep it alive.
    ///
    /// # Errors
    ///
    /// Allocation errors.
    pub fn new(vm: &mut Vm, m: MutatorId, capacity: usize) -> Result<HArrayList, VmError> {
        let list_class = vm.register_class("ArrayList", &["storage"]);
        let array_class = vm.register_class("Object[]", &[]);
        vm.push_frame(m)?;
        let handle = vm.alloc_rooted(m, list_class, 1, 1)?;
        let storage = vm.alloc(m, array_class, capacity.max(1), 0)?;
        vm.set_field(handle, STORAGE, storage)?;
        vm.pop_frame(m)?;
        Ok(HArrayList {
            handle,
            array_class,
        })
    }

    /// The in-heap container object.
    pub fn handle(&self) -> ObjRef {
        self.handle
    }

    /// Number of elements.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn len(&self, vm: &Vm) -> Result<usize, VmError> {
        Ok(vm.data_word(self.handle, LEN_WORD)? as usize)
    }

    /// Returns `true` if there are no elements.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn is_empty(&self, vm: &Vm) -> Result<bool, VmError> {
        Ok(self.len(vm)? == 0)
    }

    /// Current capacity of the backing array.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn capacity(&self, vm: &Vm) -> Result<usize, VmError> {
        let storage = vm.field(self.handle, STORAGE)?;
        Ok(vm.heap().get(storage).map_err(VmError::Heap)?.ref_count())
    }

    /// Appends `value`, growing the backing array if needed.
    ///
    /// # Errors
    ///
    /// Allocation or reference-validity errors.
    pub fn push(&self, vm: &mut Vm, m: MutatorId, value: ObjRef) -> Result<(), VmError> {
        let len = self.len(vm)?;
        let cap = self.capacity(vm)?;
        if len == cap {
            self.grow(vm, m, value, cap * 2)?;
        }
        let storage = vm.field(self.handle, STORAGE)?;
        vm.set_field(storage, len, value)?;
        vm.set_data_word(self.handle, LEN_WORD, (len + 1) as u64)?;
        Ok(())
    }

    fn grow(&self, vm: &mut Vm, m: MutatorId, pin: ObjRef, new_cap: usize) -> Result<(), VmError> {
        vm.push_frame(m)?;
        if pin.is_some() {
            vm.add_root(m, pin)?;
        }
        let new_storage = vm.alloc(m, self.array_class, new_cap, 0)?;
        let old_storage = vm.field(self.handle, STORAGE)?;
        let len = self.len(vm)?;
        for i in 0..len {
            let e = vm.field(old_storage, i)?;
            vm.set_field(new_storage, i, e)?;
        }
        vm.set_field(self.handle, STORAGE, new_storage)?;
        vm.pop_frame(m)?;
        Ok(())
    }

    /// Element at `index`.
    ///
    /// # Errors
    ///
    /// Bounds or reference-validity errors.
    pub fn get(&self, vm: &Vm, index: usize) -> Result<ObjRef, VmError> {
        self.check_bounds(vm, index)?;
        let storage = vm.field(self.handle, STORAGE)?;
        vm.field(storage, index)
    }

    /// Overwrites element `index`, returning the old value.
    ///
    /// # Errors
    ///
    /// Bounds or reference-validity errors.
    pub fn set(&self, vm: &mut Vm, index: usize, value: ObjRef) -> Result<ObjRef, VmError> {
        self.check_bounds(vm, index)?;
        let storage = vm.field(self.handle, STORAGE)?;
        vm.set_field(storage, index, value)
    }

    /// Removes element `index` by shifting the tail left; returns it.
    ///
    /// # Errors
    ///
    /// Bounds or reference-validity errors.
    pub fn remove(&self, vm: &mut Vm, index: usize) -> Result<ObjRef, VmError> {
        self.check_bounds(vm, index)?;
        let len = self.len(vm)?;
        let storage = vm.field(self.handle, STORAGE)?;
        let removed = vm.field(storage, index)?;
        for i in index..len - 1 {
            let next = vm.field(storage, i + 1)?;
            vm.set_field(storage, i, next)?;
        }
        vm.set_field(storage, len - 1, ObjRef::NULL)?;
        vm.set_data_word(self.handle, LEN_WORD, (len - 1) as u64)?;
        Ok(removed)
    }

    /// Removes the first occurrence of `value`; returns whether found.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn remove_value(&self, vm: &mut Vm, value: ObjRef) -> Result<bool, VmError> {
        let len = self.len(vm)?;
        let storage = vm.field(self.handle, STORAGE)?;
        for i in 0..len {
            if vm.field(storage, i)? == value {
                self.remove(vm, i)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Drops all elements (capacity retained).
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn clear(&self, vm: &mut Vm) -> Result<(), VmError> {
        let len = self.len(vm)?;
        let storage = vm.field(self.handle, STORAGE)?;
        for i in 0..len {
            vm.set_field(storage, i, ObjRef::NULL)?;
        }
        vm.set_data_word(self.handle, LEN_WORD, 0)?;
        Ok(())
    }

    /// Collects the elements in order.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn elements(&self, vm: &Vm) -> Result<Vec<ObjRef>, VmError> {
        let len = self.len(vm)?;
        let storage = vm.field(self.handle, STORAGE)?;
        (0..len).map(|i| vm.field(storage, i)).collect()
    }

    fn check_bounds(&self, vm: &Vm, index: usize) -> Result<(), VmError> {
        let len = self.len(vm)?;
        if index >= len {
            return Err(VmError::Heap(gc_assertions::HeapError::FieldOutOfBounds {
                object: self.handle,
                field: index,
                len,
            }));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_assertions::VmConfig;

    fn setup() -> (Vm, MutatorId, HArrayList, ClassId) {
        let mut vm = Vm::new(VmConfig::builder().build());
        let m = vm.main();
        let elem = vm.register_class("Elem", &[]);
        let list = HArrayList::new(&mut vm, m, 2).unwrap();
        vm.add_root(m, list.handle()).unwrap();
        (vm, m, list, elem)
    }

    #[test]
    fn push_get_set_remove() {
        let (mut vm, m, list, elem) = setup();
        let xs: Vec<ObjRef> = (0..5)
            .map(|_| vm.alloc_rooted(m, elem, 0, 0).unwrap())
            .collect();
        for &x in &xs {
            list.push(&mut vm, m, x).unwrap();
        }
        assert_eq!(list.len(&vm).unwrap(), 5);
        assert!(list.capacity(&vm).unwrap() >= 5);
        assert_eq!(list.get(&vm, 3).unwrap(), xs[3]);
        list.set(&mut vm, 0, xs[4]).unwrap();
        assert_eq!(list.get(&vm, 0).unwrap(), xs[4]);
        assert_eq!(list.remove(&mut vm, 1).unwrap(), xs[1]);
        assert_eq!(
            list.elements(&vm).unwrap(),
            vec![xs[4], xs[2], xs[3], xs[4]]
        );
    }

    #[test]
    fn bounds_checked() {
        let (mut vm, m, list, elem) = setup();
        let x = vm.alloc_rooted(m, elem, 0, 0).unwrap();
        list.push(&mut vm, m, x).unwrap();
        assert!(list.get(&vm, 1).is_err());
        assert!(list.set(&mut vm, 1, x).is_err());
        assert!(list.remove(&mut vm, 1).is_err());
    }

    #[test]
    fn growth_under_gc_pressure_preserves_elements() {
        let mut vm = Vm::new(
            VmConfig::builder()
                .heap_budget(300)
                .grow_on_oom(true)
                .build(),
        );
        let m = vm.main();
        let elem = vm.register_class("Elem", &[]);
        let list = HArrayList::new(&mut vm, m, 1).unwrap();
        vm.add_root(m, list.handle()).unwrap();
        for i in 0..60 {
            let e = vm.alloc(m, elem, 0, 1).unwrap();
            vm.set_data_word(e, 0, i).unwrap();
            list.push(&mut vm, m, e).unwrap();
        }
        assert_eq!(list.len(&vm).unwrap(), 60);
        for (i, e) in list.elements(&vm).unwrap().into_iter().enumerate() {
            assert!(vm.is_live(e));
            assert_eq!(vm.data_word(e, 0).unwrap(), i as u64);
        }
    }

    #[test]
    fn old_storage_becomes_garbage_after_growth() {
        let (mut vm, m, list, elem) = setup();
        let before = vm.heap().live_objects();
        for _ in 0..20 {
            let e = vm.alloc(m, elem, 0, 0).unwrap();
            list.push(&mut vm, m, e).unwrap();
        }
        vm.collect().unwrap();
        // live: initial objects + 20 elements + 1 storage array (old
        // arrays collected).
        assert_eq!(vm.heap().live_objects(), before + 20);
    }

    #[test]
    fn remove_value_and_clear() {
        let (mut vm, m, list, elem) = setup();
        let a = vm.alloc_rooted(m, elem, 0, 0).unwrap();
        let b = vm.alloc(m, elem, 0, 0).unwrap();
        list.push(&mut vm, m, a).unwrap();
        list.push(&mut vm, m, b).unwrap();
        assert!(list.remove_value(&mut vm, a).unwrap());
        assert!(!list.remove_value(&mut vm, a).unwrap());
        assert_eq!(list.len(&vm).unwrap(), 1);
        list.clear(&mut vm).unwrap();
        assert!(list.is_empty(&vm).unwrap());
        vm.collect().unwrap();
        assert!(!vm.is_live(b), "cleared element collected");
        assert!(vm.is_live(a), "still rooted");
    }
}
