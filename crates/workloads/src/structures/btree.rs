//! A B+tree keyed by `u64` — the analogue of SPECjbb2000's
//! `spec.jbb.infra.Collections.longBTree`, which backs the order table at
//! the heart of the paper's leak case study (§3.2.1).

use gc_assertions::{ClassId, MutatorId, ObjRef, Vm, VmError};

/// Maximum keys per node; nodes split preemptively on the way down.
const MAX_KEYS: usize = 7;

// Node data-word layout.
const IS_LEAF: usize = 0;
const N_WORD: usize = 1;
const KEY0: usize = 2;
// Node reference layout.
const ARRAY: usize = 0;
// Tree layout.
const ROOT: usize = 0;
const COUNT_WORD: usize = 0;

/// A B+tree of object references living in the VM heap.
///
/// Heap shape matches the paper's Figure 1 path:
/// `longBTree { root } -> longBTreeNode { array } -> Object[] ->
/// longBTreeNode -> Object[] -> value`. Interior nodes route through
/// separator keys; all values live in leaves. Deletion removes from the
/// leaf without rebalancing (underfull leaves are tolerated), which keeps
/// lookups correct and is sufficient for the workload's churn.
///
/// # Example
///
/// ```
/// use gc_assertions::{Vm, VmConfig};
/// use gca_workloads::structures::HBTree;
///
/// # fn main() -> Result<(), gc_assertions::VmError> {
/// let mut vm = Vm::new(VmConfig::builder().build());
/// let m = vm.main();
/// let order = vm.register_class("Order", &[]);
/// let tree = HBTree::new(&mut vm, m)?;
/// vm.add_root(m, tree.handle())?;
/// for k in 0..100 {
///     let o = vm.alloc(m, order, 0, 0)?;
///     tree.insert(&mut vm, m, k, o)?;
/// }
/// assert_eq!(tree.len(&vm)?, 100);
/// assert!(tree.get(&vm, 42)?.is_some());
/// assert!(tree.remove(&mut vm, 42)?.is_some());
/// assert_eq!(tree.get(&vm, 42)?, None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct HBTree {
    handle: ObjRef,
    node_class: ClassId,
    array_class: ClassId,
}

impl HBTree {
    /// Allocates an empty tree. Root the handle to keep it alive.
    ///
    /// # Errors
    ///
    /// Allocation errors.
    pub fn new(vm: &mut Vm, m: MutatorId) -> Result<HBTree, VmError> {
        let tree_class = vm.register_class("longBTree", &["root"]);
        let node_class = vm.register_class("longBTreeNode", &["array"]);
        let array_class = vm.register_class("Object[]", &[]);
        vm.push_frame(m)?;
        let handle = vm.alloc_rooted(m, tree_class, 1, 1)?;
        let tree = HBTree {
            handle,
            node_class,
            array_class,
        };
        let root = tree.new_node(vm, m, true)?;
        vm.set_field(handle, ROOT, root)?;
        vm.pop_frame(m)?;
        Ok(tree)
    }

    /// The in-heap container object.
    pub fn handle(&self) -> ObjRef {
        self.handle
    }

    /// Number of keys in the tree.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn len(&self, vm: &Vm) -> Result<usize, VmError> {
        Ok(vm.data_word(self.handle, COUNT_WORD)? as usize)
    }

    /// Returns `true` if the tree holds no keys.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn is_empty(&self, vm: &Vm) -> Result<bool, VmError> {
        Ok(self.len(vm)? == 0)
    }

    /// Allocates a node + its array, rooted in the caller's current frame.
    fn new_node(&self, vm: &mut Vm, m: MutatorId, leaf: bool) -> Result<ObjRef, VmError> {
        let arr = vm.alloc_rooted(m, self.array_class, MAX_KEYS + 1, 0)?;
        let node = vm.alloc_rooted(m, self.node_class, 1, 2 + MAX_KEYS)?;
        vm.set_field(node, ARRAY, arr)?;
        vm.set_data_word(node, IS_LEAF, u64::from(leaf))?;
        Ok(node)
    }

    fn is_leaf(&self, vm: &Vm, node: ObjRef) -> Result<bool, VmError> {
        Ok(vm.data_word(node, IS_LEAF)? != 0)
    }

    fn n(&self, vm: &Vm, node: ObjRef) -> Result<usize, VmError> {
        Ok(vm.data_word(node, N_WORD)? as usize)
    }

    fn set_n(&self, vm: &mut Vm, node: ObjRef, n: usize) -> Result<(), VmError> {
        vm.set_data_word(node, N_WORD, n as u64)
    }

    fn key(&self, vm: &Vm, node: ObjRef, i: usize) -> Result<u64, VmError> {
        vm.data_word(node, KEY0 + i)
    }

    fn set_key(&self, vm: &mut Vm, node: ObjRef, i: usize, k: u64) -> Result<(), VmError> {
        vm.set_data_word(node, KEY0 + i, k)
    }

    fn slot(&self, vm: &Vm, node: ObjRef, i: usize) -> Result<ObjRef, VmError> {
        let arr = vm.field(node, ARRAY)?;
        vm.field(arr, i)
    }

    fn set_slot(&self, vm: &mut Vm, node: ObjRef, i: usize, v: ObjRef) -> Result<(), VmError> {
        let arr = vm.field(node, ARRAY)?;
        vm.set_field(arr, i, v)?;
        Ok(())
    }

    /// Child index to descend into for `key`: the number of separators
    /// `<= key` (equal keys route right, because leaf splits copy the
    /// right sibling's first key up).
    fn route(&self, vm: &Vm, node: ObjRef, key: u64) -> Result<usize, VmError> {
        let n = self.n(vm, node)?;
        let mut i = 0;
        while i < n && key >= self.key(vm, node, i)? {
            i += 1;
        }
        Ok(i)
    }

    /// Splits full child `j` of `parent` (which must have room).
    fn split_child(
        &self,
        vm: &mut Vm,
        m: MutatorId,
        parent: ObjRef,
        j: usize,
    ) -> Result<(), VmError> {
        let child = self.slot(vm, parent, j)?;
        let leaf = self.is_leaf(vm, child)?;
        let right = self.new_node(vm, m, leaf)?;
        let (keep, sep) = if leaf {
            // Leaf: left keeps 3 keys, right takes keys 3..7 (values
            // aligned); the separator is copied up.
            let sep = self.key(vm, child, 3)?;
            for i in 3..MAX_KEYS {
                let k = self.key(vm, child, i)?;
                let v = self.slot(vm, child, i)?;
                self.set_key(vm, right, i - 3, k)?;
                self.set_slot(vm, right, i - 3, v)?;
                self.set_slot(vm, child, i, ObjRef::NULL)?;
            }
            self.set_n(vm, right, MAX_KEYS - 3)?;
            (3, sep)
        } else {
            // Interior: the middle key moves up; left keeps keys 0..3 and
            // children 0..=3, right takes keys 4..7 and children 4..=7.
            let sep = self.key(vm, child, 3)?;
            for i in 4..MAX_KEYS {
                let k = self.key(vm, child, i)?;
                self.set_key(vm, right, i - 4, k)?;
            }
            for i in 4..=MAX_KEYS {
                let c = self.slot(vm, child, i)?;
                self.set_slot(vm, right, i - 4, c)?;
                self.set_slot(vm, child, i, ObjRef::NULL)?;
            }
            self.set_n(vm, right, MAX_KEYS - 4)?;
            (3, sep)
        };
        self.set_n(vm, child, keep)?;

        // Shift the parent's keys/children right of j and insert.
        let pn = self.n(vm, parent)?;
        let mut i = pn;
        while i > j {
            let k = self.key(vm, parent, i - 1)?;
            self.set_key(vm, parent, i, k)?;
            let c = self.slot(vm, parent, i)?;
            self.set_slot(vm, parent, i + 1, c)?;
            i -= 1;
        }
        self.set_key(vm, parent, j, sep)?;
        self.set_slot(vm, parent, j + 1, right)?;
        self.set_n(vm, parent, pn + 1)?;
        Ok(())
    }

    /// Inserts (or replaces) `key -> value`, returning the previous value
    /// for the key, if any.
    ///
    /// # Errors
    ///
    /// Allocation or reference-validity errors.
    pub fn insert(
        &self,
        vm: &mut Vm,
        m: MutatorId,
        key: u64,
        value: ObjRef,
    ) -> Result<Option<ObjRef>, VmError> {
        vm.push_frame(m)?;
        if value.is_some() {
            vm.add_root(m, value)?;
        }
        let result = self.insert_pinned(vm, m, key, value);
        vm.pop_frame(m)?;
        result
    }

    fn insert_pinned(
        &self,
        vm: &mut Vm,
        m: MutatorId,
        key: u64,
        value: ObjRef,
    ) -> Result<Option<ObjRef>, VmError> {
        let mut node = vm.field(self.handle, ROOT)?;
        if self.n(vm, node)? == MAX_KEYS {
            // Grow a new root above the full one.
            let new_root = self.new_node(vm, m, false)?;
            self.set_slot(vm, new_root, 0, node)?;
            vm.set_field(self.handle, ROOT, new_root)?;
            self.split_child(vm, m, new_root, 0)?;
            node = new_root;
        }
        loop {
            if self.is_leaf(vm, node)? {
                return self.insert_into_leaf(vm, node, key, value);
            }
            let j = self.route(vm, node, key)?;
            let child = self.slot(vm, node, j)?;
            if self.n(vm, child)? == MAX_KEYS {
                self.split_child(vm, m, node, j)?;
                let j = if key >= self.key(vm, node, j)? {
                    j + 1
                } else {
                    j
                };
                node = self.slot(vm, node, j)?;
            } else {
                node = child;
            }
        }
    }

    fn insert_into_leaf(
        &self,
        vm: &mut Vm,
        leaf: ObjRef,
        key: u64,
        value: ObjRef,
    ) -> Result<Option<ObjRef>, VmError> {
        let n = self.n(vm, leaf)?;
        let mut pos = 0;
        while pos < n && self.key(vm, leaf, pos)? < key {
            pos += 1;
        }
        if pos < n && self.key(vm, leaf, pos)? == key {
            let old = self.slot(vm, leaf, pos)?;
            self.set_slot(vm, leaf, pos, value)?;
            return Ok(Some(old));
        }
        let mut i = n;
        while i > pos {
            let k = self.key(vm, leaf, i - 1)?;
            self.set_key(vm, leaf, i, k)?;
            let v = self.slot(vm, leaf, i - 1)?;
            self.set_slot(vm, leaf, i, v)?;
            i -= 1;
        }
        self.set_key(vm, leaf, pos, key)?;
        self.set_slot(vm, leaf, pos, value)?;
        self.set_n(vm, leaf, n + 1)?;
        let count = vm.data_word(self.handle, COUNT_WORD)?;
        vm.set_data_word(self.handle, COUNT_WORD, count + 1)?;
        Ok(None)
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn get(&self, vm: &Vm, key: u64) -> Result<Option<ObjRef>, VmError> {
        let mut node = vm.field(self.handle, ROOT)?;
        loop {
            if self.is_leaf(vm, node)? {
                let n = self.n(vm, node)?;
                for i in 0..n {
                    if self.key(vm, node, i)? == key {
                        return Ok(Some(self.slot(vm, node, i)?));
                    }
                }
                return Ok(None);
            }
            let j = self.route(vm, node, key)?;
            node = self.slot(vm, node, j)?;
        }
    }

    /// Removes `key`, returning its value if present. Leaves may become
    /// underfull (no rebalancing).
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn remove(&self, vm: &mut Vm, key: u64) -> Result<Option<ObjRef>, VmError> {
        let mut node = vm.field(self.handle, ROOT)?;
        loop {
            if self.is_leaf(vm, node)? {
                let n = self.n(vm, node)?;
                for i in 0..n {
                    if self.key(vm, node, i)? == key {
                        let value = self.slot(vm, node, i)?;
                        for j in i..n - 1 {
                            let k = self.key(vm, node, j + 1)?;
                            self.set_key(vm, node, j, k)?;
                            let v = self.slot(vm, node, j + 1)?;
                            self.set_slot(vm, node, j, v)?;
                        }
                        self.set_slot(vm, node, n - 1, ObjRef::NULL)?;
                        self.set_n(vm, node, n - 1)?;
                        let count = vm.data_word(self.handle, COUNT_WORD)?;
                        vm.set_data_word(self.handle, COUNT_WORD, count - 1)?;
                        return Ok(Some(value));
                    }
                }
                return Ok(None);
            }
            let j = self.route(vm, node, key)?;
            node = self.slot(vm, node, j)?;
        }
    }

    /// Collects all values in key order.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn values(&self, vm: &Vm) -> Result<Vec<ObjRef>, VmError> {
        let mut out = Vec::new();
        let root = vm.field(self.handle, ROOT)?;
        self.collect_values(vm, root, &mut out)?;
        Ok(out)
    }

    fn collect_values(&self, vm: &Vm, node: ObjRef, out: &mut Vec<ObjRef>) -> Result<(), VmError> {
        let n = self.n(vm, node)?;
        if self.is_leaf(vm, node)? {
            for i in 0..n {
                out.push(self.slot(vm, node, i)?);
            }
        } else {
            for i in 0..=n {
                let c = self.slot(vm, node, i)?;
                self.collect_values(vm, c, out)?;
            }
        }
        Ok(())
    }

    /// Tree height (levels from root to leaf), for tests.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn depth(&self, vm: &Vm) -> Result<usize, VmError> {
        let mut d = 1;
        let mut node = vm.field(self.handle, ROOT)?;
        while !self.is_leaf(vm, node)? {
            node = self.slot(vm, node, 0)?;
            d += 1;
        }
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_assertions::VmConfig;
    use rand::rngs::SmallRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn setup() -> (Vm, MutatorId, HBTree, ClassId) {
        let mut vm = Vm::new(VmConfig::builder().build());
        let m = vm.main();
        let order = vm.register_class("Order", &[]);
        let tree = HBTree::new(&mut vm, m).unwrap();
        vm.add_root(m, tree.handle()).unwrap();
        (vm, m, tree, order)
    }

    #[test]
    fn insert_get_sequential() {
        let (mut vm, m, tree, order) = setup();
        let mut vals = Vec::new();
        for k in 0..500u64 {
            let o = vm.alloc(m, order, 0, 1).unwrap();
            vm.set_data_word(o, 0, k).unwrap();
            assert_eq!(tree.insert(&mut vm, m, k, o).unwrap(), None);
            vals.push((k, o));
        }
        assert_eq!(tree.len(&vm).unwrap(), 500);
        assert!(tree.depth(&vm).unwrap() >= 3, "really split");
        for (k, o) in vals {
            assert_eq!(tree.get(&vm, k).unwrap(), Some(o));
        }
        assert_eq!(tree.get(&vm, 9999).unwrap(), None);
    }

    #[test]
    fn insert_get_random_order() {
        let (mut vm, m, tree, order) = setup();
        let mut keys: Vec<u64> = (0..300).map(|i| i * 7 + 3).collect();
        keys.shuffle(&mut SmallRng::seed_from_u64(42));
        for &k in &keys {
            let o = vm.alloc(m, order, 0, 1).unwrap();
            vm.set_data_word(o, 0, k).unwrap();
            tree.insert(&mut vm, m, k, o).unwrap();
        }
        for &k in &keys {
            let v = tree.get(&vm, k).unwrap().unwrap();
            assert_eq!(vm.data_word(v, 0).unwrap(), k);
        }
        // values() is in key order.
        let vals = tree.values(&vm).unwrap();
        let mut sorted = keys.clone();
        sorted.sort();
        let got: Vec<u64> = vals.iter().map(|&v| vm.data_word(v, 0).unwrap()).collect();
        assert_eq!(got, sorted);
    }

    #[test]
    fn duplicate_key_replaces() {
        let (mut vm, m, tree, order) = setup();
        let a = vm.alloc_rooted(m, order, 0, 0).unwrap();
        let b = vm.alloc_rooted(m, order, 0, 0).unwrap();
        assert_eq!(tree.insert(&mut vm, m, 5, a).unwrap(), None);
        assert_eq!(tree.insert(&mut vm, m, 5, b).unwrap(), Some(a));
        assert_eq!(tree.len(&vm).unwrap(), 1);
        assert_eq!(tree.get(&vm, 5).unwrap(), Some(b));
    }

    #[test]
    fn remove_returns_value_and_unlinks() {
        let (mut vm, m, tree, order) = setup();
        let mut pairs = Vec::new();
        for k in 0..200u64 {
            let o = vm.alloc(m, order, 0, 0).unwrap();
            tree.insert(&mut vm, m, k, o).unwrap();
            pairs.push((k, o));
        }
        // Remove the even keys.
        for &(k, o) in &pairs {
            if k % 2 == 0 {
                assert_eq!(tree.remove(&mut vm, k).unwrap(), Some(o));
            }
        }
        assert_eq!(tree.len(&vm).unwrap(), 100);
        for &(k, o) in &pairs {
            if k % 2 == 0 {
                assert_eq!(tree.get(&vm, k).unwrap(), None);
            } else {
                assert_eq!(tree.get(&vm, k).unwrap(), Some(o));
            }
        }
        assert_eq!(tree.remove(&mut vm, 0).unwrap(), None);
        // Removed values become garbage.
        vm.collect().unwrap();
        for &(k, o) in &pairs {
            assert_eq!(vm.is_live(o), k % 2 == 1);
        }
    }

    #[test]
    fn values_survive_gc_through_tree() {
        let (mut vm, m, tree, order) = setup();
        for k in 0..300u64 {
            let o = vm.alloc(m, order, 0, 2).unwrap();
            tree.insert(&mut vm, m, k, o).unwrap();
        }
        vm.collect().unwrap();
        assert_eq!(tree.len(&vm).unwrap(), 300);
        for v in tree.values(&vm).unwrap() {
            assert!(vm.is_live(v));
        }
    }

    #[test]
    fn insert_under_gc_pressure() {
        let mut vm = Vm::new(
            VmConfig::builder()
                .heap_budget(2000)
                .grow_on_oom(true)
                .build(),
        );
        let m = vm.main();
        let order = vm.register_class("Order", &[]);
        let tree = HBTree::new(&mut vm, m).unwrap();
        vm.add_root(m, tree.handle()).unwrap();
        for k in 0..400u64 {
            let o = vm.alloc(m, order, 0, 3).unwrap();
            vm.set_data_word(o, 0, k).unwrap();
            tree.insert(&mut vm, m, k, o).unwrap();
        }
        assert!(vm.gc_stats().collections > 0);
        for k in 0..400u64 {
            let v = tree.get(&vm, k).unwrap().unwrap();
            assert_eq!(vm.data_word(v, 0).unwrap(), k);
        }
    }

    #[test]
    fn figure1_path_shape() {
        // The tree produces the longBTree -> longBTreeNode -> Object[]
        // path shape from the paper's Figure 1.
        let (mut vm, m, tree, order) = setup();
        for k in 0..100u64 {
            let o = vm.alloc(m, order, 0, 0).unwrap();
            tree.insert(&mut vm, m, k, o).unwrap();
        }
        let victim = tree.get(&vm, 50).unwrap().unwrap();
        vm.assert_dead(victim).unwrap();
        let report = vm.collect().unwrap();
        assert_eq!(report.violations.len(), 1);
        let text = report.violations[0].render(vm.registry());
        assert!(text.contains("longBTree"), "{text}");
        assert!(text.contains("longBTreeNode"), "{text}");
        assert!(text.contains("Object[]"), "{text}");
        assert!(text.contains("Order"), "{text}");
    }
}
