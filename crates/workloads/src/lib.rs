//! # gca-workloads — workloads for the GC-assertions reproduction
//!
//! Everything that *drives* the VM lives here:
//!
//! * [`structures`] — data structures built out of heap objects (linked
//!   list, array list, open hash map, and the `longBTree` that SPECjbb
//!   uses for its order table), so workloads create realistic heap shapes;
//! * [`suite`] — synthetic analogues of the paper's benchmark suite
//!   (DaCapo 2006, SPECjvm98, pseudojbb), parameterized by allocation
//!   volume, object-size mix, lifetime mix and structure churn;
//! * [`runner`] — the measurement harness: runs a workload under a given
//!   VM configuration and reports total / GC / mutator time, reproducing
//!   the Base / Infrastructure / WithAssertions comparisons of §3.1;
//! * case studies from §3.2: [`pseudojbb`] (order-processing system with
//!   the Customer→Order leak, the `oldCompany` drag, and the orderTable
//!   BTree leak), [`db`] (`_209_db` with ownership assertions),
//!   [`lusearch_app`] (the 32-IndexSearcher finding), and [`swapleak`]
//!   (the hidden inner-class reference);
//! * [`scenario`] — session-style scenarios driven one request at a time
//!   by the fleet soak harness ([`session_cache`], [`social_graph`],
//!   [`broker`]), each doubling as a batch [`runner::Workload`].
//!
//! All workloads are deterministic (seeded [`rand::rngs::SmallRng`]), so
//! every experiment in the repository reproduces bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod broker;
pub mod db;
pub mod luindex_app;
pub mod lusearch_app;
pub mod pseudojbb;
pub mod runner;
pub mod scenario;
pub mod session_cache;
pub mod social_graph;
pub mod structures;
pub mod suite;
pub mod swapleak;
