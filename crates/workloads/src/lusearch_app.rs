//! lusearch — the DaCapo text-search benchmark over Apache Lucene
//! (§3.2.2).
//!
//! The Lucene documentation recommends opening **one** `IndexSearcher`
//! and sharing it across threads; the benchmark instead opens one per
//! thread. The paper instruments lusearch with
//! `assert_instances(IndexSearcher, 1)` and finds 32 live instances, one
//! per search thread. This module rebuilds that scenario: a shared
//! in-heap index, N simulated searcher threads, and per-query allocation
//! churn (queries, hit lists, score docs).

use gc_assertions::{MutatorId, Vm, VmError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::runner::Workload;
use crate::structures::HHashMap;

/// The lusearch workload.
#[derive(Debug, Clone)]
pub struct Lusearch {
    /// Search threads (the paper observes 32).
    pub threads: usize,
    /// Documents in the shared index.
    pub documents: usize,
    /// Queries issued per thread.
    pub queries_per_thread: usize,
    /// Share one `IndexSearcher` across threads (the documented fix)
    /// instead of one per thread (the benchmark's behaviour).
    pub share_searcher: bool,
    /// Heap budget in words.
    pub budget: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Lusearch {
    fn default() -> Self {
        Lusearch {
            threads: 32,
            documents: 300,
            queries_per_thread: 40,
            share_searcher: false,
            budget: 80_000,
            seed: 0x105EA,
        }
    }
}

impl Lusearch {
    /// The repaired variant: one shared searcher.
    pub fn fixed() -> Lusearch {
        Lusearch {
            share_searcher: true,
            ..Lusearch::default()
        }
    }
}

impl Workload for Lusearch {
    fn name(&self) -> &str {
        "lusearch_app"
    }

    fn heap_budget(&self) -> usize {
        self.budget
    }

    fn run(&self, vm: &mut Vm, assertions: bool) -> Result<(), VmError> {
        let main = vm.main();
        let index_class = vm.register_class("Index", &["terms"]);
        let doc_class = vm.register_class("Document", &[]);
        let searcher_class = vm.register_class("IndexSearcher", &["index"]);
        let query_class = vm.register_class("Query", &[]);
        let hits_class = vm.register_class("Hits", &["docs"]);
        let array_class = vm.register_class("Object[]", &[]);

        if assertions {
            // "For performance reasons it is recommended to open only one
            // IndexSearcher and use it for all of your searches."
            vm.assert_instances(searcher_class, 1)?;
        }

        // Build the shared on-disk index analogue: term id -> document.
        let index = vm.alloc(main, index_class, 1, 2)?;
        vm.add_global(index)?;
        let terms = HHashMap::new(vm, main, 64)?;
        vm.set_field(index, 0, terms.handle())?;
        for d in 0..self.documents {
            vm.push_frame(main)?;
            let doc = vm.alloc_rooted(main, doc_class, 0, 8)?;
            vm.set_data_word(doc, 0, d as u64)?;
            terms.put(vm, main, d as u64, doc)?;
            vm.pop_frame(main)?;
        }

        // Spawn the search threads; each opens its own IndexSearcher
        // (unless the fix is applied) and keeps it for its whole life.
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut threads: Vec<(MutatorId, gc_assertions::ObjRef)> = Vec::new();
        let shared = if self.share_searcher {
            let s = vm.alloc(main, searcher_class, 1, 2)?;
            vm.set_field(s, 0, index)?;
            vm.add_global(s)?;
            Some(s)
        } else {
            None
        };
        for _ in 0..self.threads {
            let t = vm.spawn_mutator();
            let searcher = match shared {
                Some(s) => s,
                None => {
                    let s = vm.alloc(t, searcher_class, 1, 2)?;
                    vm.set_field(s, 0, index)?;
                    vm.add_root(t, s)?; // lives on the thread's stack
                    s
                }
            };
            threads.push((t, searcher));
        }

        // Interleave the threads' queries deterministically.
        for _round in 0..self.queries_per_thread {
            for &(t, _searcher) in &threads {
                vm.push_frame(t)?;
                let _query = vm.alloc_rooted(t, query_class, 0, 4)?;
                // Collect hits: an array of references into the index.
                let nhits = rng.gen_range(4..12);
                let hits = vm.alloc_rooted(t, hits_class, 1, 1)?;
                let docs = vm.alloc(t, array_class, nhits, 0)?;
                vm.set_field(hits, 0, docs)?;
                for h in 0..nhits {
                    let key = rng.gen_range(0..self.documents as u64);
                    if let Some(doc) = terms.get(vm, key)? {
                        vm.set_field(docs, h, doc)?;
                    }
                }
                vm.pop_frame(t)?; // query + hits die with the request
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_once, ExpConfig};
    use gc_assertions::ViolationKind;

    fn small(mut l: Lusearch) -> Lusearch {
        l.threads = 32;
        l.documents = 100;
        l.queries_per_thread = 8;
        l.budget = 30_000;
        l
    }

    #[test]
    fn per_thread_searchers_fire_instance_limit_with_count_32() {
        let l = small(Lusearch::default());
        let mut vm = gc_assertions::Vm::new(
            gc_assertions::VmConfig::builder()
                .heap_budget(l.budget)
                .build(),
        );
        l.run(&mut vm, true).unwrap();
        vm.collect().unwrap();
        let log = vm.take_violation_log();
        let counts: Vec<(u32, u32)> = log
            .iter()
            .filter_map(|v| match &v.kind {
                ViolationKind::InstanceLimit {
                    class_name,
                    limit,
                    count,
                } if class_name == "IndexSearcher" => Some((*limit, *count)),
                _ => None,
            })
            .collect();
        assert!(!counts.is_empty(), "instance-limit violation expected");
        assert!(counts.iter().all(|&(limit, _)| limit == 1));
        let max = counts.iter().map(|&(_, c)| c).max().unwrap();
        assert_eq!(max, 32, "one searcher per thread, as in the paper");
    }

    #[test]
    fn shared_searcher_fix_is_clean() {
        let l = small(Lusearch::fixed());
        let m = run_once(&l, ExpConfig::WithAssertions).unwrap();
        assert_eq!(m.violations, 0);
    }

    #[test]
    fn per_query_garbage_is_reclaimed() {
        let l = small(Lusearch::default());
        let m = run_once(&l, ExpConfig::Base).unwrap();
        assert!(m.collections > 0, "query churn must trigger GCs");
    }
}
