//! SwapLeak — the Sun Developer Network mystery leak (§3.2.3).
//!
//! A user's program defines `SObject` with a **non-static inner class**
//! `Rep`, and a `swap()` that exchanges the `rep` fields of two
//! `SObject`s. The user expected freshly allocated `SObject`s to be
//! reclaimed after their `Rep` was swapped away — but a non-static inner
//! class instance carries a hidden reference to the enclosing instance
//! that created it (`this$0`), so every swapped-in `Rep` pins the
//! "discarded" `SObject` that built it. The paper's `assert_dead` report
//! prints the explaining path:
//!
//! ```text
//! SArray -> SObject -> SObject$Rep -> SObject
//! ```

use gc_assertions::{ObjRef, Vm, VmError};

use crate::runner::Workload;

/// The SwapLeak workload.
#[derive(Debug, Clone)]
pub struct SwapLeak {
    /// Number of `SObject`s held in the array.
    pub array_size: usize,
    /// Swap rounds over the array.
    pub rounds: usize,
    /// Model `Rep` as a *static* inner class (no hidden outer reference)
    /// — the fix the forum thread converges on.
    pub static_inner: bool,
    /// Heap budget in words.
    pub budget: usize,
}

impl Default for SwapLeak {
    fn default() -> Self {
        SwapLeak {
            array_size: 50,
            rounds: 4,
            static_inner: false,
            budget: 60_000,
        }
    }
}

impl SwapLeak {
    /// The repaired variant (static inner class).
    pub fn fixed() -> SwapLeak {
        SwapLeak {
            static_inner: true,
            ..SwapLeak::default()
        }
    }
}

const SOBJ_REP: usize = 0;
const REP_OUTER: usize = 0;

impl Workload for SwapLeak {
    fn name(&self) -> &str {
        "swapleak"
    }

    fn heap_budget(&self) -> usize {
        self.budget
    }

    fn run(&self, vm: &mut Vm, assertions: bool) -> Result<(), VmError> {
        let m = vm.main();
        let array_class = vm.register_class("SArray", &[]);
        let sobj_class = vm.register_class("SObject", &["rep"]);
        let rep_class = vm.register_class("SObject$Rep", &["this$0"]);

        // Allocation-site labels for the heap census (no-ops when the
        // census is off, so instrumented and plain runs stay identical).
        let ctor_site = vm.alloc_site("SObject::new");

        // new SObject(): constructs its Rep; a non-static inner class
        // captures the enclosing instance.
        let new_sobject = |vm: &mut Vm, static_inner: bool| -> Result<ObjRef, VmError> {
            vm.push_frame(m)?;
            let prev = vm.set_alloc_site(ctor_site);
            let s = vm.alloc_rooted(m, sobj_class, 1, 2)?;
            let rep = vm.alloc(m, rep_class, 1, 4)?;
            vm.set_alloc_site(prev);
            vm.set_field(s, SOBJ_REP, rep)?;
            if !static_inner {
                vm.set_field(rep, REP_OUTER, s)?; // the hidden this$0
            }
            vm.pop_frame(m)?;
            Ok(s)
        };

        // Fill the array.
        let arr = vm.alloc(m, array_class, self.array_size, 0)?;
        vm.add_root(m, arr)?;
        for i in 0..self.array_size {
            let s = new_sobject(vm, self.static_inner)?;
            vm.set_field(arr, i, s)?;
        }

        // The main loop: allocate a fresh SObject, swap Reps with the
        // array occupant, and drop the fresh one — expecting it to die.
        for _ in 0..self.rounds {
            for i in 0..self.array_size {
                vm.push_frame(m)?;
                let fresh = new_sobject(vm, self.static_inner)?;
                vm.add_root(m, fresh)?;
                let in_array = vm.field(arr, i)?;
                // swap(fresh, in_array)
                let fresh_rep = vm.field(fresh, SOBJ_REP)?;
                let array_rep = vm.field(in_array, SOBJ_REP)?;
                vm.set_field(fresh, SOBJ_REP, array_rep)?;
                vm.set_field(in_array, SOBJ_REP, fresh_rep)?;
                if assertions {
                    // The user expected `fresh` to be collectable here.
                    vm.assert_dead(fresh)?;
                }
                vm.pop_frame(m)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_once, ExpConfig};
    use gc_assertions::ViolationKind;

    #[test]
    fn hidden_outer_reference_pins_swapped_objects() {
        let w = SwapLeak::default();
        let mut vm = gc_assertions::Vm::new(
            gc_assertions::VmConfig::builder()
                .heap_budget(w.budget)
                .build(),
        );
        w.run(&mut vm, true).unwrap();
        vm.collect().unwrap();
        let log = vm.take_violation_log();
        assert!(!log.is_empty(), "swapped SObjects stay reachable");
        let v = log
            .iter()
            .find(|v| matches!(v.kind, ViolationKind::DeadReachable { .. }))
            .unwrap();
        // The paper's explaining path: SArray -> SObject -> SObject$Rep
        // -> SObject.
        let text = v.render(vm.registry());
        assert!(text.contains("SArray"), "{text}");
        assert!(text.contains("SObject$Rep"), "{text}");
        let reg = vm.registry();
        assert!(v.path.passes_through(reg, "SArray"));
        assert!(v.path.passes_through(reg, "SObject$Rep"));
    }

    #[test]
    fn static_inner_class_fix_is_clean() {
        let m = run_once(&SwapLeak::fixed(), ExpConfig::WithAssertions).unwrap();
        assert_eq!(m.violations, 0, "no hidden reference, objects die");
    }

    #[test]
    fn leak_grows_heap_without_assertions_too() {
        // The leak is real (not an artifact of checking): live objects at
        // the end are ~2x the array size with the bug, ~1x with the fix.
        let buggy = run_once(&SwapLeak::default(), ExpConfig::Base).unwrap();
        let fixed = run_once(&SwapLeak::fixed(), ExpConfig::Base).unwrap();
        // Buggy keeps every swapped SObject alive: far more allocations
        // survive. Compare reclaimed counts indirectly via collections.
        assert!(buggy.allocations == fixed.allocations);
    }
}
