//! Session-cache scenario: an LRU cache of login sessions with
//! `assert-dead` guarding every eviction.
//!
//! The cache is a heap [`HHashMap`] from session key to a `Session`
//! object (holding a `SessionData` payload); recency is tracked on the
//! Rust side with a deque of keys, the way a real server keeps an
//! intrusive LRU list beside its table. Requests follow a hot/cold key
//! skew: hits touch the payload, misses allocate a fresh session and —
//! once the cache is full — evict the least-recently-used entry. The
//! paper's `assert-dead` idiom rides on eviction: an evicted session must
//! be garbage by the next collection, so any stray reference (the swap
//! bug of §2.2, a listener left registered, a debug table) surfaces as a
//! `DeadReachable` violation with the retaining path.
//!
//! `setup` pre-fills the cache to capacity so the census sees the steady
//! state from the first collection — the drift detector watches a
//! plateau, not a startup ramp.

use std::collections::VecDeque;

use gc_assertions::{ClassId, Vm, VmError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::runner::Workload;
use crate::scenario::Scenario;
use crate::structures::HHashMap;

const SESSION_DATA: usize = 0;

/// Tuning knobs for [`SessionCache`].
#[derive(Debug, Clone, Copy)]
pub struct SessionCacheParams {
    /// Maximum number of cached sessions (LRU evicts past this).
    pub capacity: usize,
    /// Number of distinct session keys requests draw from.
    pub keyspace: u64,
    /// Payload size of each session's `SessionData`, in data words.
    pub payload_words: usize,
    /// Probability of a request hitting the hot eighth of the keyspace.
    pub hot_ratio: f64,
    /// Requests per batch run (the [`Workload`] face).
    pub requests: usize,
}

impl Default for SessionCacheParams {
    fn default() -> SessionCacheParams {
        SessionCacheParams {
            capacity: 192,
            keyspace: 2048,
            payload_words: 8,
            hot_ratio: 0.8,
            requests: 600,
        }
    }
}

/// Heap handles created by `setup`.
#[derive(Debug, Clone, Copy)]
struct CacheHeap {
    map: HHashMap,
    session_class: ClassId,
    data_class: ClassId,
}

/// LRU session-cache scenario. See the module docs.
#[derive(Debug, Clone)]
pub struct SessionCache {
    params: SessionCacheParams,
    seed: u64,
    rng: SmallRng,
    heap: Option<CacheHeap>,
    /// Keys in recency order, least recently used at the front.
    lru: VecDeque<u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SessionCache {
    /// Creates the scenario with default parameters and the given seed.
    pub fn new(seed: u64) -> SessionCache {
        SessionCache::with_params(SessionCacheParams::default(), seed)
    }

    /// Creates the scenario with explicit parameters.
    pub fn with_params(params: SessionCacheParams, seed: u64) -> SessionCache {
        SessionCache {
            params,
            seed,
            rng: SmallRng::seed_from_u64(seed ^ 0x5e55_10c4),
            heap: None,
            lru: VecDeque::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions so far (each one carries an `assert-dead` when
    /// assertions are on).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn draw_key(&mut self) -> u64 {
        let hot_span = (self.params.keyspace / 8).max(1);
        if self.rng.gen_bool(self.params.hot_ratio) {
            self.rng.gen_range(0..hot_span)
        } else {
            self.rng
                .gen_range(hot_span..self.params.keyspace.max(hot_span + 1))
        }
    }

    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.lru.iter().position(|&k| k == key) {
            self.lru.remove(pos);
        }
        self.lru.push_back(key);
    }

    /// Allocates a fresh session for `key` and inserts it, evicting the
    /// LRU entry past capacity (asserting the evictee dead).
    fn fill(&mut self, vm: &mut Vm, key: u64, assertions: bool) -> Result<(), VmError> {
        let h = self.heap.expect("setup() before request()");
        let m = vm.main();
        let site = vm.alloc_site("SessionCache::miss");
        let prev_site = vm.set_alloc_site(site);
        vm.push_frame(m)?;
        let session = vm.alloc_rooted(m, h.session_class, 1, 2)?;
        vm.set_data_word(session, 0, key)?;
        let data = vm.alloc(m, h.data_class, 0, self.params.payload_words)?;
        vm.set_field(session, SESSION_DATA, data)?;
        for w in 0..self.params.payload_words {
            vm.set_data_word(data, w, key.wrapping_mul(w as u64 + 1))?;
        }
        // Insert while the session is still frame-rooted: put() may
        // allocate its entry (and so collect) mid-flight.
        h.map.put(vm, m, key, session)?;
        vm.pop_frame(m)?;
        vm.set_alloc_site(prev_site);
        self.touch(key);
        while self.lru.len() > self.params.capacity {
            let victim = self.lru.pop_front().expect("len checked");
            if let Some(evicted) = h.map.remove(vm, victim)? {
                self.evictions += 1;
                if assertions {
                    // The eviction contract: nothing else may retain it.
                    vm.assert_dead(evicted)?;
                }
            }
        }
        Ok(())
    }
}

impl Scenario for SessionCache {
    fn name(&self) -> &'static str {
        "session-cache"
    }

    fn heap_budget(&self) -> usize {
        16 * 1024
    }

    fn setup(&mut self, vm: &mut Vm, assertions: bool) -> Result<(), VmError> {
        let m = vm.main();
        let session_class = vm.register_class("Session", &["data"]);
        let data_class = vm.register_class("SessionData", &[]);
        let map = HHashMap::new(vm, m, self.params.capacity / 2 + 1)?;
        vm.add_root(m, map.handle())?;
        self.heap = Some(CacheHeap {
            map,
            session_class,
            data_class,
        });
        // Pre-fill to capacity: the census should see steady state, not
        // the startup ramp, from its very first window.
        for key in 0..self.params.capacity as u64 {
            self.fill(vm, key, assertions)?;
        }
        self.hits = 0;
        self.misses = 0;
        Ok(())
    }

    fn request(&mut self, vm: &mut Vm, assertions: bool) -> Result<(), VmError> {
        let h = self.heap.expect("setup() before request()");
        let key = self.draw_key();
        if let Some(session) = h.map.get(vm, key)? {
            self.hits += 1;
            // Read the payload, as a handler would.
            let data = vm.field(session, SESSION_DATA)?;
            let mut sum = 0u64;
            for w in 0..self.params.payload_words {
                sum = sum.wrapping_add(vm.data_word(data, w)?);
            }
            std::hint::black_box(sum);
            self.touch(key);
        } else {
            self.misses += 1;
            self.fill(vm, key, assertions)?;
        }
        Ok(())
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("hits", self.hits),
            ("misses", self.misses),
            ("evictions", self.evictions),
        ]
    }
}

impl Workload for SessionCache {
    fn name(&self) -> &str {
        "session-cache"
    }

    fn heap_budget(&self) -> usize {
        Scenario::heap_budget(self)
    }

    fn run(&self, vm: &mut Vm, assertions: bool) -> Result<(), VmError> {
        let mut fresh = SessionCache::with_params(self.params, self.seed);
        fresh.setup(vm, assertions)?;
        for _ in 0..self.params.requests {
            fresh.request(vm, assertions)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_once, ExpConfig};
    use gc_assertions::{ViolationKind, VmConfig};

    #[test]
    fn batch_run_is_clean_with_assertions() {
        let w = SessionCache::new(11);
        let m = run_once(&w, ExpConfig::WithAssertions).unwrap();
        assert_eq!(m.violations, 0);
        assert!(m.collections > 0, "must feel GC pressure");
    }

    #[test]
    fn skew_produces_both_hits_and_misses() {
        let mut s = SessionCache::new(3);
        let mut vm = Vm::new(
            VmConfig::builder()
                .heap_budget(Scenario::heap_budget(&s))
                .grow_on_oom(true)
                .build(),
        );
        s.setup(&mut vm, true).unwrap();
        for _ in 0..500 {
            s.request(&mut vm, true).unwrap();
        }
        assert!(s.hits() > 0, "hot keys should hit");
        assert!(s.misses() > 0, "cold keys should miss");
        assert!(s.evictions() > 0, "full cache should evict");
        assert!(s.lru.len() <= s.params.capacity);
    }

    #[test]
    fn stray_reference_to_evictee_is_caught() {
        // The monitoring story: a rogue global retains an evicted
        // session; assert-dead names it with the retaining path.
        let mut s = SessionCache::new(5);
        let mut vm = Vm::new(
            VmConfig::builder()
                .heap_budget(Scenario::heap_budget(&s))
                .grow_on_oom(true)
                .build(),
        );
        s.setup(&mut vm, true).unwrap();
        // Leak the current LRU victim the way a forgotten registry would.
        let h = s.heap.unwrap();
        let victim_key = *s.lru.front().unwrap();
        let victim = h.map.get(&vm, victim_key).unwrap().unwrap();
        vm.add_global(victim).unwrap();
        // Force misses until the victim is evicted.
        while s.evictions() == 0 {
            let key = s.params.keyspace + s.misses; // guaranteed-cold keys
            s.fill(&mut vm, key, true).unwrap();
        }
        vm.collect().unwrap();
        let log = vm.take_violation_log();
        assert!(
            log.iter()
                .any(|v| matches!(v.kind, ViolationKind::DeadReachable { object, .. } if object == victim)),
            "leaked evictee must be reported: {log:?}"
        );
    }
}
