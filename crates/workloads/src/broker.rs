//! Message-broker scenario: topic queues of single-owner messages with
//! `assert-unshared`, `assert-ownedby`, and `assert-dead` riding along.
//!
//! The broker keeps one heap [`HArrayList`] FIFO per topic. Producing
//! allocates a `Message` (with a `MsgBody` payload) and enqueues it;
//! consuming pops the head, reads it, and acknowledges. Three paper
//! idioms run as always-on monitors:
//!
//! * **`assert-unshared`** (§2.5.1) on every enqueued message — a broker
//!   message has exactly one owner (its queue slot), so a second
//!   incoming pointer (an at-least-twice-delivery bug, a rogue index)
//!   fires `Shared`.
//! * **`assert-ownedby(queue, message)`** (§2.5.2) on a sample of
//!   messages — while buffered, every path to a message must pass
//!   through its topic's queue.
//! * **`assert-dead`** (§2.2) on acknowledgement — an acked message must
//!   be garbage by the next collection.
//!
//! `setup` pre-fills each topic to half its bound and `request` keeps
//! the backlog oscillating between the low-water mark and the bound, so
//! the census sees a bounded steady state.

use gc_assertions::{ClassId, Vm, VmError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::runner::Workload;
use crate::scenario::Scenario;
use crate::structures::HArrayList;

const MSG_BODY: usize = 0;

/// Tuning knobs for [`MessageBroker`].
#[derive(Debug, Clone, Copy)]
pub struct BrokerParams {
    /// Number of topics (one FIFO queue each).
    pub topics: usize,
    /// Per-topic backlog bound: produce is forced below it, consume at it.
    pub depth_cap: usize,
    /// Low-water mark: consume is never chosen below this backlog.
    pub low_water: usize,
    /// Message body size in data words.
    pub body_words: usize,
    /// One in this many messages also carries `assert-ownedby`.
    pub own_every: u64,
    /// Requests per batch run (the [`Workload`] face).
    pub requests: usize,
}

impl Default for BrokerParams {
    fn default() -> BrokerParams {
        BrokerParams {
            topics: 4,
            depth_cap: 48,
            low_water: 12,
            body_words: 6,
            own_every: 8,
            requests: 600,
        }
    }
}

/// Heap handles created by `setup`.
#[derive(Debug, Clone)]
struct BrokerHeap {
    queues: Vec<HArrayList>,
    msg_class: ClassId,
    body_class: ClassId,
}

/// Message-broker scenario. See the module docs.
#[derive(Debug, Clone)]
pub struct MessageBroker {
    params: BrokerParams,
    seed: u64,
    rng: SmallRng,
    heap: Option<BrokerHeap>,
    seq: u64,
    produced: u64,
    consumed: u64,
}

impl MessageBroker {
    /// Creates the scenario with default parameters and the given seed.
    pub fn new(seed: u64) -> MessageBroker {
        MessageBroker::with_params(BrokerParams::default(), seed)
    }

    /// Creates the scenario with explicit parameters.
    pub fn with_params(params: BrokerParams, seed: u64) -> MessageBroker {
        MessageBroker {
            params,
            seed,
            rng: SmallRng::seed_from_u64(seed ^ 0xb80_4e8),
            heap: None,
            seq: 0,
            produced: 0,
            consumed: 0,
        }
    }

    /// Messages produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Messages consumed (and asserted dead) so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Allocates one message and enqueues it on `topic`, registering the
    /// single-owner assertions once the message's only reference is its
    /// queue slot.
    fn produce(&mut self, vm: &mut Vm, topic: usize, assertions: bool) -> Result<(), VmError> {
        let h = self.heap.clone().expect("setup() before request()");
        let queue = h.queues[topic];
        let m = vm.main();
        let site = vm.alloc_site("Broker::produce");
        let prev_site = vm.set_alloc_site(site);
        vm.push_frame(m)?;
        let msg = vm.alloc_rooted(m, h.msg_class, 1, 2)?;
        vm.set_data_word(msg, 0, self.seq)?;
        vm.set_data_word(msg, 1, topic as u64)?;
        let body = vm.alloc(m, h.body_class, 0, self.params.body_words)?;
        vm.set_field(msg, MSG_BODY, body)?;
        for w in 0..self.params.body_words {
            vm.set_data_word(body, w, self.seq.wrapping_mul(w as u64 + 3))?;
        }
        // Drop the frame root *before* enqueueing: the queue slot must be
        // the message's only reference when assert-unshared is placed, or
        // a collection would see frame root + slot as two owners.
        vm.pop_frame(m)?;
        queue.push(vm, m, msg)?;
        vm.set_alloc_site(prev_site);
        if assertions {
            vm.assert_unshared(msg)?;
            if self.params.own_every > 0 && self.seq.is_multiple_of(self.params.own_every) {
                vm.assert_owned_by(queue.handle(), msg)?;
            }
        }
        self.seq += 1;
        self.produced += 1;
        Ok(())
    }

    /// Pops and acknowledges the head of `topic`'s queue.
    fn consume(&mut self, vm: &mut Vm, topic: usize, assertions: bool) -> Result<(), VmError> {
        let h = self.heap.clone().expect("setup() before request()");
        let queue = h.queues[topic];
        if queue.is_empty(vm)? {
            return Ok(());
        }
        let msg = queue.remove(vm, 0)?;
        // Handle the message: read header and body (no allocation, so no
        // collection can run while we hold this bare reference).
        let body = vm.field(msg, MSG_BODY)?;
        let mut sum = vm.data_word(msg, 0)?;
        for w in 0..self.params.body_words {
            sum = sum.wrapping_add(vm.data_word(body, w)?);
        }
        std::hint::black_box(sum);
        if assertions {
            // Acked: nothing may retain it (a live ownedby pair retires
            // with the object, §2.5.2).
            vm.assert_dead(msg)?;
        }
        self.consumed += 1;
        Ok(())
    }

    fn depth(&self, vm: &Vm, topic: usize) -> Result<usize, VmError> {
        self.heap.as_ref().expect("setup() before request()").queues[topic].len(vm)
    }
}

impl Scenario for MessageBroker {
    fn name(&self) -> &'static str {
        "broker"
    }

    fn heap_budget(&self) -> usize {
        16 * 1024
    }

    fn setup(&mut self, vm: &mut Vm, assertions: bool) -> Result<(), VmError> {
        let m = vm.main();
        let msg_class = vm.register_class("Message", &["body"]);
        let body_class = vm.register_class("MsgBody", &[]);
        let mut queues = Vec::with_capacity(self.params.topics);
        for _ in 0..self.params.topics {
            // +2 slack so a full queue never grows its storage mid-run.
            let q = HArrayList::new(vm, m, self.params.depth_cap + 2)?;
            vm.add_root(m, q.handle())?;
            queues.push(q);
        }
        self.heap = Some(BrokerHeap {
            queues,
            msg_class,
            body_class,
        });
        // Pre-fill to half depth: the census watches a bounded backlog
        // from its first window, not a fill ramp.
        for topic in 0..self.params.topics {
            for _ in 0..self.params.depth_cap / 2 {
                self.produce(vm, topic, assertions)?;
            }
        }
        Ok(())
    }

    fn request(&mut self, vm: &mut Vm, assertions: bool) -> Result<(), VmError> {
        let topic = self.rng.gen_range(0..self.params.topics);
        let depth = self.depth(vm, topic)?;
        let produce = if depth >= self.params.depth_cap {
            false
        } else if depth <= self.params.low_water {
            true
        } else {
            self.rng.gen_bool(0.5)
        };
        if produce {
            self.produce(vm, topic, assertions)
        } else {
            self.consume(vm, topic, assertions)
        }
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("produced", self.produced), ("consumed", self.consumed)]
    }
}

impl Workload for MessageBroker {
    fn name(&self) -> &str {
        "broker"
    }

    fn heap_budget(&self) -> usize {
        Scenario::heap_budget(self)
    }

    fn run(&self, vm: &mut Vm, assertions: bool) -> Result<(), VmError> {
        let mut fresh = MessageBroker::with_params(self.params, self.seed);
        fresh.setup(vm, assertions)?;
        for _ in 0..self.params.requests {
            fresh.request(vm, assertions)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_once, ExpConfig};
    use gc_assertions::{ViolationKind, VmConfig};

    fn stepped(seed: u64, steps: usize) -> (MessageBroker, Vm) {
        let mut s = MessageBroker::new(seed);
        let mut vm = Vm::new(
            VmConfig::builder()
                .heap_budget(Scenario::heap_budget(&s))
                .grow_on_oom(true)
                .build(),
        );
        s.setup(&mut vm, true).unwrap();
        for _ in 0..steps {
            s.request(&mut vm, true).unwrap();
        }
        (s, vm)
    }

    #[test]
    fn batch_run_is_clean_with_assertions() {
        let w = MessageBroker::new(23);
        let m = run_once(&w, ExpConfig::WithAssertions).unwrap();
        assert_eq!(m.violations, 0);
        assert!(m.collections > 0, "must feel GC pressure");
    }

    #[test]
    fn backlog_stays_within_bounds() {
        let (s, vm) = stepped(29, 400);
        assert!(s.produced() > 0 && s.consumed() > 0);
        for topic in 0..s.params.topics {
            let d = s.depth(&vm, topic).unwrap();
            assert!(d <= s.params.depth_cap, "topic {topic} over cap: {d}");
        }
    }

    #[test]
    fn double_delivery_fires_unshared() {
        // The bug assert-unshared exists to catch: one message ends up
        // referenced from two queue slots.
        let (s, mut vm) = stepped(31, 50);
        let h = s.heap.clone().unwrap();
        let m = vm.main();
        let msg = h.queues[0].get(&vm, 0).unwrap();
        h.queues[1].push(&mut vm, m, msg).unwrap(); // delivered twice
        vm.collect().unwrap();
        let log = vm.take_violation_log();
        assert!(
            log.iter()
                .any(|v| matches!(v.kind, ViolationKind::Shared { object, .. } if object == msg)),
            "double-delivered message must be reported: {log:?}"
        );
    }

    #[test]
    fn acked_message_retained_fires_dead() {
        let (mut s, mut vm) = stepped(37, 10);
        let h = s.heap.clone().unwrap();
        // A rogue retry buffer keeps a reference past the ack.
        let msg = h.queues[0].get(&vm, 0).unwrap();
        vm.add_global(msg).unwrap();
        // Drain topic 0 so the retained message gets acked.
        while !h.queues[0].is_empty(&vm).unwrap() {
            s.consume(&mut vm, 0, true).unwrap();
        }
        vm.collect().unwrap();
        let log = vm.take_violation_log();
        assert!(
            log.iter().any(
                |v| matches!(v.kind, ViolationKind::DeadReachable { object, .. } if object == msg)
            ),
            "retained acked message must be reported: {log:?}"
        );
    }
}
