//! `_209_db` — the SPEC JVM98 in-memory database, instrumented with the
//! paper's assertions (§3.1.1): every `Entry` is asserted owned by its
//! containing `Database`, and removal sites (where the original code
//! assigns `null` to an instance variable, "a common Java idiom that
//! usually indicates that the object pointed to should be unreachable")
//! carry `assert_dead`.
//!
//! The paper's run makes 695 `assert-dead` and 15,553 `assert-ownedby`
//! calls and checks ≈15,274 ownees per collection; the default parameters
//! here are a deterministic ~10× scale-down with the same call-mix shape
//! (ownership asserted for every entry ever added; dead asserted at every
//! removal).

use gc_assertions::{MutatorId, ObjRef, Vm, VmError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::runner::Workload;
use crate::structures::HArrayList;

/// The `_209_db` workload.
#[derive(Debug, Clone)]
pub struct Db209 {
    /// Entries loaded before the operation mix starts.
    pub initial_entries: usize,
    /// Operations to run.
    pub operations: usize,
    /// Entry payload words (name + address fields).
    pub entry_data: usize,
    /// Plant a leak: removed entries are also stashed in a hidden cache,
    /// so `assert_dead`/`assert_owned_by` fire. Used by the detector
    /// comparison; the performance figures run with this off.
    pub leak: bool,
    /// Heap budget in words.
    pub budget: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Db209 {
    fn default() -> Self {
        Db209 {
            initial_entries: 2_500,
            operations: 20_000,
            entry_data: 6,
            leak: false,
            budget: 110_000,
            seed: 0x209DB,
        }
    }
}

impl Db209 {
    /// The leak-planted variant for the detector comparison.
    pub fn with_leak() -> Db209 {
        Db209 {
            leak: true,
            ..Db209::default()
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn add_entry(
        &self,
        vm: &mut Vm,
        m: MutatorId,
        db: ObjRef,
        entries: &HArrayList,
        entry_class: gc_assertions::ClassId,
        string_class: gc_assertions::ClassId,
        id: u64,
        assertions: bool,
    ) -> Result<(), VmError> {
        vm.push_frame(m)?;
        // An entry holds name/address string objects, like the Java
        // benchmark's records.
        let e = vm.alloc_rooted(m, entry_class, 2, self.entry_data)?;
        vm.set_data_word(e, 0, id)?;
        let name = vm.alloc(m, string_class, 0, 6)?;
        vm.set_field(e, 0, name)?;
        let addr = vm.alloc(m, string_class, 0, 6)?;
        vm.set_field(e, 1, addr)?;
        entries.push(vm, m, e)?;
        if assertions {
            vm.assert_owned_by(db, e)?;
        }
        vm.pop_frame(m)?;
        Ok(())
    }
}

impl Workload for Db209 {
    fn name(&self) -> &str {
        "209_db"
    }

    fn heap_budget(&self) -> usize {
        self.budget
    }

    fn run(&self, vm: &mut Vm, assertions: bool) -> Result<(), VmError> {
        let m = vm.main();
        let db_class = vm.register_class("Database", &["entries"]);
        let entry_class = vm.register_class("Entry", &[]);
        // Temporaries the Java benchmark churns through: enumerations for
        // scans, strings for field edits.
        let enum_class = vm.register_class("Enumeration", &[]);
        let string_class = vm.register_class("String", &[]);

        let db = vm.alloc(m, db_class, 1, 2)?;
        vm.add_root(m, db)?;
        let entries = HArrayList::new(vm, m, self.initial_entries.max(4))?;
        vm.set_field(db, 0, entries.handle())?;
        // The hidden cache used by the planted-leak variant — held by a
        // *static* (outside the Database), so leaked entries are no longer
        // reachable through their owner.
        let cache = HArrayList::new(vm, m, 8)?;
        vm.add_root(m, cache.handle())?;

        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut next_id: u64 = 0;

        // Load the database.
        for _ in 0..self.initial_entries {
            self.add_entry(
                vm,
                m,
                db,
                &entries,
                entry_class,
                string_class,
                next_id,
                assertions,
            )?;
            next_id += 1;
        }

        // Operation mix: ~45% find, ~25% modify, ~15% add, ~15% remove
        // (adds and removes balance, keeping the live size stable as in
        // the real benchmark).
        for _ in 0..self.operations {
            let len = entries.len(vm)?;
            match rng.gen_range(0..100) {
                0..=44 => {
                    // find: allocate an enumeration and scan for an id.
                    if len > 0 {
                        let e_tmp = vm.alloc(m, enum_class, 0, 8)?;
                        vm.set_data_word(e_tmp, 0, next_id)?;
                        let target = rng.gen_range(0..next_id);
                        for i in (0..len).step_by(7) {
                            let e = entries.get(vm, i)?;
                            if vm.data_word(e, 0)? == target {
                                break;
                            }
                        }
                    }
                }
                45..=69 => {
                    // modify: build a fresh string value for the field.
                    if len > 0 {
                        let s = vm.alloc(m, string_class, 0, 16)?;
                        vm.set_data_word(s, 0, rng.gen())?;
                        let i = rng.gen_range(0..len);
                        let e = entries.get(vm, i)?;
                        vm.set_data_word(e, 1, vm.data_word(s, 0)?)?;
                    }
                }
                70..=84 => {
                    self.add_entry(
                        vm,
                        m,
                        db,
                        &entries,
                        entry_class,
                        string_class,
                        next_id,
                        assertions,
                    )?;
                    next_id += 1;
                }
                _ => {
                    // remove: the site where the original code nulls the
                    // reference and the paper adds assert-dead.
                    if len > 0 {
                        let i = rng.gen_range(0..len);
                        let e = entries.remove(vm, i)?;
                        if self.leak {
                            cache.push(vm, m, e)?; // the planted bug
                        }
                        if assertions {
                            vm.assert_dead(e)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_once, ExpConfig};

    fn small() -> Db209 {
        Db209 {
            initial_entries: 600,
            operations: 600,
            budget: 18_000,
            ..Db209::default()
        }
    }

    #[test]
    fn clean_db_passes_all_assertions() {
        let m = run_once(&small(), ExpConfig::WithAssertions).unwrap();
        assert_eq!(m.violations, 0);
        assert!(m.collections > 0, "must exercise the ownership phase");
        assert!(m.ownees_checked_per_gc > 100.0, "ownees checked per GC");
    }

    #[test]
    fn leaky_db_fires() {
        let db = Db209 {
            leak: true,
            ..small()
        };
        let m = run_once(&db, ExpConfig::WithAssertions).unwrap();
        assert!(m.violations > 0, "cached removed entries must fire");
    }

    #[test]
    fn leak_invisible_without_assertions() {
        let db = Db209 {
            leak: true,
            ..small()
        };
        let m = run_once(&db, ExpConfig::Infrastructure).unwrap();
        assert_eq!(m.violations, 0, "no assertions, no reports");
    }

    #[test]
    fn assertion_call_mix_matches_paper_shape() {
        // Many more assert_owned_by than assert_dead, as in §3.1.2
        // (15,553 vs 695).
        let db = small();
        let mut vm = gc_assertions::Vm::new(
            gc_assertions::VmConfig::builder()
                .heap_budget(db.budget)
                .build(),
        );
        db.run(&mut vm, true).unwrap();
        let calls = vm.assertion_calls();
        assert!(calls.owned_by > 5 * calls.dead);
        assert!(calls.dead > 0);
    }
}
