//! Social-graph scenario: friend-of-friend traversals with
//! region-bracketed per-request temporaries.
//!
//! `setup` builds a fixed population of `User` objects (each with an
//! `EdgeArray` of friends and a `Profile` payload) held in a rooted
//! [`HArrayList`] — the long-lived graph. Each request runs a bounded
//! breadth-first friend-of-friend traversal from a random user,
//! allocating short-lived `ScoreCard` objects while it ranks candidates;
//! occasionally it rewires an edge (pure pointer surgery, no
//! allocation). The paper's region idiom (§2.3.2) brackets the
//! traversal: `start-region` … allocate … `assert-alldead`, so a
//! scorecard accidentally captured by anything long-lived becomes a
//! `DeadReachable` violation at the next collection.

use gc_assertions::{ClassId, Vm, VmError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::runner::Workload;
use crate::scenario::Scenario;
use crate::structures::HArrayList;

const USER_EDGES: usize = 0;
const USER_PROFILE: usize = 1;
const CARD_PROFILE: usize = 0;

/// Tuning knobs for [`SocialGraph`].
#[derive(Debug, Clone, Copy)]
pub struct SocialGraphParams {
    /// Number of users in the graph.
    pub users: usize,
    /// Friends per user (edge-array fan-out).
    pub friends: usize,
    /// Profile payload size in data words.
    pub profile_words: usize,
    /// Maximum users visited (and scorecards allocated) per traversal.
    pub visit_cap: usize,
    /// One in this many requests rewires an edge instead of traversing.
    pub rewire_every: usize,
    /// Requests per batch run (the [`Workload`] face).
    pub requests: usize,
}

impl Default for SocialGraphParams {
    fn default() -> SocialGraphParams {
        SocialGraphParams {
            users: 160,
            friends: 8,
            profile_words: 6,
            visit_cap: 24,
            rewire_every: 16,
            requests: 600,
        }
    }
}

/// Heap handles created by `setup`.
#[derive(Debug, Clone, Copy)]
struct GraphHeap {
    users: HArrayList,
    card_class: ClassId,
}

/// Friend-of-friend traversal scenario. See the module docs.
#[derive(Debug, Clone)]
pub struct SocialGraph {
    params: SocialGraphParams,
    seed: u64,
    rng: SmallRng,
    heap: Option<GraphHeap>,
    traversals: u64,
    rewires: u64,
    cards_scored: u64,
}

impl SocialGraph {
    /// Creates the scenario with default parameters and the given seed.
    pub fn new(seed: u64) -> SocialGraph {
        SocialGraph::with_params(SocialGraphParams::default(), seed)
    }

    /// Creates the scenario with explicit parameters.
    pub fn with_params(params: SocialGraphParams, seed: u64) -> SocialGraph {
        SocialGraph {
            params,
            seed,
            rng: SmallRng::seed_from_u64(seed ^ 0x50c1_a19a),
            heap: None,
            traversals: 0,
            rewires: 0,
            cards_scored: 0,
        }
    }

    /// Traversals served so far.
    pub fn traversals(&self) -> u64 {
        self.traversals
    }

    /// Edge rewires performed so far.
    pub fn rewires(&self) -> u64 {
        self.rewires
    }

    fn random_other(&mut self, me: usize) -> usize {
        loop {
            let other = self.rng.gen_range(0..self.params.users);
            if other != me || self.params.users == 1 {
                return other;
            }
        }
    }

    /// One friend-of-friend ranking pass, region-bracketed when
    /// assertions are on.
    fn traverse(&mut self, vm: &mut Vm, start: usize, assertions: bool) -> Result<(), VmError> {
        let h = self.heap.expect("setup() before request()");
        let m = vm.main();
        if assertions {
            vm.start_region(m)?;
        }
        vm.push_frame(m)?;
        let site = vm.alloc_site("SocialGraph::score");
        let prev_site = vm.set_alloc_site(site);
        let me = h.users.get(vm, start)?;
        let edges = vm.field(me, USER_EDGES)?;
        let mut best = 0u64;
        let mut visited = 0usize;
        'outer: for f in 0..self.params.friends {
            let friend = vm.field(edges, f)?;
            let friend_edges = vm.field(friend, USER_EDGES)?;
            for ff in 0..self.params.friends {
                if visited >= self.params.visit_cap {
                    break 'outer;
                }
                let candidate = vm.field(friend_edges, ff)?;
                if candidate == me {
                    continue;
                }
                // Rank the candidate on a short-lived scorecard.
                let card = vm.alloc_rooted(m, h.card_class, 1, 2)?;
                let profile = vm.field(candidate, USER_PROFILE)?;
                vm.set_field(card, CARD_PROFILE, profile)?;
                let affinity = vm.data_word(profile, 0)?.wrapping_add(f as u64 ^ ff as u64);
                vm.set_data_word(card, 0, affinity)?;
                vm.set_data_word(card, 1, visited as u64)?;
                best = best.max(affinity);
                visited += 1;
                self.cards_scored += 1;
            }
        }
        std::hint::black_box(best);
        vm.set_alloc_site(prev_site);
        // Bracket order as in scripts/region_server.gca: end the frame
        // first, then assert the region's objects all-dead.
        vm.pop_frame(m)?;
        if assertions {
            vm.assert_alldead(m)?;
        }
        self.traversals += 1;
        Ok(())
    }

    fn rewire(&mut self, vm: &mut Vm) -> Result<(), VmError> {
        let h = self.heap.expect("setup() before request()");
        let who = self.rng.gen_range(0..self.params.users);
        let slot = self.rng.gen_range(0..self.params.friends);
        let target = self.random_other(who);
        let user = h.users.get(vm, who)?;
        let edges = vm.field(user, USER_EDGES)?;
        let new_friend = h.users.get(vm, target)?;
        vm.set_field(edges, slot, new_friend)?;
        self.rewires += 1;
        Ok(())
    }
}

impl Scenario for SocialGraph {
    fn name(&self) -> &'static str {
        "social-graph"
    }

    fn heap_budget(&self) -> usize {
        16 * 1024
    }

    fn setup(&mut self, vm: &mut Vm, _assertions: bool) -> Result<(), VmError> {
        let m = vm.main();
        let user_class = vm.register_class("User", &["edges", "profile"]);
        let edge_class = vm.register_class("EdgeArray", &[]);
        let profile_class = vm.register_class("Profile", &[]);
        let card_class = vm.register_class("ScoreCard", &["profile"]);
        let users = HArrayList::new(vm, m, self.params.users)?;
        vm.add_root(m, users.handle())?;
        // First pass: the population. Each user is reachable through the
        // list the moment it is pushed.
        for id in 0..self.params.users {
            let user = vm.alloc(m, user_class, 2, 1)?;
            vm.set_data_word(user, 0, id as u64)?;
            users.push(vm, m, user)?;
        }
        // Second pass: edges and profiles (users are list-rooted by now,
        // so the allocations here may collect freely).
        for id in 0..self.params.users {
            let user = users.get(vm, id)?;
            let edges = vm.alloc(m, edge_class, self.params.friends, 0)?;
            vm.set_field(user, USER_EDGES, edges)?;
            let profile = vm.alloc(m, profile_class, 0, self.params.profile_words)?;
            vm.set_field(user, USER_PROFILE, profile)?;
            for w in 0..self.params.profile_words {
                vm.set_data_word(profile, w, (id as u64) << 8 | w as u64)?;
            }
            for f in 0..self.params.friends {
                let target = self.random_other(id);
                let friend = users.get(vm, target)?;
                let edges = vm.field(user, USER_EDGES)?;
                vm.set_field(edges, f, friend)?;
            }
        }
        self.heap = Some(GraphHeap { users, card_class });
        Ok(())
    }

    fn request(&mut self, vm: &mut Vm, assertions: bool) -> Result<(), VmError> {
        if self.params.rewire_every > 0
            && (self.traversals + self.rewires + 1).is_multiple_of(self.params.rewire_every as u64)
        {
            self.rewire(vm)
        } else {
            let start = self.rng.gen_range(0..self.params.users);
            self.traverse(vm, start, assertions)
        }
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("traversals", self.traversals),
            ("rewires", self.rewires),
            ("cards_scored", self.cards_scored),
        ]
    }
}

impl Workload for SocialGraph {
    fn name(&self) -> &str {
        "social-graph"
    }

    fn heap_budget(&self) -> usize {
        Scenario::heap_budget(self)
    }

    fn run(&self, vm: &mut Vm, assertions: bool) -> Result<(), VmError> {
        let mut fresh = SocialGraph::with_params(self.params, self.seed);
        fresh.setup(vm, assertions)?;
        for _ in 0..self.params.requests {
            fresh.request(vm, assertions)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_once, ExpConfig};
    use gc_assertions::{ViolationKind, VmConfig};

    #[test]
    fn batch_run_is_clean_with_assertions() {
        let w = SocialGraph::new(13);
        let m = run_once(&w, ExpConfig::WithAssertions).unwrap();
        assert_eq!(m.violations, 0);
        assert!(m.collections > 0, "must feel GC pressure");
    }

    #[test]
    fn requests_mix_traversals_and_rewires() {
        let mut s = SocialGraph::new(17);
        let mut vm = Vm::new(
            VmConfig::builder()
                .heap_budget(Scenario::heap_budget(&s))
                .grow_on_oom(true)
                .build(),
        );
        s.setup(&mut vm, true).unwrap();
        for _ in 0..200 {
            s.request(&mut vm, true).unwrap();
        }
        assert!(s.traversals() > 0);
        assert!(s.rewires() > 0);
        assert!(s.cards_scored > 0);
    }

    #[test]
    fn scorecard_captured_by_graph_violates_region() {
        // The bug the region bracket exists to catch: a traversal
        // temporary leaks into the long-lived graph.
        let mut s = SocialGraph::new(19);
        let mut vm = Vm::new(
            VmConfig::builder()
                .heap_budget(Scenario::heap_budget(&s))
                .grow_on_oom(true)
                .build(),
        );
        s.setup(&mut vm, true).unwrap();
        let h = s.heap.unwrap();
        let m = vm.main();
        // A region-bracketed "traversal" that stashes its card in a
        // user's profile slot.
        vm.start_region(m).unwrap();
        vm.push_frame(m).unwrap();
        let card = vm.alloc_rooted(m, h.card_class, 1, 2).unwrap();
        let user = h.users.get(&vm, 0).unwrap();
        vm.set_field(user, USER_PROFILE, card).unwrap(); // the leak
        vm.pop_frame(m).unwrap();
        vm.assert_alldead(m).unwrap();
        vm.collect().unwrap();
        let log = vm.take_violation_log();
        assert!(
            log.iter().any(
                |v| matches!(v.kind, ViolationKind::DeadReachable { object, .. } if object == card)
            ),
            "captured scorecard must be reported: {log:?}"
        );
    }
}
