//! Property tests: the in-heap data structures behave identically to
//! their std-library models under arbitrary operation sequences, and
//! their elements survive collections exactly while contained.

use gc_assertions::{ObjRef, Vm, VmConfig};
use gca_workloads::structures::{HBTree, HHashMap, HList};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

#[derive(Debug, Clone)]
enum MapOp {
    Put(u64),
    Remove(u64),
    Get(u64),
    Gc,
}

fn map_ops() -> impl Strategy<Value = Vec<MapOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..50).prop_map(MapOp::Put),
            (0u64..50).prop_map(MapOp::Remove),
            (0u64..50).prop_map(MapOp::Get),
            Just(MapOp::Gc),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hash_map_matches_std_model(ops in map_ops()) {
        let mut vm = Vm::new(VmConfig::builder().build());
        let m = vm.main();
        let elem = vm.register_class("Elem", &[]);
        let map = HHashMap::new(&mut vm, m, 2).unwrap();
        vm.add_root(m, map.handle()).unwrap();

        let mut model: HashMap<u64, ObjRef> = HashMap::new();
        for op in ops {
            match op {
                MapOp::Put(k) => {
                    let v = vm.alloc(m, elem, 0, 1).unwrap();
                    vm.set_data_word(v, 0, k).unwrap();
                    let old = map.put(&mut vm, m, k, v).unwrap();
                    prop_assert_eq!(old, model.insert(k, v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(map.remove(&mut vm, k).unwrap(), model.remove(&k));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(map.get(&vm, k).unwrap(), model.get(&k).copied());
                }
                MapOp::Gc => {
                    vm.collect().unwrap();
                    // Contained values survive, and their payloads are intact.
                    for (&k, &v) in &model {
                        prop_assert!(vm.is_live(v));
                        prop_assert_eq!(vm.data_word(v, 0).unwrap(), k);
                    }
                }
            }
            prop_assert_eq!(map.len(&vm).unwrap(), model.len());
        }
        // Entries agree as sets.
        let mut got = map.entries(&vm).unwrap();
        got.sort();
        let mut want: Vec<(u64, ObjRef)> = model.into_iter().collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn btree_matches_std_model(ops in map_ops()) {
        let mut vm = Vm::new(VmConfig::builder().build());
        let m = vm.main();
        let elem = vm.register_class("Elem", &[]);
        let tree = HBTree::new(&mut vm, m).unwrap();
        vm.add_root(m, tree.handle()).unwrap();

        let mut model: BTreeMap<u64, ObjRef> = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Put(k) => {
                    let v = vm.alloc(m, elem, 0, 1).unwrap();
                    vm.set_data_word(v, 0, k).unwrap();
                    let old = tree.insert(&mut vm, m, k, v).unwrap();
                    prop_assert_eq!(old, model.insert(k, v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(tree.remove(&mut vm, k).unwrap(), model.remove(&k));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(tree.get(&vm, k).unwrap(), model.get(&k).copied());
                }
                MapOp::Gc => {
                    vm.collect().unwrap();
                    for &v in model.values() {
                        prop_assert!(vm.is_live(v));
                    }
                }
            }
            prop_assert_eq!(tree.len(&vm).unwrap(), model.len());
        }
        // values() is the model's value sequence in key order.
        let got = tree.values(&vm).unwrap();
        let want: Vec<ObjRef> = model.values().copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn btree_bulk_then_removals_stay_searchable(
        keys in proptest::collection::vec(0u64..10_000, 1..400),
        remove_mask in proptest::collection::vec(any::<bool>(), 400),
    ) {
        let mut vm = Vm::new(VmConfig::builder().heap_budget(1 << 20).build());
        let m = vm.main();
        let elem = vm.register_class("Elem", &[]);
        let tree = HBTree::new(&mut vm, m).unwrap();
        vm.add_root(m, tree.handle()).unwrap();

        let mut model: BTreeMap<u64, ObjRef> = BTreeMap::new();
        for &k in &keys {
            let v = vm.alloc(m, elem, 0, 0).unwrap();
            tree.insert(&mut vm, m, k, v).unwrap();
            model.insert(k, v);
        }
        for (i, &k) in keys.iter().enumerate() {
            if remove_mask[i % remove_mask.len()] {
                prop_assert_eq!(tree.remove(&mut vm, k).unwrap(), model.remove(&k));
            }
        }
        vm.collect().unwrap();
        for &k in &keys {
            prop_assert_eq!(tree.get(&vm, k).unwrap(), model.get(&k).copied());
        }
        // Removed values were reclaimed, contained ones survive.
        for &k in &keys {
            if let Some(&v) = model.get(&k) {
                prop_assert!(vm.is_live(v));
            }
        }
    }

    #[test]
    fn list_push_pop_remove_matches_vec_model(
        ops in proptest::collection::vec(
            prop_oneof![
                Just(0u8), // push
                Just(1u8), // pop
                Just(2u8), // remove random
                Just(3u8), // gc
            ],
            1..100,
        )
    ) {
        let mut vm = Vm::new(VmConfig::builder().build());
        let m = vm.main();
        let elem = vm.register_class("Elem", &[]);
        let list = HList::new(&mut vm, m).unwrap();
        vm.add_root(m, list.handle()).unwrap();

        let mut model: Vec<ObjRef> = Vec::new(); // front at index 0
        let mut counter = 0u64;
        for op in ops {
            match op {
                0 => {
                    let v = vm.alloc(m, elem, 0, 1).unwrap();
                    vm.set_data_word(v, 0, counter).unwrap();
                    counter += 1;
                    list.push_front(&mut vm, m, v).unwrap();
                    model.insert(0, v);
                }
                1 => {
                    let got = list.pop_front(&mut vm).unwrap();
                    let want = if model.is_empty() { None } else { Some(model.remove(0)) };
                    prop_assert_eq!(got, want);
                }
                2 => {
                    if !model.is_empty() {
                        let victim = model[counter as usize % model.len()];
                        prop_assert!(list.remove(&mut vm, victim).unwrap());
                        model.retain(|&v| v != victim);
                    }
                }
                _ => {
                    vm.collect().unwrap();
                    for &v in &model {
                        prop_assert!(vm.is_live(v));
                    }
                }
            }
            prop_assert_eq!(list.len(&vm).unwrap(), model.len());
        }
        prop_assert_eq!(list.elements(&vm).unwrap(), model);
    }
}
