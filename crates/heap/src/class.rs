//! Runtime type registry — the analogue of Jikes RVM's `RVMClass`.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a registered class.
///
/// Minted by [`TypeRegistry::register`]; cheap to copy and compare.
///
/// # Example
///
/// ```
/// use gca_heap::TypeRegistry;
///
/// let mut reg = TypeRegistry::new();
/// let order = reg.register("Order", &["customer", "items"]);
/// assert_eq!(reg.name(order), "Order");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(u32);

impl ClassId {
    /// Raw index into the registry, for diagnostics.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClassId({})", self.0)
    }
}

/// Metadata for one registered class.
///
/// Mirroring the paper's `assert-instances` implementation (§2.4.1), every
/// class carries *two extra words*: an instance limit and an instance
/// count. The count is refreshed by the collector during tracing; the limit
/// is set by the assertion.
#[derive(Debug, Clone)]
pub struct ClassInfo {
    name: String,
    field_names: Vec<String>,
    /// `assert-instances` limit, if one has been asserted for this class.
    pub instance_limit: Option<u32>,
    /// Live instances observed by the most recent collection (only
    /// maintained for tracked classes, exactly as in the paper).
    pub instance_count: u32,
}

impl ClassInfo {
    /// The class name, as registered.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared reference-field names. Instances may carry more reference
    /// slots than declared names (arrays and ad-hoc payloads); extra slots
    /// print as `[i]`.
    pub fn field_names(&self) -> &[String] {
        &self.field_names
    }

    /// Human-readable name of reference field `index`.
    pub fn field_name(&self, index: usize) -> String {
        match self.field_names.get(index) {
            Some(n) => n.clone(),
            None => format!("[{index}]"),
        }
    }
}

/// Registry of classes loaded into the VM.
///
/// Classes are registered at runtime (the managed-language analogue of
/// dynamic class loading, which the paper calls out as a feature GC
/// assertions tolerate and static analysis does not). The registry also
/// keeps the *tracked types* side list used by `assert-instances`: one word
/// per tracked type, as in §2.4.1.
#[derive(Debug, Default)]
pub struct TypeRegistry {
    classes: Vec<ClassInfo>,
    by_name: HashMap<String, ClassId>,
    tracked: Vec<ClassId>,
}

impl TypeRegistry {
    /// Creates an empty registry.
    pub fn new() -> TypeRegistry {
        TypeRegistry::default()
    }

    /// Registers a class, returning its id. Registering a name twice
    /// returns the existing id (class loading is idempotent here).
    pub fn register(&mut self, name: &str, field_names: &[&str]) -> ClassId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(ClassInfo {
            name: name.to_owned(),
            field_names: field_names.iter().map(|s| (*s).to_owned()).collect(),
            instance_limit: None,
            instance_count: 0,
        });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks a class up by name.
    pub fn lookup(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    /// Number of registered classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Returns `true` if no class has been registered.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Metadata for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not minted by this registry.
    pub fn info(&self, id: ClassId) -> &ClassInfo {
        &self.classes[id.0 as usize]
    }

    /// Mutable metadata for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not minted by this registry.
    pub fn info_mut(&mut self, id: ClassId) -> &mut ClassInfo {
        &mut self.classes[id.0 as usize]
    }

    /// Convenience: the name of `id`.
    pub fn name(&self, id: ClassId) -> &str {
        self.info(id).name()
    }

    /// Marks `id` as tracked for `assert-instances` with the given limit,
    /// adding it to the tracked side list if new. Re-asserting updates the
    /// limit in place.
    pub fn track_instances(&mut self, id: ClassId, limit: u32) {
        let info = self.info_mut(id);
        info.instance_limit = Some(limit);
        if !self.tracked.contains(&id) {
            self.tracked.push(id);
        }
    }

    /// Stops tracking `id`.
    pub fn untrack_instances(&mut self, id: ClassId) {
        self.info_mut(id).instance_limit = None;
        self.tracked.retain(|&t| t != id);
    }

    /// Returns `true` if `id` is in the tracked side list.
    pub fn is_tracked(&self, id: ClassId) -> bool {
        self.info(id).instance_limit.is_some()
    }

    /// The tracked side list, in assertion order.
    pub fn tracked(&self) -> &[ClassId] {
        &self.tracked
    }

    /// Zeroes the instance counts of all tracked classes (start of a
    /// collection).
    pub fn reset_instance_counts(&mut self) {
        for &id in &self.tracked.clone() {
            self.info_mut(id).instance_count = 0;
        }
    }

    /// Iterates over `(ClassId, &ClassInfo)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &ClassInfo)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ClassId(i as u32), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = TypeRegistry::new();
        assert!(reg.is_empty());
        let a = reg.register("A", &["x"]);
        let b = reg.register("B", &[]);
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.lookup("A"), Some(a));
        assert_eq!(reg.lookup("C"), None);
        assert_eq!(reg.name(b), "B");
    }

    #[test]
    fn register_is_idempotent() {
        let mut reg = TypeRegistry::new();
        let a1 = reg.register("A", &["x"]);
        let a2 = reg.register("A", &["ignored"]);
        assert_eq!(a1, a2);
        assert_eq!(reg.len(), 1);
        // Field names from the first registration win.
        assert_eq!(reg.info(a1).field_name(0), "x");
    }

    #[test]
    fn field_names_fall_back_to_index() {
        let mut reg = TypeRegistry::new();
        let a = reg.register("A", &["head"]);
        assert_eq!(reg.info(a).field_name(0), "head");
        assert_eq!(reg.info(a).field_name(3), "[3]");
        assert_eq!(reg.info(a).field_names().len(), 1);
    }

    #[test]
    fn tracking_lifecycle() {
        let mut reg = TypeRegistry::new();
        let a = reg.register("A", &[]);
        let b = reg.register("B", &[]);
        assert!(!reg.is_tracked(a));
        reg.track_instances(a, 1);
        reg.track_instances(b, 0);
        assert!(reg.is_tracked(a));
        assert_eq!(reg.tracked(), &[a, b]);
        assert_eq!(reg.info(a).instance_limit, Some(1));

        // Re-tracking updates the limit without duplicating the entry.
        reg.track_instances(a, 5);
        assert_eq!(reg.tracked(), &[a, b]);
        assert_eq!(reg.info(a).instance_limit, Some(5));

        reg.untrack_instances(a);
        assert!(!reg.is_tracked(a));
        assert_eq!(reg.tracked(), &[b]);
    }

    #[test]
    fn reset_counts_only_touches_tracked() {
        let mut reg = TypeRegistry::new();
        let a = reg.register("A", &[]);
        let b = reg.register("B", &[]);
        reg.info_mut(a).instance_count = 10;
        reg.info_mut(b).instance_count = 7;
        reg.track_instances(a, 1);
        reg.reset_instance_counts();
        assert_eq!(reg.info(a).instance_count, 0);
        // Untracked counts are stale by design; nobody reads them.
        assert_eq!(reg.info(b).instance_count, 7);
    }
}
