//! Heap error type.

use std::error::Error;
use std::fmt;

use crate::ObjRef;

/// Errors returned by heap operations.
///
/// All variants indicate a mutator (or collector) programming error that a
/// real managed runtime would either make impossible or turn into a
/// `NullPointerException`-style fault.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HeapError {
    /// The reference is null where a live object was required.
    NullRef,
    /// The reference's slot index is outside the heap.
    InvalidRef(ObjRef),
    /// The reference's generation does not match the slot — the object it
    /// pointed at has been reclaimed (use after free).
    StaleRef(ObjRef),
    /// The field index is out of bounds for the object.
    FieldOutOfBounds {
        /// Object being accessed.
        object: ObjRef,
        /// Requested reference-field index.
        field: usize,
        /// Number of reference fields the object actually has.
        len: usize,
    },
    /// The heap budget is exhausted and a collection did not free enough
    /// space (raised by the VM layer's allocation policy).
    OutOfMemory {
        /// Words requested by the failing allocation.
        requested: usize,
        /// Heap budget in words.
        budget: usize,
        /// Words still occupied after the last collection.
        occupied: usize,
    },
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::NullRef => write!(f, "null reference"),
            HeapError::InvalidRef(r) => write!(f, "invalid reference {r}"),
            HeapError::StaleRef(r) => {
                write!(f, "stale reference {r} (object was reclaimed)")
            }
            HeapError::FieldOutOfBounds { object, field, len } => write!(
                f,
                "field index {field} out of bounds for object {object} with {len} reference fields"
            ),
            HeapError::OutOfMemory {
                requested,
                budget,
                occupied,
            } => write!(
                f,
                "out of memory: requested {requested} words, budget {budget}, occupied {occupied}"
            ),
        }
    }
}

impl Error for HeapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = HeapError::NullRef;
        assert_eq!(e.to_string(), "null reference");
        let e = HeapError::StaleRef(ObjRef::NULL);
        assert!(e.to_string().contains("stale"));
        let e = HeapError::FieldOutOfBounds {
            object: ObjRef::NULL,
            field: 9,
            len: 2,
        };
        assert!(e.to_string().contains("field index 9"));
        let e = HeapError::OutOfMemory {
            requested: 10,
            budget: 100,
            occupied: 95,
        };
        assert!(e.to_string().starts_with("out of memory"));
    }

    #[test]
    fn error_trait_object() {
        fn take(_: &dyn Error) {}
        take(&HeapError::NullRef);
    }
}
