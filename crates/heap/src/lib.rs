//! # gca-heap — managed-heap substrate
//!
//! This crate implements the object model and allocator that stand in for
//! the Jikes RVM heap in the Rust reproduction of *GC Assertions: Using the
//! Garbage Collector to Check Heap Properties* (Aftandilian & Guyer, PLDI
//! 2009).
//!
//! The heap is a **non-moving, free-list heap** (the paper uses the
//! MarkSweep plan), holding objects that carry:
//!
//! * a class id into a runtime [`TypeRegistry`] (the analogue of
//!   `RVMClass`),
//! * a header word of [`Flags`] with the *spare header bits* the paper
//!   steals for `assert-dead`, `assert-unshared` and the ownership marks,
//! * a slice of reference fields, and
//! * an opaque data payload measured in words (so allocation volume and
//!   heap pressure behave realistically without simulating primitive data).
//!
//! Objects are addressed through generation-checked [`ObjRef`] handles: the
//! heap bumps a slot's generation when the slot is freed, so a stale handle
//! is a checked [`HeapError::StaleRef`] instead of undefined behaviour.
//! This models the safety a managed runtime provides to the collector and
//! mutator.
//!
//! # Example
//!
//! ```
//! use gca_heap::{Heap, ObjRef};
//!
//! # fn main() -> Result<(), gca_heap::HeapError> {
//! let mut heap = Heap::new();
//! let list = heap.register_class("List", &["head"]);
//! let node = heap.register_class("Node", &["next", "value"]);
//!
//! let l = heap.alloc(list, 1, 0)?;
//! let n = heap.alloc(node, 2, 4)?;
//! heap.set_ref_field(l, 0, n)?;
//! assert_eq!(heap.ref_field(l, 0)?, n);
//! assert_eq!(heap.class_name(heap.class_of(n)?), "Node");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod class;
mod error;
mod flags;
mod heap;
mod object;
mod objref;
mod spaces;
mod stats;

pub use class::{ClassId, ClassInfo, TypeRegistry};
pub use error::HeapError;
pub use flags::{AtomicFlags, Flags};
pub use heap::{Heap, LiveIter};
pub use object::{Object, HEADER_WORDS};
pub use objref::ObjRef;
pub use spaces::SemiSpaces;
pub use stats::HeapStats;
