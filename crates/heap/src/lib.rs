//! # gca-heap — managed-heap substrate
//!
//! This crate implements the object model and allocator that stand in for
//! the Jikes RVM heap in the Rust reproduction of *GC Assertions: Using the
//! Garbage Collector to Check Heap Properties* (Aftandilian & Guyer, PLDI
//! 2009).
//!
//! The heap is a **Big-Bag-of-Pages (BiBOP) heap** in the tradition of the
//! MMTk MarkSweep plan the paper runs on: objects are binned into 64-slot
//! pages by size class ([`SIZE_CLASSES`]), allocated with a per-page bump
//! pointer and recycled through per-class page stacks, with objects larger
//! than [`LOS_THRESHOLD`] words placed in a large-object space of
//! single-occupant pages. Each object carries:
//!
//! * a class id into a runtime [`TypeRegistry`] (the analogue of
//!   `RVMClass`),
//! * a slice of reference fields, and
//! * an opaque data payload measured in words (so allocation volume and
//!   heap pressure behave realistically without simulating primitive data).
//!
//! The paper's header [`Flags`] (`assert-dead`, `assert-unshared`, the
//! ownership marks, …) live in **per-page side bit-planes** rather than
//! object headers, so mark, sweep, and the assertion engine's bulk clears
//! process 64 objects per bitmap word. A [`CardTable`] with one dirty bit
//! per page gives generational minors their write barrier: every reference
//! store dirties the source object's card, and the minor harvests old
//! objects on dirty pages instead of maintaining a remembered-set table.
//!
//! *Where* objects live in (simulated) memory is delegated to a space
//! backend behind the [`HeapSpace`] facade: [`SpaceKind::Paged`] derives
//! non-moving addresses from page geometry, while [`SpaceKind::Semispace`]
//! keeps Cheney from/to bookkeeping for the copying collector. Object
//! *storage* always stays in the page table, so handles survive
//! evacuation.
//!
//! Objects are addressed through generation-checked [`ObjRef`] handles: the
//! heap bumps a slot's generation when the slot is freed, so a stale handle
//! is a checked [`HeapError::StaleRef`] instead of undefined behaviour.
//! This models the safety a managed runtime provides to the collector and
//! mutator.
//!
//! # Example
//!
//! ```
//! use gca_heap::{Heap, ObjRef};
//!
//! # fn main() -> Result<(), gca_heap::HeapError> {
//! let mut heap = Heap::new();
//! let list = heap.register_class("List", &["head"]);
//! let node = heap.register_class("Node", &["next", "value"]);
//!
//! let l = heap.alloc(list, 1, 0)?;
//! let n = heap.alloc(node, 2, 4)?;
//! heap.set_ref_field(l, 0, n)?;
//! assert_eq!(heap.ref_field(l, 0)?, n);
//! assert_eq!(heap.class_name(heap.class_of(n)?), "Node");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cards;
mod class;
mod error;
mod flags;
mod heap;
mod object;
mod objref;
mod pages;
mod space;
mod spaces;
mod stats;

pub use cards::CardTable;
pub use class::{ClassId, ClassInfo, TypeRegistry};
pub use error::HeapError;
pub use flags::{AtomicFlags, Flags};
pub use heap::{Heap, LiveIter};
pub use object::{Object, HEADER_WORDS};
pub use objref::ObjRef;
pub use pages::{PageMeta, PageTable, LOS_THRESHOLD, PAGE_SHIFT, PAGE_SLOTS, SIZE_CLASSES};
pub use space::{HeapSpace, SpaceKind};
pub use spaces::SemiSpaces;
pub use stats::HeapStats;
