//! Cumulative heap statistics.

use std::fmt;

/// Cumulative allocation/reclamation statistics for a [`crate::Heap`].
///
/// All word figures use the object footprint defined by
/// [`crate::Object::size_words`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Objects ever allocated.
    pub allocations: u64,
    /// Words ever allocated.
    pub allocated_words: u64,
    /// Objects ever freed.
    pub frees: u64,
    /// Words ever freed.
    pub freed_words: u64,
    /// High-water mark of occupied words.
    pub peak_occupied_words: usize,
}

impl HeapStats {
    /// Creates zeroed statistics.
    pub fn new() -> HeapStats {
        HeapStats::default()
    }
}

impl fmt::Display for HeapStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "allocs={} ({} words), frees={} ({} words), peak={} words",
            self.allocations,
            self.allocated_words,
            self.frees,
            self.freed_words,
            self.peak_occupied_words
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let s = HeapStats::new();
        assert_eq!(s.allocations, 0);
        assert_eq!(s.peak_occupied_words, 0);
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = HeapStats {
            allocations: 1,
            allocated_words: 2,
            frees: 3,
            freed_words: 4,
            peak_occupied_words: 5,
        };
        let out = s.to_string();
        for needle in ["allocs=1", "2 words", "frees=3", "4 words", "peak=5"] {
            assert!(out.contains(needle), "missing {needle} in {out}");
        }
    }
}
