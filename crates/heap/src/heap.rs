//! The heap: BiBOP page-table storage behind a pluggable space backend.

use crate::pages::{PageMeta, PageTable, RefFault, PAGE_SHIFT, PAGE_SLOTS};
use crate::{
    CardTable, ClassId, Flags, HeapError, HeapSpace, HeapStats, ObjRef, Object, SemiSpaces,
    SpaceKind, TypeRegistry,
};

/// A heap of [`Object`]s stored in Big-Bag-of-Pages size-class pages.
///
/// This is the substrate the collector and assertion engine operate on —
/// the analogue of Jikes RVM's MarkSweep space. Object storage always
/// lives in the [`PageTable`]: indices are stable, per-slot generations
/// are bumped on [`Heap::free`] so stale [`ObjRef`]s are detected, and
/// all per-object flags live in per-page side bit-planes rather than
/// object headers, so the mark and sweep loops work on whole 64-slot
/// bitmap words.
///
/// *Where objects live in (simulated) memory* is the space backend's
/// business: [`Heap::with_space`] selects [`SpaceKind::Paged`]
/// (non-moving page-geometry addresses) or [`SpaceKind::Semispace`]
/// (Cheney from/to bookkeeping for the copying collector). Engines
/// observe the backend through the [`HeapSpace`] facade ([`Heap::space`]).
///
/// The heap itself is unbounded; the VM layer imposes the budget and
/// triggers collections (§3.1.1 runs every benchmark at a fixed heap of
/// 2× its minimum).
///
/// # Example
///
/// ```
/// use gca_heap::{Flags, Heap};
///
/// # fn main() -> Result<(), gca_heap::HeapError> {
/// let mut heap = Heap::new();
/// let c = heap.register_class("Pair", &["left", "right"]);
/// let a = heap.alloc(c, 2, 0)?;
/// let b = heap.alloc(c, 2, 0)?;
/// heap.set_ref_field(a, 0, b)?;
/// heap.set_flag(b, Flags::UNSHARED)?;
/// assert!(heap.has_flag(b, Flags::UNSHARED)?);
///
/// let freed = heap.free(b)?;
/// assert!(freed > 0);
/// assert!(!heap.is_valid(b)); // stale handle detected
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Heap {
    table: PageTable,
    /// Semispace address bookkeeping, present only for
    /// [`SpaceKind::Semispace`] heaps.
    semi: Option<Box<SemiSpaces>>,
    cards: CardTable,
    registry: TypeRegistry,
    stats: HeapStats,
}

impl Heap {
    /// Creates an empty heap on the default [`SpaceKind::Paged`] backend.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Creates an empty heap on the given space backend. The backend is
    /// fixed for the heap's lifetime; the VM derives it from the
    /// collector kind, so `CollectorKind` alone determines the layout.
    pub fn with_space(kind: SpaceKind) -> Heap {
        Heap {
            semi: match kind {
                SpaceKind::Paged => None,
                SpaceKind::Semispace => Some(Box::new(SemiSpaces::new())),
            },
            ..Heap::default()
        }
    }

    /// Registers a class in the heap's type registry (idempotent by name).
    pub fn register_class(&mut self, name: &str, field_names: &[&str]) -> ClassId {
        self.registry.register(name, field_names)
    }

    /// The type registry.
    pub fn registry(&self) -> &TypeRegistry {
        &self.registry
    }

    /// Mutable access to the type registry.
    pub fn registry_mut(&mut self) -> &mut TypeRegistry {
        &mut self.registry
    }

    /// Convenience: the name of a class.
    pub fn class_name(&self, class: ClassId) -> &str {
        self.registry.name(class)
    }

    /// Allocates an object of `class` with `nrefs` reference fields and a
    /// `data_words`-word payload. All reference fields start null, all
    /// flags clear. The object is binned into the smallest size class
    /// that fits it (or a dedicated large-object page).
    ///
    /// The heap never refuses an allocation — budget enforcement is the VM
    /// layer's job, so the collector can always allocate its own metadata.
    ///
    /// # Errors
    ///
    /// Currently infallible, but returns `Result` so the signature matches
    /// the budgeted VM-layer allocator that wraps it.
    pub fn alloc(
        &mut self,
        class: ClassId,
        nrefs: usize,
        data_words: usize,
    ) -> Result<ObjRef, HeapError> {
        let object = Object::new(class, nrefs, data_words);
        let words = object.size_words();
        let r = self.table.alloc(object);
        if self.table.page_count() > self.cards.page_span() {
            self.cards.ensure_pages(self.table.page_count());
        }
        if let Some(semi) = &mut self.semi {
            semi.note_alloc(r.index() as usize, words);
        }
        self.stats.allocations += 1;
        self.stats.allocated_words += words as u64;
        if self.table.occupied_words() > self.stats.peak_occupied_words {
            self.stats.peak_occupied_words = self.table.occupied_words();
        }
        Ok(r)
    }

    /// Frees the object behind `r`, returning its size in words. The
    /// slot's generation is bumped so `r` (and any copy of it) becomes
    /// stale, and the slot's flag-plane bits are cleared.
    ///
    /// # Errors
    ///
    /// [`HeapError::NullRef`], [`HeapError::InvalidRef`] or
    /// [`HeapError::StaleRef`] if `r` does not name a live object.
    pub fn free(&mut self, r: ObjRef) -> Result<usize, HeapError> {
        if r.is_null() {
            return Err(HeapError::NullRef);
        }
        let words = match self.table.free_checked(r.index(), r.generation()) {
            Ok(words) => words,
            Err(RefFault::Invalid) => return Err(HeapError::InvalidRef(r)),
            Err(RefFault::Stale) => return Err(HeapError::StaleRef(r)),
        };
        if let Some(semi) = &mut self.semi {
            semi.note_free(r.index() as usize);
        }
        self.stats.frees += 1;
        self.stats.freed_words += words as u64;
        Ok(words)
    }

    #[inline]
    fn check(&self, r: ObjRef) -> Result<(), HeapError> {
        if r.is_null() {
            return Err(HeapError::NullRef);
        }
        match self.table.gen_and_live(r.index()) {
            None => Err(HeapError::InvalidRef(r)),
            Some((gen, live)) if gen == r.generation() && live => Ok(()),
            Some(_) => Err(HeapError::StaleRef(r)),
        }
    }

    /// Returns `true` if `r` names a live object.
    #[inline]
    pub fn is_valid(&self, r: ObjRef) -> bool {
        self.check(r).is_ok()
    }

    /// Borrows the object behind `r`.
    ///
    /// # Errors
    ///
    /// See [`Heap::free`] for the reference-validity errors.
    #[inline]
    pub fn get(&self, r: ObjRef) -> Result<&Object, HeapError> {
        self.check(r)?;
        Ok(self.table.object(r.index()))
    }

    /// Mutably borrows the object behind `r`.
    ///
    /// # Errors
    ///
    /// See [`Heap::free`] for the reference-validity errors.
    #[inline]
    pub fn get_mut(&mut self, r: ObjRef) -> Result<&mut Object, HeapError> {
        self.check(r)?;
        Ok(self.table.object_mut(r.index()))
    }

    /// The class of the object behind `r`.
    ///
    /// # Errors
    ///
    /// See [`Heap::free`] for the reference-validity errors.
    pub fn class_of(&self, r: ObjRef) -> Result<ClassId, HeapError> {
        Ok(self.get(r)?.class())
    }

    /// Reads reference field `field` of `obj`.
    ///
    /// # Errors
    ///
    /// Reference-validity errors, or [`HeapError::FieldOutOfBounds`].
    pub fn ref_field(&self, obj: ObjRef, field: usize) -> Result<ObjRef, HeapError> {
        let o = self.get(obj)?;
        o.refs()
            .get(field)
            .copied()
            .ok_or(HeapError::FieldOutOfBounds {
                object: obj,
                field,
                len: o.ref_count(),
            })
    }

    /// Writes reference field `field` of `obj`, returning the old value.
    /// `value` may be [`ObjRef::NULL`]; a non-null `value` must be live.
    ///
    /// Dirties the card of `obj`'s page — the generational write barrier
    /// is this single unconditional bit set.
    ///
    /// # Errors
    ///
    /// Reference-validity errors for `obj` or a non-null `value`, or
    /// [`HeapError::FieldOutOfBounds`].
    pub fn set_ref_field(
        &mut self,
        obj: ObjRef,
        field: usize,
        value: ObjRef,
    ) -> Result<ObjRef, HeapError> {
        if value.is_some() {
            self.check(value)?;
        }
        let o = self.get_mut(obj)?;
        let len = o.ref_count();
        let slot = o
            .refs_mut()
            .get_mut(field)
            .ok_or(HeapError::FieldOutOfBounds {
                object: obj,
                field,
                len,
            })?;
        let old = std::mem::replace(slot, value);
        self.cards.dirty(obj.index() >> PAGE_SHIFT);
        Ok(old)
    }

    /// Reads data word `index` of `obj`.
    ///
    /// # Errors
    ///
    /// Reference-validity errors, or [`HeapError::FieldOutOfBounds`] if
    /// `index` exceeds the payload.
    pub fn data_word(&self, obj: ObjRef, index: usize) -> Result<u64, HeapError> {
        let o = self.get(obj)?;
        o.data()
            .get(index)
            .copied()
            .ok_or(HeapError::FieldOutOfBounds {
                object: obj,
                field: index,
                len: o.data_words(),
            })
    }

    /// Writes data word `index` of `obj`.
    ///
    /// # Errors
    ///
    /// Reference-validity errors, or [`HeapError::FieldOutOfBounds`] if
    /// `index` exceeds the payload.
    pub fn set_data_word(
        &mut self,
        obj: ObjRef,
        index: usize,
        value: u64,
    ) -> Result<(), HeapError> {
        let o = self.get_mut(obj)?;
        let len = o.data_words();
        match o.data_mut().get_mut(index) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(HeapError::FieldOutOfBounds {
                object: obj,
                field: index,
                len,
            }),
        }
    }

    /// Sets flag bits on the object behind `r`. Takes `&self`: flags live
    /// in atomic side bit-planes so tracer workers can mark through a
    /// shared heap borrow.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn set_flag(&self, r: ObjRef, bits: Flags) -> Result<(), HeapError> {
        self.check(r)?;
        self.table.set_flags(r.index(), bits);
        Ok(())
    }

    /// Atomically sets flag bits on the object behind `r`, returning the
    /// flags held *before* the update: during a parallel trace, the
    /// worker that sees the claimed bit clear in the return value is the
    /// object's unique visitor.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn fetch_set_flag(&self, r: ObjRef, bits: Flags) -> Result<Flags, HeapError> {
        self.check(r)?;
        Ok(self.table.fetch_set_flags(r.index(), bits))
    }

    /// Clears flag bits on the object behind `r`.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn clear_flag(&self, r: ObjRef, bits: Flags) -> Result<(), HeapError> {
        self.check(r)?;
        self.table.clear_flags(r.index(), bits);
        Ok(())
    }

    /// Tests flag bits on the object behind `r`.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn has_flag(&self, r: ObjRef, bits: Flags) -> Result<bool, HeapError> {
        self.check(r)?;
        Ok(self.table.has_flags(r.index(), bits))
    }

    /// The full flag word of the object behind `r`, composed from the
    /// side bit-planes.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn flags_of(&self, r: ObjRef) -> Result<Flags, HeapError> {
        self.check(r)?;
        Ok(self.table.flags_of(r.index()))
    }

    /// Number of live objects.
    #[inline]
    pub fn live_objects(&self) -> usize {
        self.table.live_objects()
    }

    /// Words currently occupied by live objects (exact
    /// [`Object::size_words`] footprints, not size-class-rounded).
    #[inline]
    pub fn occupied_words(&self) -> usize {
        self.table.occupied_words()
    }

    /// Exclusive upper bound of the object-index space
    /// (`page_count() * PAGE_SLOTS`); every live index is below it.
    #[inline]
    pub fn index_bound(&self) -> usize {
        self.table.index_bound()
    }

    /// Number of pages in the table.
    #[inline]
    pub fn page_count(&self) -> usize {
        self.table.page_count()
    }

    /// Metadata view of page `pid` (`0..page_count()`): liveness bitmap,
    /// flag-plane words, size class — the facade the collectors' word-wise
    /// mark/sweep loops consume.
    #[inline]
    pub fn page_meta(&self, pid: usize) -> PageMeta<'_> {
        PageMeta::new(self.table.page(pid), pid as u32)
    }

    /// The live object at `index`, if any, as a `(handle, object)` pair.
    /// O(1): the index decomposes into `(page, slot)` by shift/mask.
    #[inline]
    pub fn object_at(&self, index: u32) -> Option<(ObjRef, &Object)> {
        if self.table.is_live(index) {
            let gen = self.table.gen_at(index)?;
            Some((ObjRef::from_parts(index, gen), self.table.object(index)))
        } else {
            None
        }
    }

    /// Word-wise flag clear: removes the `mask` slots' bits of page `pid`
    /// from every plane in `bits`. One atomic op per plane — the sweep
    /// uses this to clear `PER_GC` bits on a whole page of survivors.
    #[inline]
    pub fn clear_flag_word(&self, pid: usize, bits: Flags, mask: u64) {
        self.table.clear_flag_word(pid, bits, mask);
    }

    /// The dirty-card table (one card per page; see
    /// [`Heap::set_ref_field`]).
    pub fn cards(&self) -> &CardTable {
        &self.cards
    }

    /// Wipes every card clean (the generational collector calls this at
    /// the end of each collection).
    pub fn clear_cards(&mut self) {
        self.cards.clear();
    }

    /// Harvests the card table into a remembered set: every **old** live
    /// object resident on a dirty page, in ascending index order. Young
    /// residents are excluded — they are reached through the young list,
    /// and treating them as roots would change the minor's live set.
    pub fn remembered_from_cards(&self) -> Vec<ObjRef> {
        let mut out = Vec::new();
        for pid in self.cards.dirty_pages() {
            if pid as usize >= self.table.page_count() {
                break;
            }
            let meta = self.page_meta(pid as usize);
            let mut olds = meta.live_mask() & meta.flag_word(Flags::OLD);
            while olds != 0 {
                let slot = olds.trailing_zeros() as usize;
                olds &= olds - 1;
                if let Some(r) = meta.handle(slot) {
                    out.push(r);
                }
            }
        }
        out
    }

    /// Which space backend this heap was built with.
    pub fn space_kind(&self) -> SpaceKind {
        match self.semi {
            Some(_) => SpaceKind::Semispace,
            None => SpaceKind::Paged,
        }
    }

    /// The active space backend, as the read-only [`HeapSpace`] facade.
    pub fn space(&self) -> &dyn HeapSpace {
        match &self.semi {
            Some(semi) => semi.as_ref(),
            None => &self.table,
        }
    }

    /// Starts an evacuation cycle on the semispace backend.
    ///
    /// # Panics
    ///
    /// If the heap is not on [`SpaceKind::Semispace`], or a cycle is
    /// already in progress — both are collector-contract violations.
    pub fn evac_begin(&mut self) {
        self.semi_mut().begin_gc();
    }

    /// Evacuates the live object behind `r` to the to-space, installing
    /// and returning its forwarding address. Each object may be forwarded
    /// at most once per cycle.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    ///
    /// # Panics
    ///
    /// If the heap is not on [`SpaceKind::Semispace`], no cycle is in
    /// progress, or `r` was already forwarded this cycle.
    pub fn evac_forward(&mut self, r: ObjRef) -> Result<u64, HeapError> {
        self.check(r)?;
        let words = self.table.object(r.index()).size_words();
        Ok(self.semi_mut().forward(r.index() as usize, words))
    }

    /// The forwarding address installed for `r` this cycle, if any.
    pub fn evac_forwarding_of(&self, r: ObjRef) -> Option<u64> {
        self.semi
            .as_ref()
            .and_then(|s| s.forwarding_of(r.index() as usize))
    }

    /// Completes the evacuation cycle: survivors take their forwarding
    /// addresses and the semispaces flip.
    ///
    /// # Panics
    ///
    /// If the heap is not on [`SpaceKind::Semispace`] or no cycle is in
    /// progress.
    pub fn evac_finish(&mut self) {
        self.semi_mut().finish_gc();
    }

    fn semi_mut(&mut self) -> &mut SemiSpaces {
        self.semi
            .as_deref_mut()
            .expect("evacuation requires the semispace backend (SpaceKind::Semispace)")
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &HeapStats {
        &self.stats
    }

    /// Verifies the heap's internal invariants, returning a list of
    /// human-readable violations (empty = healthy). One backend-dispatched
    /// check covers everything:
    ///
    /// * page-table structure — live/free bitmaps vs bump pointers and
    ///   slot storage, flag planes confined to live slots, size-class
    ///   binning, LOS arity, avail-stack consistency, and counter drift;
    /// * the card table spans every page;
    /// * every non-null reference field points at a live object (the
    ///   collector never leaves dangling edges behind);
    /// * the active space's address invariants
    ///   ([`HeapSpace::verify_layout`]) against the current live set.
    ///
    /// Intended for tests and debugging (full heap walk).
    pub fn verify(&self) -> Vec<String> {
        let mut problems = self.table.verify_structure();
        if self.cards.page_span() < self.table.page_count() {
            problems.push(format!(
                "card table spans {} pages but the heap has {}",
                self.cards.page_span(),
                self.table.page_count()
            ));
        }
        let mut resident = Vec::with_capacity(self.live_objects());
        for (r, obj) in self.iter() {
            for (f, &child) in obj.refs().iter().enumerate() {
                if child.is_some() && !self.is_valid(child) {
                    problems.push(format!(
                        "dangling reference: index {} field {f} -> {child}",
                        r.index()
                    ));
                }
            }
            resident.push((r.index(), obj.size_words()));
        }
        problems.extend(self.space().verify_layout(&resident));
        problems
    }

    /// Iterates over all live objects in ascending index order.
    pub fn iter(&self) -> LiveIter<'_> {
        LiveIter {
            heap: self,
            pid: 0,
            mask: if self.table.page_count() == 0 {
                0
            } else {
                self.page_meta(0).live_mask()
            },
        }
    }
}

/// Iterator over the live objects of a [`Heap`], yielded as
/// `(handle, object)` pairs in ascending index order. Walks the per-page
/// liveness bitmaps word by word. Produced by [`Heap::iter`].
#[derive(Debug)]
pub struct LiveIter<'a> {
    heap: &'a Heap,
    pid: usize,
    mask: u64,
}

impl<'a> Iterator for LiveIter<'a> {
    type Item = (ObjRef, &'a Object);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.mask != 0 {
                let slot = self.mask.trailing_zeros();
                self.mask &= self.mask - 1;
                let index = (self.pid * PAGE_SLOTS) as u32 + slot;
                return self.heap.object_at(index);
            }
            self.pid += 1;
            if self.pid >= self.heap.page_count() {
                return None;
            }
            self.mask = self.heap.page_meta(self.pid).live_mask();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pages::{LOS_THRESHOLD, SIZE_CLASSES};
    use crate::HEADER_WORDS;

    fn heap_with_class() -> (Heap, ClassId) {
        let mut heap = Heap::new();
        let c = heap.register_class("T", &["a", "b"]);
        (heap, c)
    }

    #[test]
    fn alloc_get_roundtrip() {
        let (mut heap, c) = heap_with_class();
        let r = heap.alloc(c, 2, 3).unwrap();
        let o = heap.get(r).unwrap();
        assert_eq!(o.class(), c);
        assert_eq!(o.ref_count(), 2);
        assert_eq!(o.data_words(), 3);
        assert_eq!(heap.live_objects(), 1);
        assert_eq!(heap.occupied_words(), o.size_words());
    }

    #[test]
    fn free_makes_handle_stale() {
        let (mut heap, c) = heap_with_class();
        let r = heap.alloc(c, 0, 0).unwrap();
        heap.free(r).unwrap();
        assert!(!heap.is_valid(r));
        assert_eq!(heap.get(r).err(), Some(HeapError::StaleRef(r)));
        assert_eq!(heap.free(r), Err(HeapError::StaleRef(r)));
        assert_eq!(heap.live_objects(), 0);
        assert_eq!(heap.occupied_words(), 0);
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let (mut heap, c) = heap_with_class();
        // Fill the first page so the bump pointer is exhausted and the
        // freed slot must be reused.
        let first: Vec<ObjRef> = (0..PAGE_SLOTS)
            .map(|_| heap.alloc(c, 0, 0).unwrap())
            .collect();
        let a = first[0];
        heap.free(a).unwrap();
        let b = heap.alloc(c, 0, 0).unwrap();
        assert_eq!(a.index(), b.index(), "slot should be reused");
        assert_ne!(a.generation(), b.generation());
        assert!(!heap.is_valid(a));
        assert!(heap.is_valid(b));
    }

    #[test]
    fn field_read_write() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 2, 0).unwrap();
        let b = heap.alloc(c, 0, 0).unwrap();
        assert_eq!(heap.ref_field(a, 0).unwrap(), ObjRef::NULL);
        let old = heap.set_ref_field(a, 0, b).unwrap();
        assert_eq!(old, ObjRef::NULL);
        assert_eq!(heap.ref_field(a, 0).unwrap(), b);
        let old = heap.set_ref_field(a, 0, ObjRef::NULL).unwrap();
        assert_eq!(old, b);
    }

    #[test]
    fn field_bounds_checked() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 1, 0).unwrap();
        assert!(matches!(
            heap.ref_field(a, 1),
            Err(HeapError::FieldOutOfBounds {
                field: 1,
                len: 1,
                ..
            })
        ));
        assert!(matches!(
            heap.set_ref_field(a, 5, ObjRef::NULL),
            Err(HeapError::FieldOutOfBounds {
                field: 5,
                len: 1,
                ..
            })
        ));
    }

    #[test]
    fn writing_stale_value_is_error() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 1, 0).unwrap();
        let b = heap.alloc(c, 0, 0).unwrap();
        heap.free(b).unwrap();
        assert_eq!(heap.set_ref_field(a, 0, b), Err(HeapError::StaleRef(b)));
    }

    #[test]
    fn null_and_invalid_refs() {
        let (heap, _) = heap_with_class();
        assert_eq!(heap.get(ObjRef::NULL).err(), Some(HeapError::NullRef));
        let bogus = ObjRef::from_parts(999, 0);
        assert_eq!(heap.get(bogus).err(), Some(HeapError::InvalidRef(bogus)));
    }

    #[test]
    fn data_words_read_write() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 0, 3).unwrap();
        assert_eq!(heap.data_word(a, 0).unwrap(), 0, "zero-initialized");
        heap.set_data_word(a, 2, 42).unwrap();
        assert_eq!(heap.data_word(a, 2).unwrap(), 42);
        assert!(matches!(
            heap.data_word(a, 3),
            Err(HeapError::FieldOutOfBounds {
                field: 3,
                len: 3,
                ..
            })
        ));
        assert!(matches!(
            heap.set_data_word(a, 9, 1),
            Err(HeapError::FieldOutOfBounds {
                field: 9,
                len: 3,
                ..
            })
        ));
    }

    #[test]
    fn flags_via_heap() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 0, 0).unwrap();
        assert!(!heap.has_flag(a, Flags::DEAD).unwrap());
        heap.set_flag(a, Flags::DEAD).unwrap();
        assert!(heap.has_flag(a, Flags::DEAD).unwrap());
        assert_eq!(heap.flags_of(a).unwrap(), Flags::DEAD);
        heap.clear_flag(a, Flags::DEAD).unwrap();
        assert!(!heap.has_flag(a, Flags::DEAD).unwrap());
        assert!(heap.flags_of(a).unwrap().is_empty());
    }

    #[test]
    fn fetch_set_reports_previous_bits() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 0, 0).unwrap();
        heap.set_flag(a, Flags::DEAD).unwrap();
        let prev = heap.fetch_set_flag(a, Flags::MARK).unwrap();
        assert!(!prev.contains(Flags::MARK), "first setter sees it clear");
        assert!(prev.contains(Flags::DEAD), "other planes are reported too");
        let prev = heap.fetch_set_flag(a, Flags::MARK).unwrap();
        assert!(prev.contains(Flags::MARK), "second setter sees it set");
    }

    #[test]
    fn freed_slot_flags_do_not_leak_to_next_tenant() {
        let (mut heap, c) = heap_with_class();
        let first: Vec<ObjRef> = (0..PAGE_SLOTS)
            .map(|_| heap.alloc(c, 0, 0).unwrap())
            .collect();
        let a = first[3];
        heap.set_flag(a, Flags::DEAD | Flags::UNSHARED | Flags::OLD)
            .unwrap();
        heap.free(a).unwrap();
        let b = heap.alloc(c, 0, 0).unwrap();
        assert_eq!(b.index(), a.index());
        assert!(heap.flags_of(b).unwrap().is_empty(), "planes were scrubbed");
    }

    #[test]
    fn iter_yields_live_only() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 0, 0).unwrap();
        let b = heap.alloc(c, 0, 0).unwrap();
        let d = heap.alloc(c, 0, 0).unwrap();
        heap.free(b).unwrap();
        let live: Vec<ObjRef> = heap.iter().map(|(r, _)| r).collect();
        assert_eq!(live, vec![a, d]);
    }

    #[test]
    fn object_at_by_index() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 0, 0).unwrap();
        assert_eq!(heap.object_at(0).map(|(r, _)| r), Some(a));
        heap.free(a).unwrap();
        assert!(heap.object_at(0).is_none());
        assert!(heap.object_at(4200).is_none());
    }

    #[test]
    fn stats_accumulate() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 2, 3).unwrap();
        let words = heap.get(a).unwrap().size_words();
        heap.free(a).unwrap();
        let b = heap.alloc(c, 0, 0).unwrap();
        let stats = heap.stats();
        assert_eq!(stats.allocations, 2);
        assert_eq!(stats.frees, 1);
        assert_eq!(stats.freed_words, words as u64);
        assert_eq!(stats.peak_occupied_words, words);
        assert!(heap.is_valid(b));
    }

    #[test]
    fn verify_clean_heap() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 2, 1).unwrap();
        let b = heap.alloc(c, 2, 0).unwrap();
        heap.set_ref_field(a, 0, b).unwrap();
        heap.free(b).unwrap();
        // `a` now has a dangling field — exactly what verify flags (the
        // collector never does this; a manual free can).
        let problems = heap.verify();
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("dangling"));
        heap.set_ref_field(a, 0, ObjRef::NULL).unwrap();
        assert!(heap.verify().is_empty());
    }

    #[test]
    fn verify_after_churn() {
        let (mut heap, c) = heap_with_class();
        let mut live = Vec::new();
        for i in 0..50 {
            let o = heap.alloc(c, 1, i % 5).unwrap();
            live.push(o);
            if i % 3 == 0 {
                let victim = live.remove(i % live.len());
                // Clear any fields pointing at the victim first.
                for &l in &live {
                    if heap.ref_field(l, 0).unwrap() == victim {
                        heap.set_ref_field(l, 0, ObjRef::NULL).unwrap();
                    }
                }
                heap.free(victim).unwrap();
            }
        }
        assert!(heap.verify().is_empty(), "{:?}", heap.verify());
    }

    // ---- BiBOP page invariants ----------------------------------------

    #[test]
    fn bump_allocation_stays_in_page_bounds() {
        let (mut heap, c) = heap_with_class();
        // All same class: the first PAGE_SLOTS allocations fill page 0 in
        // bump order, the next one opens page 1.
        let refs: Vec<ObjRef> = (0..PAGE_SLOTS + 1)
            .map(|_| heap.alloc(c, 0, 0).unwrap())
            .collect();
        for (i, r) in refs.iter().take(PAGE_SLOTS).enumerate() {
            assert_eq!(r.index(), i as u32, "bump order inside page 0");
        }
        assert_eq!(refs[PAGE_SLOTS].index(), PAGE_SLOTS as u32);
        assert_eq!(heap.page_count(), 2);
        let meta = heap.page_meta(0);
        assert_eq!(meta.bump(), PAGE_SLOTS as u32);
        assert_eq!(meta.live_mask(), u64::MAX);
        assert_eq!(heap.page_meta(1).bump(), 1);
        assert!(heap.verify().is_empty());
    }

    #[test]
    fn size_class_binning_separates_pages() {
        let (mut heap, c) = heap_with_class();
        let small = heap.alloc(c, 0, 0).unwrap(); // 2 words -> class 4
        let medium = heap.alloc(c, 2, 10).unwrap(); // 14 words -> class 16
        let big = heap.alloc(c, 0, 100).unwrap(); // 102 words -> class 128
        let pages: Vec<u32> = [small, medium, big]
            .iter()
            .map(|r| r.index() >> PAGE_SHIFT)
            .collect();
        assert_eq!(pages.len(), 3);
        assert!(pages[0] != pages[1] && pages[1] != pages[2] && pages[0] != pages[2]);
        assert_eq!(heap.page_meta(pages[0] as usize).slot_words(), 4);
        assert_eq!(heap.page_meta(pages[1] as usize).slot_words(), 16);
        assert_eq!(heap.page_meta(pages[2] as usize).slot_words(), 128);
        // Same class reuses the same page.
        let small2 = heap.alloc(c, 1, 0).unwrap(); // 3 words -> class 4
        assert_eq!(small2.index() >> PAGE_SHIFT, pages[0]);
        assert!(heap.verify().is_empty());
    }

    #[test]
    fn los_threshold_gets_dedicated_page() {
        let (mut heap, c) = heap_with_class();
        // Exactly at the threshold: still a size-class object.
        let at = heap.alloc(c, 0, LOS_THRESHOLD - HEADER_WORDS).unwrap();
        let at_meta = heap.page_meta((at.index() >> PAGE_SHIFT) as usize);
        assert!(!at_meta.is_los());
        assert_eq!(at_meta.slot_words(), *SIZE_CLASSES.last().unwrap());
        // One word over: large object space, capacity-1 page, exact size.
        let over = heap.alloc(c, 0, LOS_THRESHOLD - HEADER_WORDS + 1).unwrap();
        let over_meta = heap.page_meta((over.index() >> PAGE_SHIFT) as usize);
        assert!(over_meta.is_los());
        assert_eq!(over_meta.capacity(), 1);
        assert_eq!(over_meta.slot_words(), LOS_THRESHOLD + 1);
        assert_eq!(over.index() % PAGE_SLOTS as u32, 0, "LOS object at slot 0");
        // Freeing and reallocating a large object reuses the page.
        heap.free(over).unwrap();
        let again = heap.alloc(c, 0, 400).unwrap();
        assert_eq!(again.index(), over.index(), "vacated LOS page is reused");
        assert_eq!(
            heap.page_meta((again.index() >> PAGE_SHIFT) as usize)
                .slot_words(),
            HEADER_WORDS + 400
        );
        assert!(heap.verify().is_empty());
    }

    #[test]
    fn set_ref_field_dirties_the_source_card() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 2, 0).unwrap();
        let big = heap.alloc(c, 0, 300).unwrap(); // separate (LOS) page
        assert_eq!(
            heap.cards().dirty_count(),
            0,
            "allocation leaves cards clean"
        );
        heap.set_ref_field(a, 0, big).unwrap();
        assert!(heap.cards().is_dirty(a.index() >> PAGE_SHIFT));
        assert!(
            !heap.cards().is_dirty(big.index() >> PAGE_SHIFT),
            "only the *source* page is dirtied"
        );
        heap.clear_cards();
        assert_eq!(heap.cards().dirty_count(), 0);
        // A null store still dirties (the barrier is unconditional).
        heap.set_ref_field(a, 0, ObjRef::NULL).unwrap();
        assert!(heap.cards().is_dirty(a.index() >> PAGE_SHIFT));
    }

    #[test]
    fn remembered_from_cards_is_old_only_in_index_order() {
        let (mut heap, c) = heap_with_class();
        let old_a = heap.alloc(c, 2, 0).unwrap();
        let young = heap.alloc(c, 2, 0).unwrap();
        let old_b = heap.alloc(c, 2, 0).unwrap();
        heap.set_flag(old_a, Flags::OLD).unwrap();
        heap.set_flag(old_b, Flags::OLD).unwrap();
        heap.set_ref_field(old_b, 0, young).unwrap();
        heap.set_ref_field(young, 0, old_a).unwrap();
        // All three share page 0; the harvest takes the old ones only.
        assert_eq!(heap.remembered_from_cards(), vec![old_a, old_b]);
        heap.clear_cards();
        assert!(heap.remembered_from_cards().is_empty());
    }

    #[test]
    fn clear_flag_word_clears_only_masked_slots() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 0, 0).unwrap();
        let b = heap.alloc(c, 0, 0).unwrap();
        heap.set_flag(a, Flags::MARK | Flags::DEAD).unwrap();
        heap.set_flag(b, Flags::MARK).unwrap();
        heap.clear_flag_word(0, Flags::PER_GC, 1 << a.index());
        assert!(!heap.has_flag(a, Flags::MARK).unwrap());
        assert!(
            heap.has_flag(a, Flags::DEAD).unwrap(),
            "non-PER_GC plane kept"
        );
        assert!(heap.has_flag(b, Flags::MARK).unwrap(), "unmasked slot kept");
    }

    #[test]
    fn page_meta_flag_words_match_per_object_flags() {
        let (mut heap, c) = heap_with_class();
        let refs: Vec<ObjRef> = (0..5).map(|_| heap.alloc(c, 0, 0).unwrap()).collect();
        heap.set_flag(refs[1], Flags::MARK).unwrap();
        heap.set_flag(refs[3], Flags::MARK).unwrap();
        heap.set_flag(refs[3], Flags::OLD).unwrap();
        let meta = heap.page_meta(0);
        assert_eq!(meta.flag_word(Flags::MARK), 0b01010);
        assert_eq!(meta.flag_word(Flags::OLD), 0b01000);
        assert_eq!(meta.live_mask(), 0b11111);
        assert_eq!(meta.handle(1), Some(refs[1]));
        assert_eq!(meta.handle(63), None);
    }

    // ---- space backends ------------------------------------------------

    #[test]
    fn paged_space_reports_geometry_addresses() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 0, 0).unwrap();
        let b = heap.alloc(c, 0, 0).unwrap();
        assert_eq!(heap.space_kind(), SpaceKind::Paged);
        let space = heap.space();
        assert_eq!(space.kind(), SpaceKind::Paged);
        let addr_a = space.address_of(a.index()).unwrap();
        let addr_b = space.address_of(b.index()).unwrap();
        assert_eq!(addr_b - addr_a, 4 * 8, "adjacent class-4 slots");
        assert_eq!(space.flips(), 0);
        heap.free(b).unwrap();
        assert!(heap.space().address_of(b.index()).is_none());
        assert!(heap.verify().is_empty());
    }

    #[test]
    fn semispace_heap_tracks_alloc_and_free() {
        let mut heap = Heap::with_space(SpaceKind::Semispace);
        let c = heap.register_class("T", &["a"]);
        let a = heap.alloc(c, 1, 0).unwrap();
        let b = heap.alloc(c, 0, 3).unwrap();
        assert_eq!(heap.space_kind(), SpaceKind::Semispace);
        let addr_a = heap.space().address_of(a.index()).unwrap();
        let addr_b = heap.space().address_of(b.index()).unwrap();
        assert!(addr_b > addr_a, "bump order in from-space");
        assert!(heap.verify().is_empty());
        heap.free(b).unwrap();
        assert!(heap.space().address_of(b.index()).is_none());
        assert!(heap.verify().is_empty());
    }

    #[test]
    fn evacuation_relocates_survivors() {
        let mut heap = Heap::with_space(SpaceKind::Semispace);
        let c = heap.register_class("T", &[]);
        let keep = heap.alloc(c, 0, 0).unwrap();
        let drop = heap.alloc(c, 0, 0).unwrap();
        let before = heap.space().address_of(keep.index()).unwrap();
        heap.evac_begin();
        let fwd = heap.evac_forward(keep).unwrap();
        assert_eq!(heap.evac_forwarding_of(keep), Some(fwd));
        assert_eq!(heap.evac_forwarding_of(drop), None);
        heap.free(drop).unwrap();
        heap.evac_finish();
        let after = heap.space().address_of(keep.index()).unwrap();
        assert_eq!(after, fwd);
        assert_ne!(before, after, "survivor relocated");
        assert_eq!(heap.space().flips(), 1);
        assert!(heap.space().address_of(drop.index()).is_none());
        assert!(heap.verify().is_empty(), "{:?}", heap.verify());
    }

    #[test]
    #[should_panic(expected = "semispace backend")]
    fn evacuating_a_paged_heap_panics() {
        let mut heap = Heap::new();
        heap.evac_begin();
    }
}
