//! The non-moving free-list heap.

use crate::{ClassId, Flags, HeapError, HeapStats, ObjRef, Object, SemiSpaces, TypeRegistry};

#[derive(Debug)]
enum SlotState {
    Free { next_free: Option<u32> },
    Occupied(Object),
}

#[derive(Debug)]
struct Slot {
    gen: u32,
    state: SlotState,
}

/// A non-moving heap of [`Object`]s with a free list of reclaimed slots.
///
/// This is the substrate the collector and assertion engine operate on —
/// the analogue of Jikes RVM's MarkSweep space. The heap itself is
/// unbounded; the VM layer imposes the budget and triggers collections
/// (§3.1.1 runs every benchmark at a fixed heap of 2× its minimum).
///
/// Slot indices are stable (non-moving collector), and every slot carries a
/// generation that is bumped on [`Heap::free`], so stale [`ObjRef`]s are
/// detected rather than resolving to a recycled object.
///
/// # Example
///
/// ```
/// use gca_heap::{Flags, Heap};
///
/// # fn main() -> Result<(), gca_heap::HeapError> {
/// let mut heap = Heap::new();
/// let c = heap.register_class("Pair", &["left", "right"]);
/// let a = heap.alloc(c, 2, 0)?;
/// let b = heap.alloc(c, 2, 0)?;
/// heap.set_ref_field(a, 0, b)?;
/// heap.set_flag(b, Flags::UNSHARED)?;
/// assert!(heap.has_flag(b, Flags::UNSHARED)?);
///
/// let freed = heap.free(b)?;
/// assert!(freed > 0);
/// assert!(!heap.is_valid(b)); // stale handle detected
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Heap {
    slots: Vec<Slot>,
    free_head: Option<u32>,
    registry: TypeRegistry,
    occupied_words: usize,
    live_objects: usize,
    stats: HeapStats,
    /// Semispace address bookkeeping, present only when a copying collector
    /// drives this heap (see [`Heap::enable_copy_spaces`]).
    copy_spaces: Option<Box<SemiSpaces>>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Registers a class in the heap's type registry (idempotent by name).
    pub fn register_class(&mut self, name: &str, field_names: &[&str]) -> ClassId {
        self.registry.register(name, field_names)
    }

    /// The type registry.
    pub fn registry(&self) -> &TypeRegistry {
        &self.registry
    }

    /// Mutable access to the type registry.
    pub fn registry_mut(&mut self) -> &mut TypeRegistry {
        &mut self.registry
    }

    /// Convenience: the name of a class.
    pub fn class_name(&self, class: ClassId) -> &str {
        self.registry.name(class)
    }

    /// Allocates an object of `class` with `nrefs` reference fields and a
    /// `data_words`-word payload. All reference fields start null, all
    /// flags clear.
    ///
    /// The heap never refuses an allocation — budget enforcement is the VM
    /// layer's job, so the collector can always allocate its own metadata.
    ///
    /// # Errors
    ///
    /// Currently infallible, but returns `Result` so the signature matches
    /// the budgeted VM-layer allocator that wraps it.
    pub fn alloc(
        &mut self,
        class: ClassId,
        nrefs: usize,
        data_words: usize,
    ) -> Result<ObjRef, HeapError> {
        let object = Object::new(class, nrefs, data_words);
        let words = object.size_words();
        let r = match self.free_head {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                let next = match slot.state {
                    SlotState::Free { next_free } => next_free,
                    SlotState::Occupied(_) => unreachable!("free list points at occupied slot"),
                };
                self.free_head = next;
                slot.state = SlotState::Occupied(object);
                ObjRef::from_parts(index, slot.gen)
            }
            None => {
                let index = self.slots.len() as u32;
                self.slots.push(Slot {
                    gen: 0,
                    state: SlotState::Occupied(object),
                });
                ObjRef::from_parts(index, 0)
            }
        };
        if let Some(spaces) = &mut self.copy_spaces {
            spaces.note_alloc(r.index() as usize, words);
        }
        self.occupied_words += words;
        self.live_objects += 1;
        self.stats.allocations += 1;
        self.stats.allocated_words += words as u64;
        if self.occupied_words > self.stats.peak_occupied_words {
            self.stats.peak_occupied_words = self.occupied_words;
        }
        Ok(r)
    }

    /// Frees the object behind `r`, returning its size in words. The slot's
    /// generation is bumped so `r` (and any copy of it) becomes stale.
    ///
    /// # Errors
    ///
    /// [`HeapError::NullRef`], [`HeapError::InvalidRef`] or
    /// [`HeapError::StaleRef`] if `r` does not name a live object.
    pub fn free(&mut self, r: ObjRef) -> Result<usize, HeapError> {
        self.check(r)?;
        let index = r.index() as usize;
        let slot = &mut self.slots[index];
        let words = match &slot.state {
            SlotState::Occupied(obj) => obj.size_words(),
            SlotState::Free { .. } => unreachable!("check() verified occupancy"),
        };
        slot.gen = slot.gen.wrapping_add(1);
        slot.state = SlotState::Free {
            next_free: self.free_head,
        };
        self.free_head = Some(r.index());
        if let Some(spaces) = &mut self.copy_spaces {
            spaces.note_free(index);
        }
        self.occupied_words -= words;
        self.live_objects -= 1;
        self.stats.frees += 1;
        self.stats.freed_words += words as u64;
        Ok(words)
    }

    #[inline]
    fn check(&self, r: ObjRef) -> Result<(), HeapError> {
        if r.is_null() {
            return Err(HeapError::NullRef);
        }
        match self.slots.get(r.index() as usize) {
            None => Err(HeapError::InvalidRef(r)),
            Some(slot) => match slot.state {
                SlotState::Occupied(_) if slot.gen == r.generation() => Ok(()),
                _ => Err(HeapError::StaleRef(r)),
            },
        }
    }

    /// Returns `true` if `r` names a live object.
    #[inline]
    pub fn is_valid(&self, r: ObjRef) -> bool {
        self.check(r).is_ok()
    }

    /// Borrows the object behind `r`.
    ///
    /// # Errors
    ///
    /// See [`Heap::free`] for the reference-validity errors.
    #[inline]
    pub fn get(&self, r: ObjRef) -> Result<&Object, HeapError> {
        self.check(r)?;
        match &self.slots[r.index() as usize].state {
            SlotState::Occupied(obj) => Ok(obj),
            SlotState::Free { .. } => unreachable!(),
        }
    }

    /// Mutably borrows the object behind `r`.
    ///
    /// # Errors
    ///
    /// See [`Heap::free`] for the reference-validity errors.
    #[inline]
    pub fn get_mut(&mut self, r: ObjRef) -> Result<&mut Object, HeapError> {
        self.check(r)?;
        match &mut self.slots[r.index() as usize].state {
            SlotState::Occupied(obj) => Ok(obj),
            SlotState::Free { .. } => unreachable!(),
        }
    }

    /// The class of the object behind `r`.
    ///
    /// # Errors
    ///
    /// See [`Heap::free`] for the reference-validity errors.
    pub fn class_of(&self, r: ObjRef) -> Result<ClassId, HeapError> {
        Ok(self.get(r)?.class())
    }

    /// Reads reference field `field` of `obj`.
    ///
    /// # Errors
    ///
    /// Reference-validity errors, or [`HeapError::FieldOutOfBounds`].
    pub fn ref_field(&self, obj: ObjRef, field: usize) -> Result<ObjRef, HeapError> {
        let o = self.get(obj)?;
        o.refs()
            .get(field)
            .copied()
            .ok_or(HeapError::FieldOutOfBounds {
                object: obj,
                field,
                len: o.ref_count(),
            })
    }

    /// Writes reference field `field` of `obj`, returning the old value.
    /// `value` may be [`ObjRef::NULL`]; a non-null `value` must be live.
    ///
    /// # Errors
    ///
    /// Reference-validity errors for `obj` or a non-null `value`, or
    /// [`HeapError::FieldOutOfBounds`].
    pub fn set_ref_field(
        &mut self,
        obj: ObjRef,
        field: usize,
        value: ObjRef,
    ) -> Result<ObjRef, HeapError> {
        if value.is_some() {
            self.check(value)?;
        }
        let o = self.get_mut(obj)?;
        let len = o.ref_count();
        let slot = o
            .refs_mut()
            .get_mut(field)
            .ok_or(HeapError::FieldOutOfBounds {
                object: obj,
                field,
                len,
            })?;
        Ok(std::mem::replace(slot, value))
    }

    /// Reads data word `index` of `obj`.
    ///
    /// # Errors
    ///
    /// Reference-validity errors, or [`HeapError::FieldOutOfBounds`] if
    /// `index` exceeds the payload.
    pub fn data_word(&self, obj: ObjRef, index: usize) -> Result<u64, HeapError> {
        let o = self.get(obj)?;
        o.data()
            .get(index)
            .copied()
            .ok_or(HeapError::FieldOutOfBounds {
                object: obj,
                field: index,
                len: o.data_words(),
            })
    }

    /// Writes data word `index` of `obj`.
    ///
    /// # Errors
    ///
    /// Reference-validity errors, or [`HeapError::FieldOutOfBounds`] if
    /// `index` exceeds the payload.
    pub fn set_data_word(
        &mut self,
        obj: ObjRef,
        index: usize,
        value: u64,
    ) -> Result<(), HeapError> {
        let o = self.get_mut(obj)?;
        let len = o.data_words();
        match o.data_mut().get_mut(index) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(HeapError::FieldOutOfBounds {
                object: obj,
                field: index,
                len,
            }),
        }
    }

    /// Sets flag bits on the object behind `r`. Takes `&self`: flags are
    /// atomic so tracer workers can mark through a shared heap borrow.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn set_flag(&self, r: ObjRef, bits: Flags) -> Result<(), HeapError> {
        self.get(r)?.set_flags(bits);
        Ok(())
    }

    /// Atomically sets flag bits on the object behind `r`, returning the
    /// flags held *before* the update (see
    /// [`Object::fetch_set_flags`][crate::Object::fetch_set_flags]).
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn fetch_set_flag(&self, r: ObjRef, bits: Flags) -> Result<Flags, HeapError> {
        Ok(self.get(r)?.fetch_set_flags(bits))
    }

    /// Clears flag bits on the object behind `r`.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn clear_flag(&self, r: ObjRef, bits: Flags) -> Result<(), HeapError> {
        self.get(r)?.clear_flags(bits);
        Ok(())
    }

    /// Tests flag bits on the object behind `r`.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn has_flag(&self, r: ObjRef, bits: Flags) -> Result<bool, HeapError> {
        Ok(self.get(r)?.has_flags(bits))
    }

    /// Number of live objects.
    #[inline]
    pub fn live_objects(&self) -> usize {
        self.live_objects
    }

    /// Words currently occupied by live objects.
    #[inline]
    pub fn occupied_words(&self) -> usize {
        self.occupied_words
    }

    /// Number of slots (live + free); the collector's sweep iterates slot
    /// indices `0..slot_count()`.
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The live object in slot `index`, if any, as a `(handle, object)`
    /// pair. Used by the sweep phase and the heuristic detectors to walk
    /// the whole heap by index.
    #[inline]
    pub fn entry(&self, index: usize) -> Option<(ObjRef, &Object)> {
        match self.slots.get(index) {
            Some(slot) => match &slot.state {
                SlotState::Occupied(obj) => Some((ObjRef::from_parts(index as u32, slot.gen), obj)),
                SlotState::Free { .. } => None,
            },
            None => None,
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &HeapStats {
        &self.stats
    }

    /// Verifies the heap's internal invariants, returning a list of
    /// human-readable violations (empty = healthy):
    ///
    /// * the free list is acyclic, covers exactly the free slots, and
    ///   only contains free slots;
    /// * `live_objects` / `occupied_words` match a full recount;
    /// * every non-null reference field points at a live object (the
    ///   collector never leaves dangling edges behind).
    ///
    /// Intended for tests and debugging (full heap walk).
    pub fn verify(&self) -> Vec<String> {
        let mut problems = Vec::new();

        // Free-list walk with a visited set (detects cycles/corruption).
        let mut free_from_list = vec![false; self.slots.len()];
        let mut cursor = self.free_head;
        let mut steps = 0usize;
        while let Some(i) = cursor {
            if steps > self.slots.len() {
                problems.push("free list is cyclic".to_owned());
                break;
            }
            steps += 1;
            match self.slots.get(i as usize) {
                Some(Slot {
                    state: SlotState::Free { next_free },
                    ..
                }) => {
                    if free_from_list[i as usize] {
                        problems.push(format!("slot {i} appears twice in the free list"));
                        break;
                    }
                    free_from_list[i as usize] = true;
                    cursor = *next_free;
                }
                Some(_) => {
                    problems.push(format!("free list points at occupied slot {i}"));
                    break;
                }
                None => {
                    problems.push(format!("free list points outside the heap ({i})"));
                    break;
                }
            }
        }

        let mut live = 0usize;
        let mut words = 0usize;
        for (i, slot) in self.slots.iter().enumerate() {
            match &slot.state {
                SlotState::Free { .. } => {
                    if !free_from_list[i] && problems.is_empty() {
                        problems.push(format!("free slot {i} missing from the free list"));
                    }
                }
                SlotState::Occupied(obj) => {
                    if free_from_list[i] {
                        problems.push(format!("occupied slot {i} is on the free list"));
                    }
                    live += 1;
                    words += obj.size_words();
                    for (f, &r) in obj.refs().iter().enumerate() {
                        if r.is_some() && !self.is_valid(r) {
                            problems.push(format!("dangling reference: slot {i} field {f} -> {r}"));
                        }
                    }
                }
            }
        }
        if live != self.live_objects {
            problems.push(format!(
                "live-object count drift: counted {live}, cached {}",
                self.live_objects
            ));
        }
        if words != self.occupied_words {
            problems.push(format!(
                "occupied-words drift: counted {words}, cached {}",
                self.occupied_words
            ));
        }
        problems
    }

    /// Enables semispace address bookkeeping for a copying collector
    /// backend. Idempotent. Any objects already live are retrofitted with
    /// from-space addresses in slot order; from then on [`Heap::alloc`] and
    /// [`Heap::free`] maintain the address space automatically, and a
    /// copying collector drives evacuation through
    /// [`Heap::take_copy_spaces`] / [`Heap::put_copy_spaces`].
    pub fn enable_copy_spaces(&mut self) {
        if self.copy_spaces.is_some() {
            return;
        }
        let mut spaces = Box::new(SemiSpaces::new());
        for i in 0..self.slots.len() {
            if let Some((_, obj)) = self.entry(i) {
                spaces.note_alloc(i, obj.size_words());
            }
        }
        self.copy_spaces = Some(spaces);
    }

    /// The semispace bookkeeping, if enabled.
    pub fn copy_spaces(&self) -> Option<&SemiSpaces> {
        self.copy_spaces.as_deref()
    }

    /// Detaches the semispace bookkeeping for the duration of a collection
    /// cycle so the collector can evacuate while still borrowing the heap
    /// mutably. While detached, [`Heap::free`] no-ops on the address space;
    /// that is sound because [`SemiSpaces::finish_gc`] rebuilds residency
    /// for *every* slot from the forwarding words. Pair with
    /// [`Heap::put_copy_spaces`].
    pub fn take_copy_spaces(&mut self) -> Option<Box<SemiSpaces>> {
        self.copy_spaces.take()
    }

    /// Reattaches the semispace bookkeeping after a collection cycle.
    pub fn put_copy_spaces(&mut self, spaces: Box<SemiSpaces>) {
        debug_assert!(self.copy_spaces.is_none(), "copy spaces already attached");
        self.copy_spaces = Some(spaces);
    }

    /// Checks the semispace address invariants against the current live
    /// set, returning human-readable problems (empty = healthy, or when
    /// copy spaces are not enabled).
    pub fn verify_copy_spaces(&self) -> Vec<String> {
        match &self.copy_spaces {
            None => Vec::new(),
            Some(spaces) => {
                let resident: Vec<(usize, usize)> = self
                    .iter()
                    .map(|(r, o)| (r.index() as usize, o.size_words()))
                    .collect();
                spaces.verify(&resident)
            }
        }
    }

    /// Iterates over all live objects.
    pub fn iter(&self) -> LiveIter<'_> {
        LiveIter {
            heap: self,
            index: 0,
        }
    }
}

/// Iterator over the live objects of a [`Heap`], yielded as
/// `(handle, object)` pairs in slot order. Produced by [`Heap::iter`].
#[derive(Debug)]
pub struct LiveIter<'a> {
    heap: &'a Heap,
    index: usize,
}

impl<'a> Iterator for LiveIter<'a> {
    type Item = (ObjRef, &'a Object);

    fn next(&mut self) -> Option<Self::Item> {
        while self.index < self.heap.slot_count() {
            let i = self.index;
            self.index += 1;
            if let Some(pair) = self.heap.entry(i) {
                return Some(pair);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap_with_class() -> (Heap, ClassId) {
        let mut heap = Heap::new();
        let c = heap.register_class("T", &["a", "b"]);
        (heap, c)
    }

    #[test]
    fn alloc_get_roundtrip() {
        let (mut heap, c) = heap_with_class();
        let r = heap.alloc(c, 2, 3).unwrap();
        let o = heap.get(r).unwrap();
        assert_eq!(o.class(), c);
        assert_eq!(o.ref_count(), 2);
        assert_eq!(o.data_words(), 3);
        assert_eq!(heap.live_objects(), 1);
        assert_eq!(heap.occupied_words(), o.size_words());
    }

    #[test]
    fn free_makes_handle_stale() {
        let (mut heap, c) = heap_with_class();
        let r = heap.alloc(c, 0, 0).unwrap();
        heap.free(r).unwrap();
        assert!(!heap.is_valid(r));
        assert_eq!(heap.get(r).err(), Some(HeapError::StaleRef(r)));
        assert_eq!(heap.free(r), Err(HeapError::StaleRef(r)));
        assert_eq!(heap.live_objects(), 0);
        assert_eq!(heap.occupied_words(), 0);
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 0, 0).unwrap();
        heap.free(a).unwrap();
        let b = heap.alloc(c, 0, 0).unwrap();
        assert_eq!(a.index(), b.index(), "slot should be reused");
        assert_ne!(a.generation(), b.generation());
        assert!(!heap.is_valid(a));
        assert!(heap.is_valid(b));
    }

    #[test]
    fn field_read_write() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 2, 0).unwrap();
        let b = heap.alloc(c, 0, 0).unwrap();
        assert_eq!(heap.ref_field(a, 0).unwrap(), ObjRef::NULL);
        let old = heap.set_ref_field(a, 0, b).unwrap();
        assert_eq!(old, ObjRef::NULL);
        assert_eq!(heap.ref_field(a, 0).unwrap(), b);
        let old = heap.set_ref_field(a, 0, ObjRef::NULL).unwrap();
        assert_eq!(old, b);
    }

    #[test]
    fn field_bounds_checked() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 1, 0).unwrap();
        assert!(matches!(
            heap.ref_field(a, 1),
            Err(HeapError::FieldOutOfBounds {
                field: 1,
                len: 1,
                ..
            })
        ));
        assert!(matches!(
            heap.set_ref_field(a, 5, ObjRef::NULL),
            Err(HeapError::FieldOutOfBounds {
                field: 5,
                len: 1,
                ..
            })
        ));
    }

    #[test]
    fn writing_stale_value_is_error() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 1, 0).unwrap();
        let b = heap.alloc(c, 0, 0).unwrap();
        heap.free(b).unwrap();
        assert_eq!(heap.set_ref_field(a, 0, b), Err(HeapError::StaleRef(b)));
    }

    #[test]
    fn null_and_invalid_refs() {
        let (heap, _) = heap_with_class();
        assert_eq!(heap.get(ObjRef::NULL).err(), Some(HeapError::NullRef));
        let bogus = ObjRef::from_parts(999, 0);
        assert_eq!(heap.get(bogus).err(), Some(HeapError::InvalidRef(bogus)));
    }

    #[test]
    fn data_words_read_write() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 0, 3).unwrap();
        assert_eq!(heap.data_word(a, 0).unwrap(), 0, "zero-initialized");
        heap.set_data_word(a, 2, 42).unwrap();
        assert_eq!(heap.data_word(a, 2).unwrap(), 42);
        assert!(matches!(
            heap.data_word(a, 3),
            Err(HeapError::FieldOutOfBounds {
                field: 3,
                len: 3,
                ..
            })
        ));
        assert!(matches!(
            heap.set_data_word(a, 9, 1),
            Err(HeapError::FieldOutOfBounds {
                field: 9,
                len: 3,
                ..
            })
        ));
    }

    #[test]
    fn flags_via_heap() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 0, 0).unwrap();
        assert!(!heap.has_flag(a, Flags::DEAD).unwrap());
        heap.set_flag(a, Flags::DEAD).unwrap();
        assert!(heap.has_flag(a, Flags::DEAD).unwrap());
        heap.clear_flag(a, Flags::DEAD).unwrap();
        assert!(!heap.has_flag(a, Flags::DEAD).unwrap());
    }

    #[test]
    fn iter_yields_live_only() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 0, 0).unwrap();
        let b = heap.alloc(c, 0, 0).unwrap();
        let d = heap.alloc(c, 0, 0).unwrap();
        heap.free(b).unwrap();
        let live: Vec<ObjRef> = heap.iter().map(|(r, _)| r).collect();
        assert_eq!(live, vec![a, d]);
    }

    #[test]
    fn entry_by_index() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 0, 0).unwrap();
        assert_eq!(heap.entry(0).map(|(r, _)| r), Some(a));
        heap.free(a).unwrap();
        assert!(heap.entry(0).is_none());
        assert!(heap.entry(42).is_none());
    }

    #[test]
    fn stats_accumulate() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 2, 3).unwrap();
        let words = heap.get(a).unwrap().size_words();
        heap.free(a).unwrap();
        let b = heap.alloc(c, 0, 0).unwrap();
        let stats = heap.stats();
        assert_eq!(stats.allocations, 2);
        assert_eq!(stats.frees, 1);
        assert_eq!(stats.freed_words, words as u64);
        assert_eq!(stats.peak_occupied_words, words);
        assert!(heap.is_valid(b));
    }

    #[test]
    fn verify_clean_heap() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 2, 1).unwrap();
        let b = heap.alloc(c, 2, 0).unwrap();
        heap.set_ref_field(a, 0, b).unwrap();
        heap.free(b).unwrap();
        // `a` now has a dangling field — exactly what verify flags (the
        // collector never does this; a manual free can).
        let problems = heap.verify();
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("dangling"));
        heap.set_ref_field(a, 0, ObjRef::NULL).unwrap();
        assert!(heap.verify().is_empty());
    }

    #[test]
    fn verify_after_churn() {
        let (mut heap, c) = heap_with_class();
        let mut live = Vec::new();
        for i in 0..50 {
            let o = heap.alloc(c, 1, i % 5).unwrap();
            live.push(o);
            if i % 3 == 0 {
                let victim = live.remove(i % live.len());
                // Clear any fields pointing at the victim first.
                for &l in &live {
                    if heap.ref_field(l, 0).unwrap() == victim {
                        heap.set_ref_field(l, 0, ObjRef::NULL).unwrap();
                    }
                }
                heap.free(victim).unwrap();
            }
        }
        assert!(heap.verify().is_empty(), "{:?}", heap.verify());
    }

    #[test]
    fn copy_spaces_track_alloc_and_free() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 1, 0).unwrap();
        heap.enable_copy_spaces();
        let b = heap.alloc(c, 0, 3).unwrap();
        let spaces = heap.copy_spaces().unwrap();
        // `a` was retrofitted by enable_copy_spaces; `b` was bump-allocated
        // after it.
        let addr_a = spaces.address_of(a.index() as usize).unwrap();
        let addr_b = spaces.address_of(b.index() as usize).unwrap();
        assert!(addr_b > addr_a);
        assert!(heap.verify_copy_spaces().is_empty());
        heap.free(b).unwrap();
        assert!(heap
            .copy_spaces()
            .unwrap()
            .address_of(b.index() as usize)
            .is_none());
        assert!(heap.verify_copy_spaces().is_empty());
    }

    #[test]
    fn enable_copy_spaces_is_idempotent() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 0, 0).unwrap();
        heap.enable_copy_spaces();
        let before = heap.copy_spaces().unwrap().address_of(a.index() as usize);
        heap.enable_copy_spaces();
        let after = heap.copy_spaces().unwrap().address_of(a.index() as usize);
        assert_eq!(before, after);
    }

    #[test]
    fn take_put_copy_spaces_roundtrip() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 0, 0).unwrap();
        heap.enable_copy_spaces();
        let mut spaces = heap.take_copy_spaces().unwrap();
        assert!(heap.copy_spaces().is_none());
        // Frees while detached are squared away by the next finish_gc.
        heap.free(a).unwrap();
        spaces.begin_gc();
        spaces.finish_gc();
        heap.put_copy_spaces(spaces);
        assert!(heap.verify_copy_spaces().is_empty());
    }

    #[test]
    fn free_list_reuses_lifo() {
        let (mut heap, c) = heap_with_class();
        let a = heap.alloc(c, 0, 0).unwrap();
        let b = heap.alloc(c, 0, 0).unwrap();
        heap.free(a).unwrap();
        heap.free(b).unwrap();
        // LIFO free list: b's slot first.
        let x = heap.alloc(c, 0, 0).unwrap();
        let y = heap.alloc(c, 0, 0).unwrap();
        assert_eq!(x.index(), b.index());
        assert_eq!(y.index(), a.index());
        assert_eq!(heap.slot_count(), 2);
    }
}
