//! Big-Bag-of-Pages (BiBOP) substrate: size-class pages with bump-pointer
//! allocation, a large-object space, and per-page side bitmaps.
//!
//! The heap is carved into fixed-arity **pages** of [`PAGE_SLOTS`] object
//! slots each. Every page is dedicated to one size class (all slots the
//! same size in words), so an object index decomposes in O(1) into
//! `(page, slot)` by shift/mask and all per-object metadata — liveness,
//! slot generations, and the nine [`Flags`] bit-planes — lives in dense
//! per-page side tables instead of object headers. This is the classic
//! BiBOP discipline: the *page* knows the size and metadata of everything
//! inside it, so the mark loop and sweep operate on 64-slot bitmap words
//! rather than chasing per-object headers.
//!
//! Objects larger than [`LOS_THRESHOLD`] words go to the **large object
//! space** (LOS): one object per page, at slot 0, with the page's slot
//! size set to the object's exact footprint.
//!
//! Allocation is deterministic: each size class keeps a LIFO stack of
//! pages with free capacity; within a page, fresh slots are bump-pointer
//! allocated in slot order, and reclaimed slots are reused
//! lowest-index-first once the bump pointer exhausts the page. Two runs
//! performing the same alloc/free sequence therefore mint identical
//! indices — the property the cross-engine differential suites rely on.

use std::sync::atomic::{AtomicU16, AtomicU64, Ordering};

use crate::{Flags, ObjRef, Object};

/// Object slots per page. Chosen to match the width of one bitmap word so
/// every per-page side bitmap (liveness, each flag plane) is a single
/// `u64`.
pub const PAGE_SLOTS: usize = 64;

/// log2 of [`PAGE_SLOTS`]: object index `i` lives in page `i >> PAGE_SHIFT`
/// at slot `i & (PAGE_SLOTS - 1)`.
pub const PAGE_SHIFT: u32 = 6;

/// The size classes, in words per slot. An object is binned into the
/// smallest class that fits its [`Object::size_words`] footprint; anything
/// above the last class goes to the large object space.
pub const SIZE_CLASSES: [usize; 7] = [4, 8, 16, 32, 64, 128, 256];

/// Largest footprint (in words) served by a size-class page; bigger
/// objects get a dedicated large-object page.
pub const LOS_THRESHOLD: usize = 256;

/// Number of [`Flags`] bits, and therefore of per-page flag bit-planes.
const FLAG_PLANES: usize = 9;

/// Simulated bytes per word for page base addresses.
const WORD_BYTES: u64 = 8;

/// Base address of the first page. Far below the semispace bases so paged
/// and semispace address ranges are visibly disjoint in debug output.
const FIRST_PAGE_BASE: u64 = 1 << 20;

/// Why a handle failed validation: the index lies outside the page table
/// entirely, or the slot exists but the generation/liveness check failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RefFault {
    /// Never-allocated address space.
    Invalid,
    /// Slot exists, but the handle's generation is out of date (or the
    /// slot is currently free).
    Stale,
}

/// Returns the size-class index for an object of `words` words, or `None`
/// if it belongs in the large object space.
#[inline]
pub(crate) fn size_class_index(words: usize) -> Option<usize> {
    SIZE_CLASSES.iter().position(|&c| words <= c)
}

/// One page: metadata word(s) plus the slot storage.
#[derive(Debug)]
pub(crate) struct Page {
    /// Slot size in words: the size class, or the exact object footprint
    /// for a large-object page.
    class_words: usize,
    /// Number of usable slots: [`PAGE_SLOTS`] for size-class pages, 1 for
    /// large-object pages.
    capacity: u32,
    /// Index into [`SIZE_CLASSES`], or `None` for a large-object page.
    class_index: Option<u8>,
    /// Base address of the page's slot storage.
    base: u64,
    /// Bump pointer: slots below `bump` have been allocated at least once.
    bump: u32,
    /// Bitmap of reclaimed slots available for reuse.
    free_mask: u64,
    /// Bitmap of live (occupied) slots.
    live_mask: u64,
    /// Per-slot generation counters, bumped on free (stale-handle checks).
    /// Inline (not boxed) so handle validation and free touch the same
    /// cache neighborhood as the masks instead of chasing a side pointer;
    /// a large-object page just uses entry 0.
    gens: [u32; PAGE_SLOTS],
    /// Slot storage.
    slots: Box<[Option<Object>]>,
    /// Side bitmaps: plane `k` holds bit `k` of every slot's [`Flags`].
    /// Atomic so parallel tracer workers can mark through `&Heap`.
    planes: [AtomicU64; FLAG_PLANES],
    /// Occupancy hint: bit `k` set means plane `k` *may* hold bits. A
    /// conservative superset (shared-path clears leave it stale), tightened
    /// on `clear_all_flags`, so the free path skips planes that were never
    /// touched instead of read-modify-writing all nine.
    plane_hint: AtomicU16,
    /// Whether this page is on its class's avail stack (or the LOS free
    /// list), to keep the stacks duplicate-free.
    in_avail: bool,
}

impl Page {
    fn new(class_words: usize, capacity: u32, class_index: Option<u8>, base: u64) -> Page {
        Page {
            class_words,
            capacity,
            class_index,
            base,
            bump: 0,
            free_mask: 0,
            live_mask: 0,
            gens: [0; PAGE_SLOTS],
            slots: std::iter::repeat_with(|| None)
                .take(capacity as usize)
                .collect(),
            planes: std::array::from_fn(|_| AtomicU64::new(0)),
            plane_hint: AtomicU16::new(0),
            in_avail: false,
        }
    }

    #[inline]
    fn slot_bit(slot: usize) -> u64 {
        1u64 << slot
    }

    /// Composes the [`Flags`] of `slot` from the bit-planes.
    fn compose_flags(&self, slot: usize) -> Flags {
        let mut bits = 0u16;
        for (k, plane) in self.planes.iter().enumerate() {
            if plane.load(Ordering::Relaxed) >> slot & 1 != 0 {
                bits |= 1 << k;
            }
        }
        Flags::from_bits(bits)
    }

    /// Records that the planes named in `raw` now (may) hold bits. The
    /// load-then-or avoids the RMW on the common already-hinted path.
    fn hint_planes(&self, raw: u16) {
        if self.plane_hint.load(Ordering::Relaxed) & raw != raw {
            self.plane_hint.fetch_or(raw, Ordering::Relaxed);
        }
    }

    /// Sets `bits` on `slot` (plane-wise `fetch_or`).
    fn set_flags(&self, slot: usize, bits: Flags) {
        let raw = bits.bits();
        self.hint_planes(raw);
        for (k, plane) in self.planes.iter().enumerate() {
            if raw >> k & 1 != 0 {
                plane.fetch_or(Self::slot_bit(slot), Ordering::Relaxed);
            }
        }
    }

    /// Sets `bits` on `slot`, returning the flags held before. For the
    /// planes being set, the previous value comes from the `fetch_or`
    /// itself, so concurrent setters of the same bit see exactly one
    /// winner (the parallel tracer's mark-claim); other planes are plain
    /// loads, which is sound because collection is stop-the-world and
    /// only the claimed bits are concurrently mutated.
    fn fetch_set_flags(&self, slot: usize, bits: Flags) -> Flags {
        let raw = bits.bits();
        self.hint_planes(raw);
        let mut prev = 0u16;
        for (k, plane) in self.planes.iter().enumerate() {
            let word = if raw >> k & 1 != 0 {
                plane.fetch_or(Self::slot_bit(slot), Ordering::Relaxed)
            } else {
                plane.load(Ordering::Relaxed)
            };
            if word >> slot & 1 != 0 {
                prev |= 1 << k;
            }
        }
        Flags::from_bits(prev)
    }

    /// Clears `bits` on `slot` (plane-wise `fetch_and`).
    fn clear_flags(&self, slot: usize, bits: Flags) {
        let raw = bits.bits();
        for (k, plane) in self.planes.iter().enumerate() {
            if raw >> k & 1 != 0 {
                plane.fetch_and(!Self::slot_bit(slot), Ordering::Relaxed);
            }
        }
    }

    /// Tests whether all of `bits` are set on `slot`.
    fn has_flags(&self, slot: usize, bits: Flags) -> bool {
        let raw = bits.bits();
        for (k, plane) in self.planes.iter().enumerate() {
            if raw >> k & 1 != 0 && plane.load(Ordering::Relaxed) >> slot & 1 == 0 {
                return false;
            }
        }
        true
    }

    /// Clears every plane's bit for `slot` (object freed). Takes `&mut
    /// self` so the plane clears compile to plain stores instead of atomic
    /// RMWs — `free` always holds exclusive access, and this is the
    /// allocation-churn hot path. Only planes named by the occupancy hint
    /// are visited (a flag-free page touches nothing but the hint word),
    /// and the hint is re-tightened from what remains.
    fn clear_all_flags(&mut self, slot: usize) {
        let hint = *self.plane_hint.get_mut();
        if hint == 0 {
            return;
        }
        let keep = !Self::slot_bit(slot);
        let mut remaining = 0u16;
        for k in 0..FLAG_PLANES {
            if hint >> k & 1 != 0 {
                let plane = self.planes[k].get_mut();
                *plane &= keep;
                if *plane != 0 {
                    remaining |= 1 << k;
                }
            }
        }
        *self.plane_hint.get_mut() = remaining;
    }

    /// Word-wise clear: removes the `mask` slots' bits from every plane
    /// named in `bits`. One atomic op per plane for a whole page — the
    /// sweep's bulk `PER_GC` clear.
    fn clear_planes_masked(&self, bits: Flags, mask: u64) {
        let raw = bits.bits();
        for (k, plane) in self.planes.iter().enumerate() {
            if raw >> k & 1 != 0 {
                plane.fetch_and(!mask, Ordering::Relaxed);
            }
        }
    }

    /// The bitmap word of one single-bit flag plane.
    fn plane_word(&self, bit: Flags) -> u64 {
        let raw = bit.bits();
        assert!(
            raw.count_ones() == 1,
            "plane_word wants exactly one flag bit, got {bit:?}"
        );
        self.planes[raw.trailing_zeros() as usize].load(Ordering::Relaxed)
    }

    #[inline]
    fn has_space(&self) -> bool {
        self.bump < self.capacity || self.free_mask != 0
    }

    /// Address of `slot` inside this page.
    #[inline]
    fn slot_address(&self, slot: usize) -> u64 {
        self.base + slot as u64 * self.class_words as u64 * WORD_BYTES
    }
}

/// Read-only view of one page's metadata: size class, bump pointer,
/// liveness bitmap, and flag bit-planes. The facade the collector engines
/// use for word-wise mark/sweep loops instead of per-object probing.
///
/// Obtained from [`Heap::page_meta`](crate::Heap::page_meta).
#[derive(Debug, Clone, Copy)]
pub struct PageMeta<'a> {
    page: &'a Page,
    pid: u32,
}

impl<'a> PageMeta<'a> {
    pub(crate) fn new(page: &'a Page, pid: u32) -> PageMeta<'a> {
        PageMeta { page, pid }
    }

    /// The page id; object index = `id * PAGE_SLOTS + slot`.
    #[inline]
    pub fn id(&self) -> u32 {
        self.pid
    }

    /// Slot size in words (the size class, or the exact footprint for a
    /// large-object page).
    #[inline]
    pub fn slot_words(&self) -> usize {
        self.page.class_words
    }

    /// Usable slots in this page (1 for a large-object page).
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.page.capacity
    }

    /// Whether this is a large-object page.
    #[inline]
    pub fn is_los(&self) -> bool {
        self.page.class_index.is_none()
    }

    /// Base address of the page's slot storage.
    #[inline]
    pub fn base_address(&self) -> u64 {
        self.page.base
    }

    /// Bump pointer: slots below it have been allocated at least once.
    #[inline]
    pub fn bump(&self) -> u32 {
        self.page.bump
    }

    /// Bitmap of live slots.
    #[inline]
    pub fn live_mask(&self) -> u64 {
        self.page.live_mask
    }

    /// Bitmap of reclaimed slots awaiting reuse.
    #[inline]
    pub fn free_mask(&self) -> u64 {
        self.page.free_mask
    }

    /// The side-bitmap word of one single-bit flag (e.g. `Flags::MARK`):
    /// bit `s` is the flag of slot `s`. Panics if `bit` has more or fewer
    /// than one bit set.
    #[inline]
    pub fn flag_word(&self, bit: Flags) -> u64 {
        self.page.plane_word(bit)
    }

    /// The live handle stored in `slot`, if the slot is occupied.
    pub fn handle(&self, slot: usize) -> Option<ObjRef> {
        if slot < self.page.capacity as usize && self.page.live_mask >> slot & 1 != 0 {
            Some(ObjRef::from_parts(
                self.pid * PAGE_SLOTS as u32 + slot as u32,
                self.page.gens[slot],
            ))
        } else {
            None
        }
    }
}

/// The BiBOP page table: object storage for every heap backend, and the
/// non-moving paged space in its own right (it implements
/// [`HeapSpace`](crate::HeapSpace) with page-geometry addresses).
///
/// Objects always live in the page table — even under the semispace
/// copying backend, which only re-maps their *addresses*. That is what
/// keeps [`ObjRef`] handles relocation-stable.
#[derive(Debug)]
pub struct PageTable {
    pages: Vec<Page>,
    /// Per-size-class LIFO stacks of pages with free capacity.
    avail: [Vec<u32>; SIZE_CLASSES.len()],
    /// LIFO stack of vacant large-object pages.
    los_free: Vec<u32>,
    /// Monotonic cursor handing out disjoint page base addresses.
    next_base: u64,
    live_objects: usize,
    occupied_words: usize,
}

impl Default for PageTable {
    fn default() -> PageTable {
        PageTable::new()
    }
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> PageTable {
        PageTable {
            pages: Vec::new(),
            avail: Default::default(),
            los_free: Vec::new(),
            next_base: FIRST_PAGE_BASE,
            live_objects: 0,
            occupied_words: 0,
        }
    }

    #[inline]
    fn split(index: u32) -> (usize, usize) {
        (
            (index >> PAGE_SHIFT) as usize,
            (index & (PAGE_SLOTS as u32 - 1)) as usize,
        )
    }

    fn take_base_span(&mut self, span_words: u64) -> u64 {
        let base = self.next_base;
        self.next_base += span_words * WORD_BYTES;
        base
    }

    fn new_page(&mut self, class_words: usize, capacity: u32, class_index: Option<u8>) -> u32 {
        let base = self.take_base_span(class_words as u64 * capacity as u64);
        let pid = self.pages.len() as u32;
        self.pages
            .push(Page::new(class_words, capacity, class_index, base));
        pid
    }

    /// Stores `object`, returning its freshly minted handle.
    pub(crate) fn alloc(&mut self, object: Object) -> ObjRef {
        let words = object.size_words();
        self.live_objects += 1;
        self.occupied_words += words;
        match size_class_index(words) {
            None => {
                // Large object: one per page. A vacated LOS page is reused
                // with its slot size (and a fresh address span, since the
                // new tenant's footprint may differ) rebound to the object.
                let pid = match self.los_free.pop() {
                    Some(pid) => {
                        let span = words as u64;
                        let base = self.take_base_span(span);
                        let page = &mut self.pages[pid as usize];
                        page.in_avail = false;
                        page.class_words = words;
                        page.base = base;
                        page.bump = 0;
                        page.free_mask = 0;
                        pid
                    }
                    None => self.new_page(words, 1, None),
                };
                let page = &mut self.pages[pid as usize];
                page.bump = 1;
                page.live_mask |= Page::slot_bit(0);
                page.slots[0] = Some(object);
                ObjRef::from_parts(pid * PAGE_SLOTS as u32, page.gens[0])
            }
            Some(ci) => {
                let pid = match self.avail[ci].last().copied() {
                    Some(pid) => pid,
                    None => {
                        let pid =
                            self.new_page(SIZE_CLASSES[ci], PAGE_SLOTS as u32, Some(ci as u8));
                        self.pages[pid as usize].in_avail = true;
                        self.avail[ci].push(pid);
                        pid
                    }
                };
                let page = &mut self.pages[pid as usize];
                let slot = if page.bump < page.capacity {
                    let s = page.bump as usize;
                    page.bump += 1;
                    s
                } else {
                    let s = page.free_mask.trailing_zeros() as usize;
                    page.free_mask &= !Page::slot_bit(s);
                    s
                };
                page.live_mask |= Page::slot_bit(slot);
                page.slots[slot] = Some(object);
                let gen = page.gens[slot];
                if !page.has_space() {
                    page.in_avail = false;
                    let popped = self.avail[ci].pop();
                    debug_assert_eq!(popped, Some(pid), "full page was not the avail top");
                }
                ObjRef::from_parts(pid * PAGE_SLOTS as u32 + slot as u32, gen)
            }
        }
    }

    /// Validates the handle and reclaims the object behind it in a single
    /// page lookup (this is the `Heap::free` hot path), returning its
    /// footprint in words. The slot generation is bumped and all
    /// flag-plane bits are cleared.
    pub(crate) fn free_checked(&mut self, index: u32, generation: u32) -> Result<usize, RefFault> {
        let (pid, slot) = Self::split(index);
        let page = self.pages.get_mut(pid).ok_or(RefFault::Invalid)?;
        if slot >= page.capacity as usize {
            return Err(RefFault::Invalid);
        }
        if page.gens[slot] != generation || page.live_mask >> slot & 1 == 0 {
            return Err(RefFault::Stale);
        }
        let object = page.slots[slot].take().expect("live slot holds an object");
        let words = object.size_words();
        page.live_mask &= !Page::slot_bit(slot);
        page.free_mask |= Page::slot_bit(slot);
        page.gens[slot] = page.gens[slot].wrapping_add(1);
        page.clear_all_flags(slot);
        if !page.in_avail {
            page.in_avail = true;
            match page.class_index {
                Some(ci) => self.avail[ci as usize].push(pid as u32),
                None => self.los_free.push(pid as u32),
            }
        }
        self.live_objects -= 1;
        self.occupied_words -= words;
        Ok(words)
    }

    /// Number of pages; the index space is `0..page_count * PAGE_SLOTS`.
    #[inline]
    pub(crate) fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Exclusive upper bound of the object-index space.
    #[inline]
    pub(crate) fn index_bound(&self) -> usize {
        self.pages.len() * PAGE_SLOTS
    }

    #[inline]
    pub(crate) fn page(&self, pid: usize) -> &Page {
        &self.pages[pid]
    }

    /// Whether `index` names an occupied slot.
    #[inline]
    pub(crate) fn is_live(&self, index: u32) -> bool {
        let (pid, slot) = Self::split(index);
        match self.pages.get(pid) {
            Some(page) => page.live_mask >> slot & 1 != 0,
            None => false,
        }
    }

    /// The current generation of `index`'s slot, or `None` when the index
    /// is outside the page table (never-allocated address space).
    #[inline]
    pub(crate) fn gen_at(&self, index: u32) -> Option<u32> {
        self.gen_and_live(index).map(|(gen, _)| gen)
    }

    /// Generation and liveness of `index`'s slot in one page lookup, or
    /// `None` when the index is outside the page table. This is the
    /// handle-validation fast path: every `check` on a `Heap` API call
    /// lands here.
    #[inline]
    pub(crate) fn gen_and_live(&self, index: u32) -> Option<(u32, bool)> {
        let (pid, slot) = Self::split(index);
        let page = self.pages.get(pid)?;
        if slot < page.capacity as usize {
            Some((page.gens[slot], page.live_mask >> slot & 1 != 0))
        } else {
            None
        }
    }

    /// Borrows the (live) object at `index`.
    #[inline]
    pub(crate) fn object(&self, index: u32) -> &Object {
        let (pid, slot) = Self::split(index);
        self.pages[pid].slots[slot]
            .as_ref()
            .expect("object: caller verified liveness")
    }

    /// Mutably borrows the (live) object at `index`.
    #[inline]
    pub(crate) fn object_mut(&mut self, index: u32) -> &mut Object {
        let (pid, slot) = Self::split(index);
        self.pages[pid].slots[slot]
            .as_mut()
            .expect("object_mut: caller verified liveness")
    }

    #[inline]
    pub(crate) fn live_objects(&self) -> usize {
        self.live_objects
    }

    #[inline]
    pub(crate) fn occupied_words(&self) -> usize {
        self.occupied_words
    }

    // Per-slot flag operations, delegated to the page's bit-planes. All
    // take `&self`: the planes are atomic.

    pub(crate) fn set_flags(&self, index: u32, bits: Flags) {
        let (pid, slot) = Self::split(index);
        self.pages[pid].set_flags(slot, bits);
    }

    pub(crate) fn fetch_set_flags(&self, index: u32, bits: Flags) -> Flags {
        let (pid, slot) = Self::split(index);
        self.pages[pid].fetch_set_flags(slot, bits)
    }

    pub(crate) fn clear_flags(&self, index: u32, bits: Flags) {
        let (pid, slot) = Self::split(index);
        self.pages[pid].clear_flags(slot, bits);
    }

    pub(crate) fn has_flags(&self, index: u32, bits: Flags) -> bool {
        let (pid, slot) = Self::split(index);
        self.pages[pid].has_flags(slot, bits)
    }

    pub(crate) fn flags_of(&self, index: u32) -> Flags {
        let (pid, slot) = Self::split(index);
        self.pages[pid].compose_flags(slot)
    }

    pub(crate) fn clear_flag_word(&self, pid: usize, bits: Flags, mask: u64) {
        self.pages[pid].clear_planes_masked(bits, mask);
    }

    /// The page-geometry address of the live object at `index`.
    pub(crate) fn address_at(&self, index: u32) -> Option<u64> {
        let (pid, slot) = Self::split(index);
        let page = self.pages.get(pid)?;
        if page.live_mask >> slot & 1 != 0 {
            Some(page.slot_address(slot))
        } else {
            None
        }
    }

    /// Checks the page-table structural invariants, returning
    /// human-readable problems (empty = healthy):
    ///
    /// * live and free masks are disjoint, stay below the bump pointer,
    ///   and together cover exactly the bumped region;
    /// * slot storage agrees with the live mask;
    /// * flag-plane bits exist only on live slots;
    /// * large-object pages hold at most one object whose footprint
    ///   matches the page's slot size; size-class slots fit their class;
    /// * every non-full page is on its class's avail stack (or the LOS
    ///   free list) exactly once;
    /// * the cached live/occupied counters match a full recount.
    pub(crate) fn verify_structure(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut live = 0usize;
        let mut words = 0usize;
        for (pid, page) in self.pages.iter().enumerate() {
            if page.live_mask & page.free_mask != 0 {
                problems.push(format!("page {pid}: live and free masks overlap"));
            }
            let bumped = if page.bump as usize >= 64 {
                u64::MAX
            } else {
                (1u64 << page.bump) - 1
            };
            if (page.live_mask | page.free_mask) != bumped {
                problems.push(format!(
                    "page {pid}: live|free {:#x} does not cover the bumped region {bumped:#x}",
                    page.live_mask | page.free_mask
                ));
            }
            for slot in 0..page.capacity as usize {
                let is_live = page.live_mask >> slot & 1 != 0;
                match (&page.slots[slot], is_live) {
                    (Some(_), false) => {
                        problems.push(format!("page {pid} slot {slot}: object in a dead slot"))
                    }
                    (None, true) => {
                        problems.push(format!("page {pid} slot {slot}: live slot holds no object"))
                    }
                    (Some(obj), true) => {
                        live += 1;
                        words += obj.size_words();
                        if page.class_index.is_some() {
                            if obj.size_words() > page.class_words {
                                problems.push(format!(
                                    "page {pid} slot {slot}: object of {} words overflows its \
                                     {}-word size class",
                                    obj.size_words(),
                                    page.class_words
                                ));
                            }
                        } else if obj.size_words() != page.class_words {
                            problems.push(format!(
                                "LOS page {pid}: object footprint {} != page slot size {}",
                                obj.size_words(),
                                page.class_words
                            ));
                        }
                    }
                    (None, false) => {}
                }
            }
            for (k, plane) in page.planes.iter().enumerate() {
                let stray = plane.load(Ordering::Relaxed) & !page.live_mask;
                if stray != 0 {
                    problems.push(format!(
                        "page {pid}: flag plane {k} has bits {stray:#x} outside the live mask"
                    ));
                }
            }
            if page.class_index.is_none() && page.capacity != 1 {
                problems.push(format!("LOS page {pid} has capacity {}", page.capacity));
            }
            let listed = match page.class_index {
                Some(ci) => self.avail[ci as usize]
                    .iter()
                    .filter(|&&p| p as usize == pid)
                    .count(),
                None => self.los_free.iter().filter(|&&p| p as usize == pid).count(),
            };
            if page.in_avail && listed != 1 {
                problems.push(format!(
                    "page {pid} marked available but listed {listed} times"
                ));
            }
            if !page.in_avail && listed != 0 {
                problems.push(format!("page {pid} on an avail stack but not marked"));
            }
            if page.class_index.is_some() && page.has_space() && !page.in_avail {
                problems.push(format!("page {pid} has free capacity but is not available"));
            }
        }
        if live != self.live_objects {
            problems.push(format!(
                "live-object count drift: counted {live}, cached {}",
                self.live_objects
            ));
        }
        if words != self.occupied_words {
            problems.push(format!(
                "occupied-words drift: counted {words}, cached {}",
                self.occupied_words
            ));
        }
        problems
    }
}
