//! In-heap object representation.

use crate::{ClassId, ObjRef};

/// Simulated per-object header cost in words (Jikes RVM uses a two-word
/// header; the paper's assertion bits live in its spare bits).
pub const HEADER_WORDS: usize = 2;

/// A heap object: a class id, reference fields, and a data payload of
/// whole words (the analogue of Java primitive fields and primitive array
/// storage, zero-initialized like Java's defaults).
///
/// Header flag bits are *not* stored here: the BiBOP page table keeps
/// them in per-page side bit-planes (see
/// [`Heap::flags_of`](crate::Heap::flags_of)), so the mark and sweep
/// loops can operate on 64 objects per bitmap word. The header's two
/// words are still charged to [`Object::size_words`].
#[derive(Debug, Clone)]
pub struct Object {
    class: ClassId,
    refs: Box<[ObjRef]>,
    data: Box<[u64]>,
}

impl Object {
    pub(crate) fn new(class: ClassId, nrefs: usize, data_words: usize) -> Object {
        Object {
            class,
            refs: vec![ObjRef::NULL; nrefs].into_boxed_slice(),
            data: vec![0; data_words].into_boxed_slice(),
        }
    }

    /// The object's class.
    #[inline]
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The reference fields, in declaration order.
    #[inline]
    pub fn refs(&self) -> &[ObjRef] {
        &self.refs
    }

    pub(crate) fn refs_mut(&mut self) -> &mut [ObjRef] {
        &mut self.refs
    }

    /// Number of reference fields.
    #[inline]
    pub fn ref_count(&self) -> usize {
        self.refs.len()
    }

    /// Size of the data payload, in words.
    #[inline]
    pub fn data_words(&self) -> usize {
        self.data.len()
    }

    /// The data payload.
    #[inline]
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    pub(crate) fn data_mut(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// Total footprint of the object in words: header + reference fields +
    /// data payload. This is the unit of all heap accounting.
    #[inline]
    pub fn size_words(&self) -> usize {
        HEADER_WORDS + self.refs.len() + self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TypeRegistry;

    fn class() -> ClassId {
        TypeRegistry::new().register("T", &[])
    }

    #[test]
    fn new_object_is_clean() {
        let o = Object::new(class(), 3, 5);
        assert_eq!(o.ref_count(), 3);
        assert!(o.refs().iter().all(|r| r.is_null()));
        assert_eq!(o.data_words(), 5);
        assert_eq!(o.size_words(), HEADER_WORDS + 3 + 5);
    }

    #[test]
    fn zero_field_object_size() {
        let o = Object::new(class(), 0, 0);
        assert_eq!(o.size_words(), HEADER_WORDS);
    }
}
