//! Generation-checked object references.

use std::fmt;

/// A handle to a heap object: a slot index plus the slot generation at the
/// time the handle was created.
///
/// The heap bumps a slot's generation when the object in it is freed, so a
/// handle that outlives its object no longer resolves — using it is a
/// checked error ([`crate::HeapError::StaleRef`]), never a silent read of an
/// unrelated object that happens to reuse the slot. This is the moral
/// equivalent of the memory safety a managed runtime gives its collector.
///
/// `ObjRef` is a plain `Copy` value; the *null reference* is
/// [`ObjRef::NULL`], mirroring Java's `null` in reference fields.
///
/// # Example
///
/// ```
/// use gca_heap::ObjRef;
///
/// let r = ObjRef::NULL;
/// assert!(r.is_null());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjRef {
    index: u32,
    gen: u32,
}

impl ObjRef {
    /// The null reference. Reference fields of fresh objects are null.
    pub const NULL: ObjRef = ObjRef {
        index: u32::MAX,
        gen: 0,
    };

    /// Creates a reference from raw parts. Only the heap mints live
    /// references; this is `pub(crate)` on purpose.
    pub(crate) fn from_parts(index: u32, gen: u32) -> ObjRef {
        ObjRef { index, gen }
    }

    /// Returns `true` if this is the null reference.
    #[inline]
    pub fn is_null(self) -> bool {
        self.index == u32::MAX
    }

    /// Returns `true` if this is not the null reference.
    #[inline]
    pub fn is_some(self) -> bool {
        !self.is_null()
    }

    /// The slot index this handle points at.
    ///
    /// Stable for the lifetime of the object because the heap is
    /// non-moving; only meaningful for diagnostics once the object dies.
    #[inline]
    pub fn index(self) -> u32 {
        self.index
    }

    /// The slot generation this handle was minted with.
    #[inline]
    pub fn generation(self) -> u32 {
        self.gen
    }
}

impl Default for ObjRef {
    fn default() -> Self {
        ObjRef::NULL
    }
}

impl fmt::Debug for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "ObjRef(null)")
        } else {
            write!(f, "ObjRef({}v{})", self.index, self.gen)
        }
    }
}

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "null")
        } else {
            write!(f, "@{}v{}", self.index, self.gen)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_null() {
        assert!(ObjRef::NULL.is_null());
        assert!(!ObjRef::NULL.is_some());
        assert_eq!(ObjRef::default(), ObjRef::NULL);
    }

    #[test]
    fn parts_round_trip() {
        let r = ObjRef::from_parts(7, 3);
        assert!(r.is_some());
        assert_eq!(r.index(), 7);
        assert_eq!(r.generation(), 3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ObjRef::NULL.to_string(), "null");
        assert_eq!(ObjRef::from_parts(5, 2).to_string(), "@5v2");
        assert_eq!(format!("{:?}", ObjRef::NULL), "ObjRef(null)");
        assert_eq!(format!("{:?}", ObjRef::from_parts(1, 1)), "ObjRef(1v1)");
    }

    #[test]
    fn ordering_and_hash_are_derived() {
        let a = ObjRef::from_parts(1, 0);
        let b = ObjRef::from_parts(2, 0);
        assert!(a < b);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&a));
        assert!(!set.contains(&b));
    }
}
