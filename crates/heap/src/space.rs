//! The `HeapSpace` backend contract: interchangeable space layouts behind
//! one observer API.
//!
//! A *space* decides where objects live in (simulated) memory; the
//! [`PageTable`](crate::PageTable) always stores the objects themselves,
//! so [`ObjRef`](crate::ObjRef) handles are relocation-stable regardless
//! of backend. Two backends exist today:
//!
//! * [`SpaceKind::Paged`] — the BiBOP page table itself: non-moving,
//!   addresses derived from page geometry, never flips.
//! * [`SpaceKind::Semispace`] — Cheney-style from/to address bookkeeping
//!   ([`SemiSpaces`]) driven by the copying collector through the heap's
//!   `evac_begin` / `evac_forward` / `evac_finish` protocol.
//!
//! # Contract for future backends
//!
//! `HeapSpace` is deliberately a *read-only observer* interface: engines
//! may inspect a space (addresses, flip count, usage, invariants) through
//! it, but every mutation goes through `Heap` methods so the heap can
//! keep its page table, card table, and statistics coherent. A new
//! backend (e.g. a concurrently-marked space, ROADMAP item 2) must:
//!
//! 1. report a distinct [`SpaceKind`];
//! 2. give every *live* index an address and no address to dead indices
//!    (`address_of` is how the differential suites detect address-space
//!    leaks);
//! 3. keep `verify_layout` O(live) and side-effect-free — it runs inside
//!    debug cross-checks after every collection;
//! 4. count `flips`/`evacuated_*` monotonically (0 forever is fine for
//!    non-moving backends).

use crate::pages::PageTable;
use crate::spaces::SemiSpaces;

/// Which space layout a heap was built with. Selected once at
/// construction ([`Heap::with_space`](crate::Heap::with_space)); the VM
/// derives it from the collector kind, so `CollectorKind` alone
/// determines the layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SpaceKind {
    /// Non-moving BiBOP pages (mark-sweep, parallel, generational).
    #[default]
    Paged,
    /// Semispace from/to address bookkeeping (copying collector).
    Semispace,
}

impl std::fmt::Display for SpaceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpaceKind::Paged => write!(f, "paged"),
            SpaceKind::Semispace => write!(f, "semispace"),
        }
    }
}

/// Read-only backend contract shared by every space layout (see the
/// module docs for the rules a new backend must follow).
pub trait HeapSpace: std::fmt::Debug {
    /// Which layout this is.
    fn kind(&self) -> SpaceKind;

    /// The current address of the live object at `index`, if resident.
    fn address_of(&self, index: u32) -> Option<u64>;

    /// Completed space flips (0 for non-moving backends).
    fn flips(&self) -> u64;

    /// Cumulative objects evacuated (0 for non-moving backends).
    fn evacuated_objects(&self) -> u64;

    /// Cumulative words evacuated (0 for non-moving backends).
    fn evacuated_words(&self) -> u64;

    /// Words currently consumed in the active allocation region (live
    /// data plus any unreclaimed holes).
    // "from-space" is the semispace noun, not a `from_x` conversion.
    #[allow(clippy::wrong_self_convention)]
    fn from_space_used(&self) -> u64;

    /// Checks the space's address invariants against the current live set
    /// (`(index, size_words)` pairs), returning human-readable problems
    /// (empty = healthy).
    fn verify_layout(&self, resident: &[(u32, usize)]) -> Vec<String>;
}

impl HeapSpace for PageTable {
    fn kind(&self) -> SpaceKind {
        SpaceKind::Paged
    }

    fn address_of(&self, index: u32) -> Option<u64> {
        self.address_at(index)
    }

    fn flips(&self) -> u64 {
        0
    }

    fn evacuated_objects(&self) -> u64 {
        0
    }

    fn evacuated_words(&self) -> u64 {
        0
    }

    fn from_space_used(&self) -> u64 {
        self.occupied_words() as u64
    }

    fn verify_layout(&self, resident: &[(u32, usize)]) -> Vec<String> {
        let mut problems = Vec::new();
        for &(index, words) in resident {
            match self.address_at(index) {
                None => problems.push(format!("resident index {index} has no paged address")),
                Some(_) => {
                    if !self.is_live(index) {
                        problems.push(format!("index {index} addressed but not live"));
                    }
                }
            }
            let _ = words;
        }
        if resident.len() != self.live_objects() {
            problems.push(format!(
                "paged space holds {} live objects but {} residents were reported",
                self.live_objects(),
                resident.len()
            ));
        }
        problems
    }
}

impl HeapSpace for SemiSpaces {
    fn kind(&self) -> SpaceKind {
        SpaceKind::Semispace
    }

    fn address_of(&self, index: u32) -> Option<u64> {
        SemiSpaces::address_of(self, index as usize)
    }

    fn flips(&self) -> u64 {
        SemiSpaces::flips(self)
    }

    fn evacuated_objects(&self) -> u64 {
        SemiSpaces::evacuated_objects(self)
    }

    fn evacuated_words(&self) -> u64 {
        SemiSpaces::evacuated_words(self)
    }

    fn from_space_used(&self) -> u64 {
        SemiSpaces::from_space_used(self)
    }

    fn verify_layout(&self, resident: &[(u32, usize)]) -> Vec<String> {
        let slots: Vec<(usize, usize)> = resident
            .iter()
            .map(|&(index, words)| (index as usize, words))
            .collect();
        self.verify(&slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display_names() {
        assert_eq!(SpaceKind::Paged.to_string(), "paged");
        assert_eq!(SpaceKind::Semispace.to_string(), "semispace");
        assert_eq!(SpaceKind::default(), SpaceKind::Paged);
    }

    #[test]
    fn semispaces_implement_the_contract() {
        let mut s = SemiSpaces::new();
        s.note_alloc(0, 4);
        let space: &dyn HeapSpace = &s;
        assert_eq!(space.kind(), SpaceKind::Semispace);
        assert!(space.address_of(0).is_some());
        assert!(space.address_of(1).is_none());
        assert_eq!(space.flips(), 0);
        assert_eq!(space.from_space_used(), 4);
        assert!(space.verify_layout(&[(0, 4)]).is_empty());
    }
}
