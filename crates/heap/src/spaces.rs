//! Semispace address bookkeeping for the copying collector backend.
//!
//! The heap proper stays slot-based so [`ObjRef`](crate::ObjRef) handles
//! remain relocation-stable — mutator roots, assertion registrations,
//! alloc-site tags and replay logs all keep working across an evacuation.
//! What *moves* is the object's **address**: every resident object has a
//! bump-allocated address inside the current from-space, and a collection
//! evacuates survivors to contiguous addresses in the to-space, records a
//! forwarding word per slot, then flips the spaces.
//!
//! This mirrors how a real semispace collector (Cheney 1970) relocates
//! objects while the runtime keeps stable handles (Jikes RVM's object
//! model hands out handles through a moving-GC-aware indirection; our
//! generation-checked slot index plays that role).

/// Sentinel for "this slot has no address" (not resident / reclaimed).
const NO_ADDR: u64 = u64::MAX;

/// Base address of the first semispace. High bits chosen so from/to ranges
/// are visibly disjoint in debug output.
const SPACE_A_BASE: u64 = 1 << 40;
/// Base address of the second semispace.
const SPACE_B_BASE: u64 = 3 << 40;

/// From/to space address bookkeeping for the semispace copying backend.
///
/// Owned by the [`Heap`](crate::Heap) (enabled via
/// [`Heap::enable_copy_spaces`](crate::Heap::enable_copy_spaces)) so that
/// ordinary allocation and reclamation maintain it automatically:
///
/// * [`SemiSpaces::note_alloc`] bump-allocates an address in from-space;
/// * [`SemiSpaces::note_free`] clears the slot's residency;
/// * during a collection, [`SemiSpaces::begin_gc`] /
///   [`SemiSpaces::forward`] / [`SemiSpaces::finish_gc`] implement the
///   evacuation: each survivor gets a forwarding address in to-space, and
///   the flip makes to-space the new from-space.
///
/// # Example
///
/// ```
/// use gca_heap::SemiSpaces;
///
/// let mut spaces = SemiSpaces::new();
/// spaces.note_alloc(0, 4);
/// spaces.note_alloc(1, 2);
/// let before = spaces.address_of(0).unwrap();
///
/// spaces.begin_gc();
/// spaces.forward(0, 4); // slot 0 survives; slot 1 is garbage
/// spaces.finish_gc();
///
/// let after = spaces.address_of(0).unwrap();
/// assert_ne!(before, after, "survivor was relocated");
/// assert!(spaces.address_of(1).is_none(), "garbage lost its address");
/// assert_eq!(spaces.flips(), 1);
/// ```
#[derive(Debug)]
pub struct SemiSpaces {
    /// Base address of the current from-space (where resident objects live).
    from_base: u64,
    /// Base address of the current to-space (evacuation target during GC).
    to_base: u64,
    /// Bump pointer (in words) past the last allocation in from-space.
    from_bump: u64,
    /// Bump pointer (in words) past the last evacuation in to-space.
    to_bump: u64,
    /// Per-slot current address, or `NO_ADDR` when not resident.
    addr: Vec<u64>,
    /// Per-slot size in words of the resident object (0 when not resident).
    size: Vec<u32>,
    /// Per-slot forwarding address installed during a GC, or `NO_ADDR`.
    fwd: Vec<u64>,
    /// True between `begin_gc` and `finish_gc`.
    in_gc: bool,
    /// Number of completed flips.
    flips: u64,
    /// Cumulative objects evacuated across all flips.
    evacuated_objects: u64,
    /// Cumulative words evacuated across all flips.
    evacuated_words: u64,
}

impl Default for SemiSpaces {
    fn default() -> SemiSpaces {
        SemiSpaces::new()
    }
}

impl SemiSpaces {
    /// Creates an empty pair of semispaces.
    pub fn new() -> SemiSpaces {
        SemiSpaces {
            from_base: SPACE_A_BASE,
            to_base: SPACE_B_BASE,
            from_bump: 0,
            to_bump: 0,
            addr: Vec::new(),
            size: Vec::new(),
            fwd: Vec::new(),
            in_gc: false,
            flips: 0,
            evacuated_objects: 0,
            evacuated_words: 0,
        }
    }

    fn ensure_slot(&mut self, slot: usize) {
        if slot >= self.addr.len() {
            self.addr.resize(slot + 1, NO_ADDR);
            self.size.resize(slot + 1, 0);
            self.fwd.resize(slot + 1, NO_ADDR);
        }
    }

    /// Records a fresh allocation in `slot` of `words` words: the object is
    /// bump-allocated at the end of the current from-space.
    pub fn note_alloc(&mut self, slot: usize, words: usize) {
        self.ensure_slot(slot);
        debug_assert_eq!(
            self.addr[slot], NO_ADDR,
            "slot {slot} already resident at allocation time"
        );
        self.addr[slot] = self.from_base + self.from_bump;
        self.size[slot] = words as u32;
        self.from_bump += words as u64;
    }

    /// Records that `slot` was reclaimed. Its from-space extent becomes a
    /// hole; holes are squeezed out at the next evacuation.
    pub fn note_free(&mut self, slot: usize) {
        if slot < self.addr.len() {
            self.addr[slot] = NO_ADDR;
            self.size[slot] = 0;
        }
    }

    /// The current address of the object in `slot`, if resident.
    pub fn address_of(&self, slot: usize) -> Option<u64> {
        match self.addr.get(slot) {
            Some(&a) if a != NO_ADDR => Some(a),
            _ => None,
        }
    }

    /// Starts an evacuation: resets the to-space bump pointer and clears
    /// any forwarding words.
    ///
    /// # Panics
    ///
    /// If a GC is already in progress.
    pub fn begin_gc(&mut self) {
        assert!(!self.in_gc, "begin_gc called twice without finish_gc");
        self.in_gc = true;
        self.to_bump = 0;
        for f in &mut self.fwd {
            *f = NO_ADDR;
        }
    }

    /// Evacuates the object in `slot` (of `words` words) to the to-space,
    /// installing and returning its forwarding address. Each slot may be
    /// forwarded at most once per GC — exactly the "check the forwarding
    /// word first" discipline of a real copying collector.
    ///
    /// # Panics
    ///
    /// If no GC is in progress, the slot is not resident, or the slot was
    /// already forwarded this cycle.
    pub fn forward(&mut self, slot: usize, words: usize) -> u64 {
        assert!(self.in_gc, "forward outside begin_gc/finish_gc");
        self.ensure_slot(slot);
        assert!(
            self.addr[slot] != NO_ADDR,
            "forwarding non-resident slot {slot}"
        );
        assert!(
            self.fwd[slot] == NO_ADDR,
            "slot {slot} forwarded twice in one cycle"
        );
        let to = self.to_base + self.to_bump;
        self.fwd[slot] = to;
        self.to_bump += words as u64;
        self.evacuated_objects += 1;
        self.evacuated_words += words as u64;
        to
    }

    /// The forwarding address installed for `slot` this cycle, if any.
    pub fn forwarding_of(&self, slot: usize) -> Option<u64> {
        match self.fwd.get(slot) {
            Some(&f) if f != NO_ADDR => Some(f),
            _ => None,
        }
    }

    /// Whether `slot` has been forwarded this cycle.
    pub fn is_forwarded(&self, slot: usize) -> bool {
        self.forwarding_of(slot).is_some()
    }

    /// Completes the evacuation: survivors take their forwarding address,
    /// everything else loses residency, and the spaces flip (the old
    /// to-space becomes the new from-space).
    ///
    /// # Panics
    ///
    /// If no GC is in progress.
    pub fn finish_gc(&mut self) {
        assert!(self.in_gc, "finish_gc without begin_gc");
        for slot in 0..self.addr.len() {
            if self.fwd[slot] != NO_ADDR {
                self.addr[slot] = self.fwd[slot];
            } else {
                self.addr[slot] = NO_ADDR;
                self.size[slot] = 0;
            }
            self.fwd[slot] = NO_ADDR;
        }
        std::mem::swap(&mut self.from_base, &mut self.to_base);
        self.from_bump = self.to_bump;
        self.to_bump = 0;
        self.in_gc = false;
        self.flips += 1;
    }

    /// Number of completed space flips.
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Cumulative objects evacuated across all flips.
    pub fn evacuated_objects(&self) -> u64 {
        self.evacuated_objects
    }

    /// Cumulative words evacuated across all flips.
    pub fn evacuated_words(&self) -> u64 {
        self.evacuated_words
    }

    /// Words currently bump-allocated in from-space (live data plus any
    /// holes left by frees since the last flip).
    pub fn from_space_used(&self) -> u64 {
        self.from_bump
    }

    /// Base address of the current from-space.
    pub fn from_base(&self) -> u64 {
        self.from_base
    }

    /// Checks the address-space invariants against a set of resident slots
    /// given as `(slot, words)` pairs, returning human-readable problems
    /// (empty = healthy): every resident slot has an address inside the
    /// current from-space, extents do not overlap, and no non-resident
    /// slot has an address.
    pub fn verify(&self, resident: &[(usize, usize)]) -> Vec<String> {
        let mut problems = Vec::new();
        let mut extents: Vec<(u64, u64, usize)> = Vec::new();
        let mut seen = vec![false; self.addr.len()];
        for &(slot, words) in resident {
            if slot < seen.len() {
                seen[slot] = true;
            }
            match self.address_of(slot) {
                None => problems.push(format!("resident slot {slot} has no address")),
                Some(a) => {
                    if a < self.from_base || a + words as u64 > self.from_base + self.from_bump {
                        problems.push(format!(
                            "slot {slot} at {a:#x}+{words} outside from-space \
                             [{:#x}, {:#x})",
                            self.from_base,
                            self.from_base + self.from_bump
                        ));
                    }
                    extents.push((a, a + words as u64, slot));
                }
            }
        }
        for (slot, &a) in self.addr.iter().enumerate() {
            if a != NO_ADDR && !seen.get(slot).copied().unwrap_or(false) {
                problems.push(format!("non-resident slot {slot} still has address {a:#x}"));
            }
        }
        extents.sort_unstable();
        for pair in extents.windows(2) {
            let (_, end_a, slot_a) = pair[0];
            let (start_b, _, slot_b) = pair[1];
            if start_b < end_a {
                problems.push(format!("slots {slot_a} and {slot_b} overlap in from-space"));
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_assigns_disjoint_bump_addresses() {
        let mut s = SemiSpaces::new();
        s.note_alloc(0, 4);
        s.note_alloc(1, 2);
        s.note_alloc(2, 8);
        let a0 = s.address_of(0).unwrap();
        let a1 = s.address_of(1).unwrap();
        let a2 = s.address_of(2).unwrap();
        assert_eq!(a1, a0 + 4);
        assert_eq!(a2, a1 + 2);
        assert!(s.verify(&[(0, 4), (1, 2), (2, 8)]).is_empty());
    }

    #[test]
    fn evacuation_compacts_and_flips() {
        let mut s = SemiSpaces::new();
        s.note_alloc(0, 4);
        s.note_alloc(1, 2);
        s.note_alloc(2, 8);
        let old_base = s.from_base();

        s.begin_gc();
        // Slot 1 dies; 2 is evacuated before 0 (traversal order, not slot
        // order).
        let f2 = s.forward(2, 8);
        let f0 = s.forward(0, 4);
        assert_eq!(f0, f2 + 8, "to-space is bump-allocated in copy order");
        assert!(s.is_forwarded(2));
        assert!(!s.is_forwarded(1));
        s.finish_gc();

        assert_ne!(s.from_base(), old_base, "spaces flipped");
        assert_eq!(s.address_of(2), Some(f2));
        assert_eq!(s.address_of(0), Some(f0));
        assert_eq!(s.address_of(1), None);
        assert_eq!(s.from_space_used(), 12);
        assert_eq!(s.flips(), 1);
        assert_eq!(s.evacuated_objects(), 2);
        assert_eq!(s.evacuated_words(), 12);
        assert!(
            s.verify(&[(0, 4), (2, 8)]).is_empty(),
            "{:?}",
            s.verify(&[(0, 4), (2, 8)])
        );
    }

    #[test]
    fn free_between_gcs_leaves_hole_until_next_flip() {
        let mut s = SemiSpaces::new();
        s.note_alloc(0, 4);
        s.note_alloc(1, 4);
        s.note_free(0);
        assert_eq!(s.address_of(0), None);
        // The hole is not reclaimed yet...
        assert_eq!(s.from_space_used(), 8);
        // ...until the next evacuation squeezes it out.
        s.begin_gc();
        s.forward(1, 4);
        s.finish_gc();
        assert_eq!(s.from_space_used(), 4);
        assert!(s.verify(&[(1, 4)]).is_empty());
    }

    #[test]
    fn slot_reuse_after_flip_gets_fresh_address() {
        let mut s = SemiSpaces::new();
        s.note_alloc(0, 4);
        s.begin_gc();
        s.finish_gc(); // nothing survives
        assert_eq!(s.address_of(0), None);
        s.note_alloc(0, 2);
        let a = s.address_of(0).unwrap();
        assert_eq!(a, s.from_base());
    }

    #[test]
    #[should_panic(expected = "forwarded twice")]
    fn double_forward_panics() {
        let mut s = SemiSpaces::new();
        s.note_alloc(0, 4);
        s.begin_gc();
        s.forward(0, 4);
        s.forward(0, 4);
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn forwarding_garbage_panics() {
        let mut s = SemiSpaces::new();
        s.begin_gc();
        s.forward(0, 4);
    }

    #[test]
    fn two_flips_alternate_spaces() {
        let mut s = SemiSpaces::new();
        let base_a = s.from_base();
        s.note_alloc(0, 4);
        s.begin_gc();
        s.forward(0, 4);
        s.finish_gc();
        let base_b = s.from_base();
        assert_ne!(base_a, base_b);
        s.begin_gc();
        s.forward(0, 4);
        s.finish_gc();
        assert_eq!(s.from_base(), base_a, "second flip returns to space A");
        assert_eq!(s.flips(), 2);
    }
}
