//! Card-marking dirty bitmap for generational write barriers.
//!
//! One card per BiBOP page: every reference-field store dirties the card
//! of the *source* object's page (an unconditional one-bit write — the
//! cheapest barrier there is). A generational minor collection then scans
//! the old objects resident on dirty pages instead of maintaining a
//! remembered-set side table, and clears the whole table afterwards.
//!
//! The card granule is deliberately the page (64 slots): coarse enough
//! that the barrier is a single OR, fine enough that a minor scans only
//! the pages actually written since the last collection.

/// Dirty-card bitmap, one bit per page of the
/// [`PageTable`](crate::PageTable).
#[derive(Debug, Default, Clone)]
pub struct CardTable {
    words: Vec<u64>,
    pages: usize,
}

impl CardTable {
    /// Creates an empty card table.
    pub fn new() -> CardTable {
        CardTable::default()
    }

    /// Grows the table to cover `pages` pages (all new cards clean).
    pub(crate) fn ensure_pages(&mut self, pages: usize) {
        if pages > self.pages {
            self.pages = pages;
            self.words.resize(pages.div_ceil(64), 0);
        }
    }

    /// Number of pages the table covers.
    #[inline]
    pub fn page_span(&self) -> usize {
        self.pages
    }

    /// Marks page `pid` dirty.
    #[inline]
    pub(crate) fn dirty(&mut self, pid: u32) {
        let word = pid as usize / 64;
        if word < self.words.len() {
            self.words[word] |= 1 << (pid % 64);
        }
    }

    /// Whether page `pid` is dirty.
    #[inline]
    pub fn is_dirty(&self, pid: u32) -> bool {
        self.words
            .get(pid as usize / 64)
            .is_some_and(|w| w >> (pid % 64) & 1 != 0)
    }

    /// Number of dirty cards.
    pub fn dirty_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates dirty page ids in ascending order.
    pub fn dirty_pages(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(wi as u32 * 64 + b)
                }
            })
        })
    }

    /// Wipes every card clean (end of a collection).
    pub(crate) fn clear(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_and_clear_round_trip() {
        let mut cards = CardTable::new();
        cards.ensure_pages(130);
        assert_eq!(cards.page_span(), 130);
        assert_eq!(cards.dirty_count(), 0);
        cards.dirty(0);
        cards.dirty(65);
        cards.dirty(129);
        assert!(cards.is_dirty(0));
        assert!(cards.is_dirty(65));
        assert!(!cards.is_dirty(64));
        assert_eq!(cards.dirty_count(), 3);
        let dirty: Vec<u32> = cards.dirty_pages().collect();
        assert_eq!(dirty, vec![0, 65, 129], "ascending page order");
        cards.clear();
        assert_eq!(cards.dirty_count(), 0);
        assert!(!cards.is_dirty(0));
    }

    #[test]
    fn ensure_is_monotonic_and_preserves_dirt() {
        let mut cards = CardTable::new();
        cards.ensure_pages(2);
        cards.dirty(1);
        cards.ensure_pages(1); // shrinking request is a no-op
        assert_eq!(cards.page_span(), 2);
        cards.ensure_pages(200);
        assert!(cards.is_dirty(1), "growth keeps existing dirt");
        assert!(!cards.is_dirty(199));
    }

    #[test]
    fn out_of_range_queries_are_clean() {
        let cards = CardTable::new();
        assert!(!cards.is_dirty(7));
        assert_eq!(cards.dirty_pages().count(), 0);
    }
}
