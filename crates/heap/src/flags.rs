//! Per-object header flag bits.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Not};
use std::sync::atomic::{AtomicU16, Ordering};

/// Header flag bits for a heap object.
///
/// The paper "steals" spare bits from the two-word Jikes RVM object header
/// to store assertion state at zero space cost; this type is the Rust
/// analogue. The collector owns [`Flags::MARK`]; the assertion engine owns
/// the rest.
///
/// * [`Flags::MARK`] — set while tracing, cleared by sweep.
/// * [`Flags::DEAD`] — the program asserted this object dead
///   (`assert-dead`, §2.3.1); finding it reachable is a violation.
/// * [`Flags::UNSHARED`] — the program asserted at most one incoming
///   pointer (`assert-unshared`, §2.5.1).
/// * [`Flags::OWNEE`] — this object is the ownee of some
///   `assert-ownedby` pair (§2.5.2); lets the tracer skip the ownership
///   table lookup for the common case.
/// * [`Flags::OWNED`] — set during the ownership phase when the ownee was
///   reached from its owner; recomputed (cleared) every collection.
/// * [`Flags::REPORTED`] — a violation for this object was already
///   reported; used to de-duplicate warnings across collections when the
///   configuration asks for report-once semantics.
///
/// # Example
///
/// ```
/// use gca_heap::Flags;
///
/// let mut f = Flags::empty();
/// f |= Flags::MARK | Flags::DEAD;
/// assert!(f.contains(Flags::MARK));
/// assert!(f.contains(Flags::DEAD));
/// let f = f.without(Flags::MARK);
/// assert!(!f.contains(Flags::MARK));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Flags(u16);

impl Flags {
    /// No bits set.
    pub const fn empty() -> Flags {
        Flags(0)
    }

    /// Tracing mark bit.
    pub const MARK: Flags = Flags(1 << 0);
    /// `assert-dead` bit.
    pub const DEAD: Flags = Flags(1 << 1);
    /// `assert-unshared` bit.
    pub const UNSHARED: Flags = Flags(1 << 2);
    /// Object is an ownee of some `assert-ownedby` pair.
    pub const OWNEE: Flags = Flags(1 << 3);
    /// Ownee was reached from its owner this collection.
    pub const OWNED: Flags = Flags(1 << 4);
    /// A violation involving this object was already reported.
    pub const REPORTED: Flags = Flags(1 << 5);
    /// Object is an owner of some `assert-ownedby` pair; lets the
    /// ownership phase detect owner-region boundaries with a header test
    /// instead of a table lookup on every traced object.
    pub const OWNER: Flags = Flags(1 << 6);
    /// Object has survived a collection (generational mode): minor
    /// collections treat it as immortal and do not scan beyond it.
    pub const OLD: Flags = Flags(1 << 7);
    /// Object is in the remembered set (an old object that may hold
    /// references to young objects); deduplicates write-barrier entries.
    pub const REMEMBERED: Flags = Flags(1 << 8);

    /// Bits that must be recomputed on every collection and are therefore
    /// cleared by sweep ([`Flags::MARK`] and [`Flags::OWNED`]).
    pub const PER_GC: Flags = Flags(Flags::MARK.0 | Flags::OWNED.0);

    /// Returns `true` if every bit of `other` is set in `self`.
    #[inline]
    pub fn contains(self, other: Flags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if any bit of `other` is set in `self`.
    #[inline]
    pub fn intersects(self, other: Flags) -> bool {
        self.0 & other.0 != 0
    }

    /// Returns `self` with the bits of `other` cleared.
    #[inline]
    #[must_use]
    pub fn without(self, other: Flags) -> Flags {
        Flags(self.0 & !other.0)
    }

    /// Returns `self` with the bits of `other` set.
    #[inline]
    #[must_use]
    pub fn with(self, other: Flags) -> Flags {
        Flags(self.0 | other.0)
    }

    /// Returns `true` if no bit is set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Raw bit pattern, for debugging.
    #[inline]
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Rebuilds flags from a raw bit pattern (the page table composes
    /// per-object flags from its side bit-planes).
    #[inline]
    pub(crate) const fn from_bits(bits: u16) -> Flags {
        Flags(bits)
    }
}

impl BitOr for Flags {
    type Output = Flags;
    fn bitor(self, rhs: Flags) -> Flags {
        Flags(self.0 | rhs.0)
    }
}

impl BitOrAssign for Flags {
    fn bitor_assign(&mut self, rhs: Flags) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for Flags {
    type Output = Flags;
    fn bitand(self, rhs: Flags) -> Flags {
        Flags(self.0 & rhs.0)
    }
}

impl Not for Flags {
    type Output = Flags;
    fn not(self) -> Flags {
        Flags(!self.0)
    }
}

impl fmt::Debug for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: [(Flags, &str); 9] = [
            (Flags::MARK, "MARK"),
            (Flags::DEAD, "DEAD"),
            (Flags::UNSHARED, "UNSHARED"),
            (Flags::OWNEE, "OWNEE"),
            (Flags::OWNED, "OWNED"),
            (Flags::REPORTED, "REPORTED"),
            (Flags::OWNER, "OWNER"),
            (Flags::OLD, "OLD"),
            (Flags::REMEMBERED, "REMEMBERED"),
        ];
        let mut first = true;
        write!(f, "Flags(")?;
        for (bit, name) in names {
            if self.contains(bit) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "empty")?;
        }
        write!(f, ")")
    }
}

impl fmt::Binary for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

/// Atomically updatable header flags — the storage form of [`Flags`]
/// inside an object header.
///
/// The parallel mark phase lets N tracer workers race to set
/// [`Flags::MARK`] (and the assertion engine's per-GC bits) on shared
/// objects; `fetch_set` returns the *previous* bits so exactly one winner
/// observes the transition (the paper's "check and set the mark bit"
/// step, made into a single RMW).
///
/// All operations use relaxed ordering: collection is stop-the-world, the
/// object graph is immutable while tracing, and per-worker results are
/// merged after `std::thread::scope` joins (which synchronizes
/// everything); the bits carry no release/acquire payload of their own.
#[derive(Debug, Default)]
pub struct AtomicFlags(AtomicU16);

impl AtomicFlags {
    /// No bits set.
    pub const fn empty() -> AtomicFlags {
        AtomicFlags(AtomicU16::new(0))
    }

    /// Current bits as a value-type [`Flags`].
    #[inline]
    pub fn load(&self) -> Flags {
        Flags(self.0.load(Ordering::Relaxed))
    }

    /// Sets `bits`, returning the bits held *before* the update. The
    /// caller that sees `!previous.contains(bit)` is the unique setter.
    #[inline]
    pub fn fetch_set(&self, bits: Flags) -> Flags {
        Flags(self.0.fetch_or(bits.0, Ordering::Relaxed))
    }

    /// Clears `bits`, returning the bits held before the update.
    #[inline]
    pub fn fetch_clear(&self, bits: Flags) -> Flags {
        Flags(self.0.fetch_and(!bits.0, Ordering::Relaxed))
    }

    /// Tests whether all of `bits` are currently set.
    #[inline]
    pub fn contains(&self, bits: Flags) -> bool {
        self.load().contains(bits)
    }
}

impl Clone for AtomicFlags {
    fn clone(&self) -> AtomicFlags {
        AtomicFlags(AtomicU16::new(self.load().0))
    }
}

impl From<Flags> for AtomicFlags {
    fn from(f: Flags) -> AtomicFlags {
        AtomicFlags(AtomicU16::new(f.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_contains_nothing() {
        let f = Flags::empty();
        assert!(f.is_empty());
        assert!(!f.contains(Flags::MARK));
        // `contains(empty)` is vacuously true.
        assert!(f.contains(Flags::empty()));
    }

    #[test]
    fn set_and_clear() {
        let mut f = Flags::empty();
        f |= Flags::DEAD;
        assert!(f.contains(Flags::DEAD));
        assert!(f.intersects(Flags::DEAD | Flags::MARK));
        assert!(!f.contains(Flags::DEAD | Flags::MARK));
        f = f.with(Flags::MARK);
        assert!(f.contains(Flags::DEAD | Flags::MARK));
        f = f.without(Flags::DEAD);
        assert!(!f.contains(Flags::DEAD));
        assert!(f.contains(Flags::MARK));
    }

    #[test]
    fn per_gc_mask_covers_mark_and_owned() {
        assert!(Flags::PER_GC.contains(Flags::MARK));
        assert!(Flags::PER_GC.contains(Flags::OWNED));
        assert!(!Flags::PER_GC.intersects(Flags::DEAD));
        assert!(!Flags::PER_GC.intersects(Flags::UNSHARED));
        assert!(!Flags::PER_GC.intersects(Flags::OWNEE));
    }

    #[test]
    fn bits_are_distinct() {
        let all = [
            Flags::MARK,
            Flags::DEAD,
            Flags::UNSHARED,
            Flags::OWNEE,
            Flags::OWNED,
            Flags::REPORTED,
            Flags::OWNER,
            Flags::OLD,
            Flags::REMEMBERED,
        ];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                if i != j {
                    assert!(!a.intersects(*b), "{a:?} overlaps {b:?}");
                }
            }
        }
    }

    #[test]
    fn atomic_fetch_set_reports_previous_bits() {
        let f = AtomicFlags::empty();
        let prev = f.fetch_set(Flags::MARK);
        assert!(prev.is_empty(), "first setter sees the bit clear");
        let prev = f.fetch_set(Flags::MARK | Flags::DEAD);
        assert!(prev.contains(Flags::MARK), "second setter sees it set");
        assert!(!prev.contains(Flags::DEAD));
        assert!(f.contains(Flags::MARK | Flags::DEAD));
        let prev = f.fetch_clear(Flags::MARK);
        assert!(prev.contains(Flags::MARK));
        assert!(!f.contains(Flags::MARK));
        assert!(f.contains(Flags::DEAD));
    }

    #[test]
    fn atomic_clone_and_from_snapshot_bits() {
        let f = AtomicFlags::from(Flags::OWNEE | Flags::OWNER);
        let g = f.clone();
        f.fetch_set(Flags::MARK);
        assert!(f.contains(Flags::MARK));
        assert!(!g.contains(Flags::MARK), "clone is an independent cell");
        assert_eq!(g.load(), Flags::OWNEE | Flags::OWNER);
    }

    #[test]
    fn debug_lists_set_bits() {
        let f = Flags::MARK | Flags::OWNEE;
        let s = format!("{f:?}");
        assert!(s.contains("MARK"));
        assert!(s.contains("OWNEE"));
        assert!(!s.contains("DEAD"));
        assert_eq!(format!("{:?}", Flags::empty()), "Flags(empty)");
    }
}
