//! Property-based tests for the BiBOP heap.
//!
//! Drives the heap through random interleavings of alloc / free / field
//! writes and checks the core invariants against a shadow model:
//!
//! * live-object count and occupied-word accounting stay exact,
//! * freed handles are permanently stale, live handles always resolve,
//! * slot reuse never lets a stale handle observe the new occupant,
//! * field writes are only visible through the written object,
//! * the page-table structural invariants (`Heap::verify`) hold after
//!   arbitrary churn.

use gca_heap::{Flags, Heap, HeapError, ObjRef};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Alloc {
        nrefs: usize,
        data: usize,
    },
    Free {
        victim: usize,
    },
    Write {
        obj: usize,
        field: usize,
        val: usize,
    },
    SetFlag {
        obj: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..6, 0usize..16).prop_map(|(nrefs, data)| Op::Alloc { nrefs, data }),
        (0usize..64).prop_map(|victim| Op::Free { victim }),
        (0usize..64, 0usize..6, 0usize..64).prop_map(|(obj, field, val)| Op::Write {
            obj,
            field,
            val
        }),
        (0usize..64).prop_map(|obj| Op::SetFlag { obj }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn heap_invariants_hold(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut heap = Heap::new();
        let class = heap.register_class("P", &[]);

        // Shadow model: live handles and their expected (nrefs, data) shape.
        let mut live: Vec<ObjRef> = Vec::new();
        let mut shape: HashMap<ObjRef, (usize, usize)> = HashMap::new();
        let mut dead: Vec<ObjRef> = Vec::new();
        let mut expected_words = 0usize;

        for op in ops {
            match op {
                Op::Alloc { nrefs, data } => {
                    let r = heap.alloc(class, nrefs, data).unwrap();
                    prop_assert!(heap.is_valid(r));
                    expected_words += gca_heap::HEADER_WORDS + nrefs + data;
                    live.push(r);
                    shape.insert(r, (nrefs, data));
                }
                Op::Free { victim } => {
                    if live.is_empty() { continue; }
                    let r = live.remove(victim % live.len());
                    let (nrefs, data) = shape.remove(&r).unwrap();
                    let words = heap.free(r).unwrap();
                    prop_assert_eq!(words, gca_heap::HEADER_WORDS + nrefs + data);
                    expected_words -= words;
                    dead.push(r);
                }
                Op::Write { obj, field, val } => {
                    if live.is_empty() { continue; }
                    let o = live[obj % live.len()];
                    let v = live[val % live.len()];
                    let (nrefs, _) = shape[&o];
                    let res = heap.set_ref_field(o, field, v);
                    if field < nrefs {
                        prop_assert!(res.is_ok());
                        prop_assert_eq!(heap.ref_field(o, field).unwrap(), v);
                    } else {
                        let oob = matches!(res, Err(HeapError::FieldOutOfBounds { .. }));
                        prop_assert!(oob);
                    }
                }
                Op::SetFlag { obj } => {
                    if live.is_empty() { continue; }
                    let o = live[obj % live.len()];
                    heap.set_flag(o, Flags::UNSHARED).unwrap();
                    prop_assert!(heap.has_flag(o, Flags::UNSHARED).unwrap());
                }
            }

            // Global invariants after every operation.
            prop_assert_eq!(heap.live_objects(), live.len());
            prop_assert_eq!(heap.occupied_words(), expected_words);
            for &r in &dead {
                prop_assert!(!heap.is_valid(r), "freed handle {r} still valid");
            }
            for &r in &live {
                prop_assert!(heap.is_valid(r), "live handle {r} went stale");
            }
        }

        // The iterator agrees with the model exactly.
        let mut from_iter: Vec<ObjRef> = heap.iter().map(|(r, _)| r).collect();
        let mut expected: Vec<ObjRef> = live.clone();
        from_iter.sort();
        expected.sort();
        prop_assert_eq!(from_iter, expected);

        // Structural invariants survive arbitrary churn. (Manual frees may
        // leave dangling fields behind, which verify reports; everything
        // else must be clean.)
        let problems = heap.verify();
        for p in &problems {
            prop_assert!(p.contains("dangling"), "unexpected problem: {}", p);
        }
    }

    #[test]
    fn alloc_free_alloc_reuses_slots_without_growth(n in 1usize..60) {
        let mut heap = Heap::new();
        let class = heap.register_class("Q", &[]);
        let first: Vec<ObjRef> = (0..n).map(|_| heap.alloc(class, 1, 1).unwrap()).collect();
        let peak_pages = heap.page_count();
        for r in &first {
            heap.free(*r).unwrap();
        }
        let second: Vec<ObjRef> = (0..n).map(|_| heap.alloc(class, 1, 1).unwrap()).collect();
        // Same-class churn must recycle pages: the BiBOP table reuses
        // every vacated slot before opening a new page.
        prop_assert_eq!(heap.page_count(), peak_pages);
        prop_assert_eq!(heap.index_bound(), peak_pages * gca_heap::PAGE_SLOTS);
        for r in &first {
            prop_assert!(!heap.is_valid(*r));
        }
        for r in &second {
            prop_assert!(heap.is_valid(*r));
        }
    }
}
