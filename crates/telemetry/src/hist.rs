//! Log-scale latency histogram.

/// Number of log₂ buckets: one per possible bit length of a `u64` sample,
/// plus bucket 0 for the value zero.
pub(crate) const BUCKETS: usize = 64;

/// A latency histogram with logarithmic (power-of-two) buckets over
/// nanosecond samples.
///
/// Bucket `i` (for `i > 0`) holds samples whose value lies in
/// `[2^(i-1), 2^i)`; bucket `0` holds exact zeros. This gives ~2× relative
/// resolution over the full `u64` range with a fixed 64-slot footprint and
/// no allocation on the recording path — GC pauses spanning five orders of
/// magnitude (microseconds to hundreds of milliseconds) stay legible.
///
/// # Example
///
/// ```
/// use gca_telemetry::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// h.record_ns(700);   // bucket 10: [512, 1024)
/// h.record_ns(900);   // bucket 10
/// h.record_ns(5_000); // bucket 13: [4096, 8192)
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.sum_ns(), 6_600);
/// assert_eq!(h.bucket_counts()[10], 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// The bucket index a nanosecond sample falls into (the sample's bit
    /// length, clamped so the final bucket absorbs the top of the range).
    pub fn bucket_index(ns: u64) -> usize {
        ((64 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// The inclusive upper bound of bucket `i` (`2^i - 1`; the final
    /// bucket saturates to `u64::MAX`).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one nanosecond sample.
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[Self::bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The per-bucket sample counts (index = bit length of the sample).
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Index of the highest non-empty bucket, or `None` when empty.
    pub fn max_bucket(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound (in nanoseconds) of the bucket holding the requested
    /// quantile, with the quantile given as an integer percentage
    /// (`50` = p50, `99` = p99, clamped to 1..=100). Returns 0 when the
    /// histogram is empty.
    ///
    /// Because buckets are log₂-sized the answer is the quantile rounded
    /// *up* to its bucket boundary — a conservative (never understated)
    /// figure, which is the right direction for SLO reporting.
    pub fn quantile_ns(&self, percent: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let percent = percent.clamp(1, 100);
        // Rank of the quantile sample, 1-based, rounded up.
        let rank = (self.count * percent).div_ceil(100).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        Self::bucket_upper_bound(BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_goes_to_bucket_zero() {
        let mut h = LatencyHistogram::new();
        h.record_ns(0);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum_ns(), 0);
        assert_eq!(h.max_bucket(), Some(0));
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(LatencyHistogram::bucket_index(1), 1);
        assert_eq!(LatencyHistogram::bucket_index(2), 2);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 3);
        assert_eq!(LatencyHistogram::bucket_index(1023), 10);
        assert_eq!(LatencyHistogram::bucket_index(1024), 11);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn extreme_sample_lands_in_last_bucket() {
        let mut h = LatencyHistogram::new();
        h.record_ns(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max_bucket(), Some(BUCKETS - 1));
        assert_eq!(h.sum_ns(), u64::MAX);
        h.record_ns(u64::MAX); // sum saturates instead of wrapping
        assert_eq!(h.sum_ns(), u64::MAX);
    }

    #[test]
    fn upper_bounds() {
        assert_eq!(LatencyHistogram::bucket_upper_bound(0), 0);
        assert_eq!(LatencyHistogram::bucket_upper_bound(10), 1023);
        assert_eq!(LatencyHistogram::bucket_upper_bound(63), u64::MAX);
        assert_eq!(LatencyHistogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn quantiles_round_up_to_bucket_bounds() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(50), 0, "empty histogram");
        for _ in 0..90 {
            h.record_ns(700); // bucket 10: [512, 1024)
        }
        for _ in 0..10 {
            h.record_ns(5_000); // bucket 13: [4096, 8192)
        }
        assert_eq!(h.quantile_ns(50), 1023);
        assert_eq!(h.quantile_ns(90), 1023);
        assert_eq!(h.quantile_ns(99), 8191);
        assert_eq!(h.quantile_ns(100), 8191);
        // Out-of-range quantiles clamp instead of panicking.
        assert_eq!(h.quantile_ns(0), 1023);
        assert_eq!(h.quantile_ns(700), 8191);
    }

    #[test]
    fn mean_and_empty() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean_ns(), 0);
        h.record_ns(10);
        h.record_ns(30);
        assert_eq!(h.mean_ns(), 20);
        assert!(!h.is_empty());
    }
}
