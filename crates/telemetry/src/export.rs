//! Telemetry exporters: JSON-lines and Prometheus-style text.
//!
//! Both formats are hand-rolled (the crate is dependency-free) and fully
//! deterministic: keys are emitted in a fixed order and times are integer
//! nanoseconds, so a [`CycleRecord`] survives a write/parse round trip
//! bit-for-bit. The JSONL parser is defensive — truncated or corrupt input
//! yields a [`TelemetryParseError`], never a panic — because benchmark
//! artifacts get concatenated, grepped and truncated by shell pipelines.

use std::fmt;

use crate::attr::{AssertionKind, AssertionOverhead, KindOverhead};
use crate::census::{CensusData, CensusEntry, DriftScope, HeapCensus};
use crate::hist::LatencyHistogram;
use crate::record::{CycleKind, CycleRecord, GcPhase, GcTelemetry};

/// One parsed JSONL line: the cycle record plus its optional benchmark
/// label and — for fleet (multi-VM) logs — the shard that produced it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JsonlRecord {
    /// The `"bench"` label the line carried, if any.
    pub bench: Option<String>,
    /// The `"shard"` index the line carried, if any (fleet logs only).
    pub shard: Option<u64>,
    /// The cycle record itself.
    pub record: CycleRecord,
}

/// A JSONL decode failure. Line numbers are 1-based.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryParseError {
    /// The line ended in the middle of a value.
    Truncated {
        /// 1-based line number of the offending line.
        line: usize,
    },
    /// An unexpected byte at a known offset.
    Unexpected {
        /// 1-based line number of the offending line.
        line: usize,
        /// Byte offset within the line.
        offset: usize,
    },
    /// A known field held a value of the wrong JSON type.
    WrongType {
        /// 1-based line number of the offending line.
        line: usize,
        /// The field whose value had the wrong type.
        field: &'static str,
    },
}

impl fmt::Display for TelemetryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryParseError::Truncated { line } => {
                write!(f, "line {line}: truncated record")
            }
            TelemetryParseError::Unexpected { line, offset } => {
                write!(f, "line {line}: unexpected byte at offset {offset}")
            }
            TelemetryParseError::WrongType { line, field } => {
                write!(f, "line {line}: field {field:?} has the wrong type")
            }
        }
    }
}

impl std::error::Error for TelemetryParseError {}

// ---------------------------------------------------------------------------
// JSONL writer
// ---------------------------------------------------------------------------

fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_kind_overhead(out: &mut String, label: &str, k: &KindOverhead) {
    out.push('"');
    out.push_str(label);
    out.push_str("\":{");
    out.push_str(&format!(
        "\"registered\":{},\"header_bit_checks\":{},\"counter_bumps\":{},\
         \"extra_edges_traced\":{},\"phase_work\":{}",
        k.registered, k.header_bit_checks, k.counter_bumps, k.extra_edges_traced, k.phase_work
    ));
    out.push('}');
}

fn push_census_entries(out: &mut String, key: &str, entries: &[CensusEntry]) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        escape_json(&e.name, out);
        out.push_str(&format!(
            ",\"objects\":{},\"bytes\":{}}}",
            e.objects, e.bytes
        ));
    }
    out.push(']');
}

/// Serializes one cycle record as a single JSON object (no trailing
/// newline). Keys appear in a fixed order; the `"bench"` label is emitted
/// first when present; the `"overhead"` object lists only kinds that did
/// work (an all-zero attribution serializes as `"overhead":{}`); the
/// `"census"` object is emitted only when the record carries one.
pub fn record_to_json(record: &CycleRecord, bench: Option<&str>) -> String {
    record_to_json_tagged(record, bench, None)
}

/// As [`record_to_json`], additionally tagging the line with the shard
/// index that produced it (emitted right after `"bench"`). Fleet soak
/// logs use this so per-shard streams stay attributable after merging.
pub fn record_to_json_tagged(
    record: &CycleRecord,
    bench: Option<&str>,
    shard: Option<u64>,
) -> String {
    let mut out = String::with_capacity(256);
    out.push('{');
    if let Some(b) = bench {
        out.push_str("\"bench\":");
        escape_json(b, &mut out);
        out.push(',');
    }
    if let Some(s) = shard {
        out.push_str(&format!("\"shard\":{s},"));
    }
    out.push_str(&format!(
        "\"seq\":{},\"kind\":\"{}\",\"total_ns\":{},\"pre_root_ns\":{},\
         \"mark_ns\":{},\"sweep_ns\":{},\"objects_marked\":{},\"edges_traced\":{},\
         \"pre_root_edges\":{},\"objects_swept\":{},\"words_swept\":{},\
         \"promoted\":{},\"violations\":{}",
        record.seq,
        record.kind.label(),
        record.total_ns,
        record.pre_root_ns,
        record.mark_ns,
        record.sweep_ns,
        record.objects_marked,
        record.edges_traced,
        record.pre_root_edges,
        record.objects_swept,
        record.words_swept,
        record.promoted,
        record.violations,
    ));
    out.push_str(",\"worker_mark_ns\":[");
    for (i, ns) in record.worker_mark_ns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&ns.to_string());
    }
    out.push_str("],\"overhead\":{");
    let mut first = true;
    for kind in AssertionKind::ALL {
        let k = record.overhead.kind(kind);
        if k.is_zero() {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        push_kind_overhead(&mut out, kind.label(), k);
    }
    out.push('}');
    if let Some(census) = &record.census {
        out.push_str(",\"census\":{");
        push_census_entries(&mut out, "classes", &census.classes);
        out.push(',');
        push_census_entries(&mut out, "sites", &census.sites);
        out.push('}');
    }
    out.push('}');
    out
}

/// Serializes records as JSON lines — one object per line, trailing
/// newline after each — optionally labelling every line with a benchmark
/// name.
pub fn records_to_jsonl(records: &[CycleRecord], bench: Option<&str>) -> String {
    records_to_jsonl_tagged(records, bench, None)
}

/// As [`records_to_jsonl`], tagging every line with a shard index.
pub fn records_to_jsonl_tagged(
    records: &[CycleRecord],
    bench: Option<&str>,
    shard: Option<u64>,
) -> String {
    let mut out = String::new();
    for record in records {
        out.push_str(&record_to_json_tagged(record, bench, shard));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// JSONL parser — minimal recursive-descent JSON, defensive by design
// ---------------------------------------------------------------------------

/// The subset of JSON values the telemetry schema uses.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Str(String),
    /// All schema numbers are unsigned integers; anything else (floats,
    /// negatives) is decoded as `Null` so known fields reject it as a
    /// wrong type instead of silently truncating.
    Int(u64),
    Arr(Vec<Val>),
    Obj(Vec<(String, Val)>),
    Bool(bool),
    Null,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

const MAX_DEPTH: usize = 16;

impl<'a> Parser<'a> {
    fn new(s: &'a str, line: usize) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
            line,
        }
    }

    fn truncated(&self) -> TelemetryParseError {
        TelemetryParseError::Truncated { line: self.line }
    }

    fn unexpected(&self) -> TelemetryParseError {
        TelemetryParseError::Unexpected {
            line: self.line,
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), TelemetryParseError> {
        match self.peek() {
            Some(got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            Some(_) => Err(self.unexpected()),
            None => Err(self.truncated()),
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Val, TelemetryParseError> {
        if depth > MAX_DEPTH {
            return Err(self.unexpected());
        }
        self.skip_ws();
        match self.peek() {
            None => Err(self.truncated()),
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => self.parse_string().map(Val::Str),
            Some(b't') => self.parse_keyword("true", Val::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Val::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Val::Null),
            Some(b'0'..=b'9') => self.parse_number(),
            Some(b'-') => {
                // Negative numbers are outside the schema: consume and
                // surface as Null so typed lookups reject them.
                self.pos += 1;
                self.parse_number()?;
                Ok(Val::Null)
            }
            Some(_) => Err(self.unexpected()),
        }
    }

    fn parse_keyword(&mut self, word: &str, val: Val) -> Result<Val, TelemetryParseError> {
        let end = self.pos + word.len();
        if end > self.bytes.len() {
            return Err(self.truncated());
        }
        if &self.bytes[self.pos..end] == word.as_bytes() {
            self.pos = end;
            Ok(val)
        } else {
            Err(self.unexpected())
        }
    }

    fn parse_number(&mut self) -> Result<Val, TelemetryParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return match self.peek() {
                None => Err(self.truncated()),
                Some(_) => Err(self.unexpected()),
            };
        }
        // A fraction or exponent makes this a float — outside the schema.
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(
                self.peek(),
                Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E')
            ) {
                self.pos += 1;
            }
            return Ok(Val::Null);
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        match text.parse::<u64>() {
            Ok(n) => Ok(Val::Int(n)),
            Err(_) => Ok(Val::Null), // overflow: treat as untyped
        }
    }

    fn parse_string(&mut self) -> Result<String, TelemetryParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.truncated()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        None => return Err(self.truncated()),
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.truncated());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.unexpected())?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| self.unexpected())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        Some(_) => return Err(self.unexpected()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 is valid inside strings; advance by
                    // whole characters using the source str's boundaries.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.unexpected())?;
                    let c = rest.chars().next().ok_or_else(|| self.truncated())?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Val, TelemetryParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Val::Arr(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Val::Arr(items));
                }
                Some(_) => return Err(self.unexpected()),
                None => return Err(self.truncated()),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Val, TelemetryParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Val::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Val::Obj(fields));
                }
                Some(_) => return Err(self.unexpected()),
                None => return Err(self.truncated()),
            }
        }
    }
}

fn get<'v>(obj: &'v [(String, Val)], key: &str) -> Option<&'v Val> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_u64(
    obj: &[(String, Val)],
    key: &'static str,
    line: usize,
) -> Result<u64, TelemetryParseError> {
    match get(obj, key) {
        None => Ok(0),
        Some(Val::Int(n)) => Ok(*n),
        Some(_) => Err(TelemetryParseError::WrongType { line, field: key }),
    }
}

fn decode_kind_overhead(val: &Val, line: usize) -> Result<KindOverhead, TelemetryParseError> {
    let Val::Obj(fields) = val else {
        return Err(TelemetryParseError::WrongType {
            line,
            field: "overhead",
        });
    };
    Ok(KindOverhead {
        registered: get_u64(fields, "registered", line)?,
        header_bit_checks: get_u64(fields, "header_bit_checks", line)?,
        counter_bumps: get_u64(fields, "counter_bumps", line)?,
        extra_edges_traced: get_u64(fields, "extra_edges_traced", line)?,
        phase_work: get_u64(fields, "phase_work", line)?,
    })
}

fn decode_census_entries(val: &Val, line: usize) -> Result<Vec<CensusEntry>, TelemetryParseError> {
    let Val::Arr(items) = val else {
        return Err(TelemetryParseError::WrongType {
            line,
            field: "census",
        });
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let Val::Obj(fields) = item else {
            return Err(TelemetryParseError::WrongType {
                line,
                field: "census",
            });
        };
        let name = match get(fields, "name") {
            Some(Val::Str(s)) => s.clone(),
            _ => {
                return Err(TelemetryParseError::WrongType {
                    line,
                    field: "census",
                })
            }
        };
        out.push(CensusEntry {
            name,
            objects: get_u64(fields, "objects", line)?,
            bytes: get_u64(fields, "bytes", line)?,
        });
    }
    Ok(out)
}

fn decode_census(val: &Val, line: usize) -> Result<CensusData, TelemetryParseError> {
    let Val::Obj(fields) = val else {
        return Err(TelemetryParseError::WrongType {
            line,
            field: "census",
        });
    };
    let classes = match get(fields, "classes") {
        None => Vec::new(),
        Some(v) => decode_census_entries(v, line)?,
    };
    let sites = match get(fields, "sites") {
        None => Vec::new(),
        Some(v) => decode_census_entries(v, line)?,
    };
    Ok(CensusData { classes, sites })
}

fn decode_record(
    fields: &[(String, Val)],
    line: usize,
) -> Result<JsonlRecord, TelemetryParseError> {
    let bench = match get(fields, "bench") {
        None | Some(Val::Null) => None,
        Some(Val::Str(s)) => Some(s.clone()),
        Some(_) => {
            return Err(TelemetryParseError::WrongType {
                line,
                field: "bench",
            })
        }
    };
    let shard = match get(fields, "shard") {
        None | Some(Val::Null) => None,
        Some(Val::Int(n)) => Some(*n),
        Some(_) => {
            return Err(TelemetryParseError::WrongType {
                line,
                field: "shard",
            })
        }
    };
    let kind = match get(fields, "kind") {
        None => CycleKind::Major,
        Some(Val::Str(s)) if s == "major" => CycleKind::Major,
        Some(Val::Str(s)) if s == "minor" => CycleKind::Minor,
        Some(_) => {
            return Err(TelemetryParseError::WrongType {
                line,
                field: "kind",
            })
        }
    };
    let worker_mark_ns = match get(fields, "worker_mark_ns") {
        None => Vec::new(),
        Some(Val::Arr(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Val::Int(n) => out.push(*n),
                    _ => {
                        return Err(TelemetryParseError::WrongType {
                            line,
                            field: "worker_mark_ns",
                        })
                    }
                }
            }
            out
        }
        Some(_) => {
            return Err(TelemetryParseError::WrongType {
                line,
                field: "worker_mark_ns",
            })
        }
    };
    let mut overhead = AssertionOverhead::default();
    match get(fields, "overhead") {
        None => {}
        Some(Val::Obj(kinds)) => {
            for kind in AssertionKind::ALL {
                if let Some(val) = get(kinds, kind.label()) {
                    *overhead.kind_mut(kind) = decode_kind_overhead(val, line)?;
                }
            }
        }
        Some(_) => {
            return Err(TelemetryParseError::WrongType {
                line,
                field: "overhead",
            })
        }
    }
    let census = match get(fields, "census") {
        None | Some(Val::Null) => None,
        Some(v) => Some(decode_census(v, line)?),
    };
    Ok(JsonlRecord {
        bench,
        shard,
        record: CycleRecord {
            seq: get_u64(fields, "seq", line)?,
            kind,
            total_ns: get_u64(fields, "total_ns", line)?,
            pre_root_ns: get_u64(fields, "pre_root_ns", line)?,
            mark_ns: get_u64(fields, "mark_ns", line)?,
            sweep_ns: get_u64(fields, "sweep_ns", line)?,
            objects_marked: get_u64(fields, "objects_marked", line)?,
            edges_traced: get_u64(fields, "edges_traced", line)?,
            pre_root_edges: get_u64(fields, "pre_root_edges", line)?,
            objects_swept: get_u64(fields, "objects_swept", line)?,
            words_swept: get_u64(fields, "words_swept", line)?,
            promoted: get_u64(fields, "promoted", line)?,
            violations: get_u64(fields, "violations", line)?,
            worker_mark_ns,
            overhead,
            census,
        },
    })
}

/// Parses JSONL telemetry text back into records. Blank lines are
/// skipped; unknown keys are ignored (forward compatibility); any
/// malformed line yields an error naming the 1-based line number. Never
/// panics, whatever the input.
pub fn parse_jsonl(text: &str) -> Result<Vec<JsonlRecord>, TelemetryParseError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let mut parser = Parser::new(raw, line);
        let value = parser.parse_value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.unexpected());
        }
        let Val::Obj(fields) = value else {
            return Err(TelemetryParseError::WrongType {
                line,
                field: "<record>",
            });
        };
        out.push(decode_record(&fields, line)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Prometheus exporter
// ---------------------------------------------------------------------------

/// Formats nanoseconds as decimal seconds with full nanosecond precision
/// using only integer arithmetic, so output is deterministic across
/// platforms (no float formatting).
fn ns_as_seconds(ns: u64) -> String {
    format!("{}.{:09}", ns / 1_000_000_000, ns % 1_000_000_000)
}

/// Escapes a Prometheus label *value* per the text exposition format:
/// backslash, double-quote and newline become `\\`, `\"` and `\n`;
/// everything else (including other control characters and UTF-8) passes
/// through verbatim. Shared by the telemetry, census and fleet renderers
/// so hostile class/site names can never break a scrape.
pub fn prom_escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders one `key="value"` label pair with the value escaped.
pub fn prom_label(key: &str, value: &str) -> String {
    format!("{key}=\"{}\"", prom_escape_label(value))
}

/// Joins a pre-rendered label prefix (e.g. `shard="3"`) with a family's
/// own labels into a `{...}` label set; empty when both parts are empty,
/// so unlabelled single-VM output keeps its historical shape.
fn labelset(prefix: &str, rest: &str) -> String {
    match (prefix.is_empty(), rest.is_empty()) {
        (true, true) => String::new(),
        (false, true) => format!("{{{prefix}}}"),
        (true, false) => format!("{{{rest}}}"),
        (false, false) => format!("{{{prefix},{rest}}}"),
    }
}

fn push_help_type(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str(&format!("# HELP {name} {help}\n"));
    out.push_str(&format!("# TYPE {name} {kind}\n"));
}

/// Emits one histogram's sample lines (`_bucket`/`_sum`/`_count`, no
/// HELP/TYPE headers) with `prefix` merged into every label set. Buckets
/// are emitted up to the highest non-empty one, then `+Inf`.
pub fn push_histogram_series(out: &mut String, name: &str, hist: &LatencyHistogram, prefix: &str) {
    let mut cumulative = 0u64;
    if let Some(max) = hist.max_bucket() {
        for (i, &c) in hist.bucket_counts().iter().enumerate().take(max + 1) {
            cumulative += c;
            let le = LatencyHistogram::bucket_upper_bound(i);
            let ls = labelset(prefix, &format!("le=\"{}\"", ns_as_seconds(le)));
            out.push_str(&format!("{name}_bucket{ls} {cumulative}\n"));
        }
    }
    let ls = labelset(prefix, "le=\"+Inf\"");
    out.push_str(&format!("{name}_bucket{ls} {}\n", hist.count()));
    let ls = labelset(prefix, "");
    out.push_str(&format!(
        "{name}_sum{ls} {}\n",
        ns_as_seconds(hist.sum_ns())
    ));
    out.push_str(&format!("{name}_count{ls} {}\n", hist.count()));
}

/// Emits one histogram metric family: HELP/TYPE headers once, then one
/// series per `(label-prefix, histogram)` pair. Used by the fleet
/// exporter (one series per shard) and by external consumers (the soak
/// harness's request-latency histograms).
pub fn push_histogram_family(
    out: &mut String,
    name: &str,
    help: &str,
    series: &[(String, &LatencyHistogram)],
) {
    push_help_type(out, name, help, "histogram");
    for (prefix, hist) in series {
        push_histogram_series(out, name, hist, prefix);
    }
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Metrics:
/// * `gca_gc_cycles_total`, `gca_gc_minor_cycles_total`,
///   `gca_gc_violations_total` — plain counters.
/// * `gca_gc_phase_seconds_total{phase=...}` — cumulative wall time per
///   phase (`pre_root`, `mark`, `sweep`, `minor`).
/// * `gca_gc_worker_mark_seconds_total{worker="i"}` — cumulative mark-phase
///   busy time per tracing worker.
/// * `gca_assertion_overhead_total{kind=...,metric=...}` — the full 5×5
///   attribution matrix (all cells emitted, including zeros, so scrapes
///   have a stable shape).
/// * `gca_gc_pause_seconds` — log₂-bucketed major-pause histogram
///   (`_bucket`/`_sum`/`_count`), buckets emitted up to the highest
///   non-empty one.
pub fn to_prometheus(t: &GcTelemetry) -> String {
    let mut out = String::with_capacity(2048);
    push_telemetry_families(&mut out, &[(String::new(), t)]);
    out
}

/// Emits every telemetry metric family: HELP/TYPE once per family, then
/// one series per `(label-prefix, snapshot)` pair. With a single empty
/// prefix this is exactly the historical [`to_prometheus`] output; the
/// fleet exporter passes one `shard="i"` prefix per shard.
fn push_telemetry_families(out: &mut String, shards: &[(String, &GcTelemetry)]) {
    push_help_type(
        out,
        "gca_gc_cycles_total",
        "Major collection cycles observed.",
        "counter",
    );
    for (p, t) in shards {
        out.push_str(&format!(
            "gca_gc_cycles_total{} {}\n",
            labelset(p, ""),
            t.cycles()
        ));
    }

    push_help_type(
        out,
        "gca_gc_minor_cycles_total",
        "Minor collection cycles observed.",
        "counter",
    );
    for (p, t) in shards {
        out.push_str(&format!(
            "gca_gc_minor_cycles_total{} {}\n",
            labelset(p, ""),
            t.minor_cycles()
        ));
    }

    push_help_type(
        out,
        "gca_gc_violations_total",
        "Assertion violations detected.",
        "counter",
    );
    for (p, t) in shards {
        out.push_str(&format!(
            "gca_gc_violations_total{} {}\n",
            labelset(p, ""),
            t.violations()
        ));
    }

    push_help_type(
        out,
        "gca_gc_phase_seconds_total",
        "Cumulative wall time per GC phase.",
        "counter",
    );
    for (p, t) in shards {
        for phase in GcPhase::ALL {
            out.push_str(&format!(
                "gca_gc_phase_seconds_total{} {}\n",
                labelset(p, &format!("phase=\"{}\"", phase.label())),
                ns_as_seconds(t.phase_total(phase).as_nanos() as u64)
            ));
        }
    }

    push_help_type(
        out,
        "gca_gc_worker_mark_seconds_total",
        "Cumulative mark-phase busy time per worker.",
        "counter",
    );
    for (p, t) in shards {
        for (i, &ns) in t.worker_mark_ns().iter().enumerate() {
            out.push_str(&format!(
                "gca_gc_worker_mark_seconds_total{} {}\n",
                labelset(p, &format!("worker=\"{i}\"")),
                ns_as_seconds(ns)
            ));
        }
    }

    push_help_type(
        out,
        "gca_assertion_overhead_total",
        "Assertion-checking work units by kind and mechanism.",
        "counter",
    );
    for (p, t) in shards {
        for kind in AssertionKind::ALL {
            let k = t.overhead().kind(kind);
            let cells = [
                ("registered", k.registered),
                ("header_bit_checks", k.header_bit_checks),
                ("counter_bumps", k.counter_bumps),
                ("extra_edges_traced", k.extra_edges_traced),
                ("phase_work", k.phase_work),
            ];
            for (metric, value) in cells {
                out.push_str(&format!(
                    "gca_assertion_overhead_total{} {value}\n",
                    labelset(p, &format!("kind=\"{}\",metric=\"{metric}\"", kind.label()))
                ));
            }
        }
    }

    push_help_type(
        out,
        "gca_gc_pause_seconds",
        "Log2-bucketed pause time histogram (seconds).",
        "histogram",
    );
    for (p, t) in shards {
        push_histogram_series(out, "gca_gc_pause_seconds", t.pause_histogram(), p);
    }
}

/// Emits every census metric family, HELP/TYPE once per family, one
/// series set per `(label-prefix, census)` pair. Class, site and drift
/// names are escaped with [`prom_escape_label`] — a hostile name
/// (backslashes, quotes, embedded newlines) must never corrupt a scrape.
pub(crate) fn push_census_families(out: &mut String, shards: &[(String, &HeapCensus)]) {
    push_help_type(
        out,
        "gca_census_cycles_total",
        "Major census cycles recorded.",
        "counter",
    );
    for (p, c) in shards {
        out.push_str(&format!(
            "gca_census_cycles_total{} {}\n",
            labelset(p, ""),
            c.cycles()
        ));
    }
    push_help_type(
        out,
        "gca_census_minor_cycles_total",
        "Minor census cycles recorded.",
        "counter",
    );
    for (p, c) in shards {
        out.push_str(&format!(
            "gca_census_minor_cycles_total{} {}\n",
            labelset(p, ""),
            c.minor_cycles()
        ));
    }

    push_help_type(
        out,
        "gca_census_live_objects",
        "Live objects per class, latest major census (top classes by bytes).",
        "gauge",
    );
    for (p, c) in shards {
        if let Some(latest) = c.latest() {
            for e in latest.data.top_classes_by_bytes(crate::census::PROM_TOP_N) {
                out.push_str(&format!(
                    "gca_census_live_objects{} {}\n",
                    labelset(p, &prom_label("class", &e.name)),
                    e.objects
                ));
            }
        }
    }
    push_help_type(
        out,
        "gca_census_live_bytes",
        "Live bytes per class, latest major census (top classes by bytes).",
        "gauge",
    );
    for (p, c) in shards {
        if let Some(latest) = c.latest() {
            for e in latest.data.top_classes_by_bytes(crate::census::PROM_TOP_N) {
                out.push_str(&format!(
                    "gca_census_live_bytes{} {}\n",
                    labelset(p, &prom_label("class", &e.name)),
                    e.bytes
                ));
            }
        }
    }
    push_help_type(
        out,
        "gca_census_site_live_bytes",
        "Live bytes per allocation site, latest major census (top sites by bytes).",
        "gauge",
    );
    for (p, c) in shards {
        if let Some(latest) = c.latest() {
            for e in latest.data.top_sites_by_bytes(crate::census::PROM_TOP_N) {
                out.push_str(&format!(
                    "gca_census_site_live_bytes{} {}\n",
                    labelset(p, &prom_label("site", &e.name)),
                    e.bytes
                ));
            }
        }
    }

    push_help_type(
        out,
        "gca_census_drifting_keys",
        "Classes and sites currently flagged as drifting.",
        "gauge",
    );
    for (p, c) in shards {
        out.push_str(&format!(
            "gca_census_drifting_keys{} {}\n",
            labelset(p, ""),
            c.drifts().len()
        ));
    }
    push_help_type(
        out,
        "gca_census_drift",
        "Keys flagged as drifting (value = last observed live objects).",
        "gauge",
    );
    for (p, c) in shards {
        for d in c.drifts() {
            out.push_str(&format!(
                "gca_census_drift{} {}\n",
                labelset(
                    p,
                    &format!(
                        "scope=\"{}\",{}",
                        d.scope.label(),
                        prom_label("name", &d.name)
                    )
                ),
                d.last_objects
            ));
        }
    }
    push_help_type(
        out,
        "gca_census_suggested_instance_limit",
        "Data-derived assert-instances limit for drifted classes.",
        "gauge",
    );
    for (p, c) in shards {
        for d in c.drifts() {
            if d.scope == DriftScope::Class {
                out.push_str(&format!(
                    "gca_census_suggested_instance_limit{} {}\n",
                    labelset(p, &prom_label("class", &d.name)),
                    d.suggested_limit
                ));
            }
        }
    }
}

/// One shard's exportable state for [`fleet_to_prometheus`].
#[derive(Debug)]
pub struct ShardExport<'a> {
    /// The `shard` label value (conventionally the shard index).
    pub shard: String,
    /// The shard's telemetry snapshot.
    pub telemetry: &'a GcTelemetry,
    /// The shard's census snapshot, when census is enabled.
    pub census: Option<&'a HeapCensus>,
}

/// Renders a whole fleet's telemetry (and census, where enabled) in the
/// Prometheus text exposition format: HELP/TYPE once per metric family,
/// then one series per shard carrying a `shard="i"` label merged into the
/// family's own labels. This is the `/metrics` payload of the soak
/// harness's scrape endpoint.
pub fn fleet_to_prometheus(shards: &[ShardExport<'_>]) -> String {
    let mut out = String::with_capacity(4096 * shards.len().max(1));
    let tel: Vec<(String, &GcTelemetry)> = shards
        .iter()
        .map(|s| (prom_label("shard", &s.shard), s.telemetry))
        .collect();
    push_telemetry_families(&mut out, &tel);
    let cens: Vec<(String, &HeapCensus)> = shards
        .iter()
        .filter_map(|s| s.census.map(|c| (prom_label("shard", &s.shard), c)))
        .collect();
    if !cens.is_empty() {
        push_census_families(&mut out, &cens);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> CycleRecord {
        let mut overhead = AssertionOverhead::default();
        overhead.dead.registered = 4;
        overhead.dead.header_bit_checks = 9;
        overhead.owned_by.phase_work = 12;
        overhead.owned_by.extra_edges_traced = 31;
        CycleRecord {
            seq: 7,
            kind: CycleKind::Major,
            total_ns: 123_456,
            pre_root_ns: 1_000,
            mark_ns: 100_000,
            sweep_ns: 22_456,
            objects_marked: 512,
            edges_traced: 777,
            pre_root_edges: 31,
            objects_swept: 44,
            words_swept: 440,
            promoted: 0,
            violations: 2,
            worker_mark_ns: vec![60_000, 40_000],
            overhead,
            census: None,
        }
    }

    #[test]
    fn roundtrip_single_record() {
        let rec = sample_record();
        let text = records_to_jsonl(std::slice::from_ref(&rec), Some("bh"));
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].bench.as_deref(), Some("bh"));
        assert_eq!(parsed[0].record, rec);
    }

    #[test]
    fn shard_tag_roundtrips_and_is_absent_by_default() {
        let rec = sample_record();
        let plain = record_to_json(&rec, Some("bh"));
        assert!(!plain.contains("\"shard\""));
        let tagged = record_to_json_tagged(&rec, Some("bh"), Some(3));
        assert!(tagged.starts_with("{\"bench\":\"bh\",\"shard\":3,\"seq\":"));
        let parsed = parse_jsonl(&tagged).unwrap();
        assert_eq!(parsed[0].shard, Some(3));
        assert_eq!(parsed[0].bench.as_deref(), Some("bh"));
        assert_eq!(parsed[0].record, rec);
        // Without a bench label the shard still leads the record.
        let bare = record_to_json_tagged(&rec, None, Some(0));
        assert!(bare.starts_with("{\"shard\":0,\"seq\":"));
        let parsed = parse_jsonl(&bare).unwrap();
        assert_eq!(parsed[0].shard, Some(0));
        assert_eq!(parsed[0].bench, None);
        // A wrong-typed shard errors cleanly.
        assert!(parse_jsonl("{\"shard\":\"x\",\"seq\":1}").is_err());
    }

    #[test]
    fn fleet_jsonl_merge_stays_attributable() {
        let recs = [sample_record(), CycleRecord::default()];
        let mut merged = String::new();
        for (shard, rec) in recs.iter().enumerate() {
            merged.push_str(&records_to_jsonl_tagged(
                std::slice::from_ref(rec),
                Some("soak"),
                Some(shard as u64),
            ));
        }
        let parsed = parse_jsonl(&merged).unwrap();
        assert_eq!(parsed.len(), 2);
        for (i, line) in parsed.iter().enumerate() {
            assert_eq!(line.shard, Some(i as u64));
            assert_eq!(line.record, recs[i]);
        }
    }

    #[test]
    fn roundtrip_without_bench_label() {
        let rec = sample_record();
        let text = records_to_jsonl(std::slice::from_ref(&rec), None);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed[0].bench, None);
        assert_eq!(parsed[0].record, rec);
    }

    #[test]
    fn census_roundtrips_and_is_absent_by_default() {
        let mut rec = sample_record();
        assert!(!record_to_json(&rec, None).contains("\"census\""));
        rec.census = Some(CensusData {
            classes: vec![
                CensusEntry {
                    name: "Node".into(),
                    objects: 12,
                    bytes: 480,
                },
                CensusEntry {
                    name: "we\"ird".into(),
                    objects: 1,
                    bytes: 8,
                },
            ],
            sites: vec![CensusEntry {
                name: "loop:3".into(),
                objects: 7,
                bytes: 56,
            }],
        });
        let text = records_to_jsonl(std::slice::from_ref(&rec), Some("bh"));
        assert!(text.contains("\"census\":{\"classes\":[{\"name\":\"Node\""));
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed[0].record, rec);
        // An empty census is still Some and survives the round trip.
        rec.census = Some(CensusData::default());
        let parsed = parse_jsonl(&records_to_jsonl(std::slice::from_ref(&rec), None)).unwrap();
        assert_eq!(parsed[0].record.census, Some(CensusData::default()));
        // Malformed census values error cleanly.
        for bad in [
            "{\"census\":[]}",
            "{\"census\":{\"classes\":7}}",
            "{\"census\":{\"classes\":[{\"objects\":1}]}}",
            "{\"census\":{\"classes\":[{\"name\":\"x\",\"objects\":\"y\"}]}}",
        ] {
            assert!(parse_jsonl(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn zero_overhead_serializes_empty_object() {
        let rec = CycleRecord::default();
        let json = record_to_json(&rec, None);
        assert!(json.contains("\"overhead\":{}"));
        let parsed = parse_jsonl(&json).unwrap();
        assert!(parsed[0].record.overhead.is_zero());
    }

    #[test]
    fn bench_label_is_escaped() {
        let rec = CycleRecord::default();
        let text = records_to_jsonl(std::slice::from_ref(&rec), Some("we\"ird\\name\n"));
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed[0].bench.as_deref(), Some("we\"ird\\name\n"));
    }

    #[test]
    fn truncated_lines_error_not_panic() {
        let full = record_to_json(&sample_record(), Some("bh"));
        for cut in 1..full.len() {
            if !full.is_char_boundary(cut) {
                continue;
            }
            let r = parse_jsonl(&full[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes should not parse");
        }
    }

    #[test]
    fn corrupt_bytes_error_not_panic() {
        for garbage in [
            "{",
            "}",
            "[",
            "null",
            "42",
            "\"str\"",
            "{\"seq\":}",
            "{\"seq\":1,}",
            "{\"seq\":-1}",
            "{\"seq\":1.5}",
            "{\"seq\":\"x\"}",
            "{\"worker_mark_ns\":7}",
            "{\"worker_mark_ns\":[\"x\"]}",
            "{\"overhead\":[]}",
            "{\"kind\":3}",
            "{\"overhead\":{\"dead\":[]}}",
            "{\"seq\":99999999999999999999999}",
            "{\"a\":{\"a\":{\"a\":{\"a\":{\"a\":{\"a\":{\"a\":{\"a\":{\"a\":{\"a\":{\"a\":\
             {\"a\":{\"a\":{\"a\":{\"a\":{\"a\":{\"a\":{\"a\":1}}}}}}}}}}}}}}}}}}",
        ] {
            let r = parse_jsonl(garbage);
            match garbage {
                "null" | "42" | "\"str\"" | "[" => assert!(r.is_err()),
                _ => {
                    // Either an error or (for over-deep/overflow cases that
                    // degrade to Null on unknown keys) a lenient parse; the
                    // contract is only "no panic, no bogus typed data".
                    let _ = r;
                }
            }
        }
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let parsed =
            parse_jsonl("{\"seq\":3,\"future_field\":[1,{\"x\":true}],\"total_ns\":10}\n").unwrap();
        assert_eq!(parsed[0].record.seq, 3);
        assert_eq!(parsed[0].record.total_ns, 10);
    }

    #[test]
    fn blank_lines_are_skipped_and_line_numbers_reported() {
        let text = "\n{\"seq\":1}\n\n{oops\n";
        let err = parse_jsonl(text).unwrap_err();
        match err {
            TelemetryParseError::Unexpected { line, .. } => assert_eq!(line, 4),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn ns_formatting_is_integer_exact() {
        assert_eq!(ns_as_seconds(0), "0.000000000");
        assert_eq!(ns_as_seconds(1), "0.000000001");
        assert_eq!(ns_as_seconds(1_500_000_000), "1.500000000");
        assert_eq!(ns_as_seconds(u64::MAX), "18446744073.709551615");
    }

    #[test]
    fn hostile_label_values_are_escaped_per_exposition_format() {
        // The three characters the exposition format requires escaping in
        // label values: backslash, double quote, newline.
        assert_eq!(prom_escape_label(r"C:\temp"), r"C:\\temp");
        assert_eq!(prom_escape_label("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(prom_escape_label("a\nb"), "a\\nb");
        // Pin the full rendered line for a hostile allocation-site name.
        let mut census = HeapCensus::new();
        census.record_major(CensusData {
            classes: Vec::new(),
            sites: vec![CensusEntry {
                name: "Evil\\site\"x\"\nalloc".to_owned(),
                objects: 2,
                bytes: 64,
            }],
        });
        let text = census.to_prometheus();
        let want = "gca_census_site_live_bytes{site=\"Evil\\\\site\\\"x\\\"\\nalloc\"} 64";
        assert!(
            text.lines().any(|l| l == want),
            "missing exact line {want:?} in:\n{text}"
        );
        // No raw newline may survive inside any sample line: every line
        // must still be a well-formed `name{labels} value` or comment.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.rsplit_once(' ').is_some(),
                "malformed line: {line:?}"
            );
        }
    }

    #[test]
    fn fleet_prometheus_merges_shards_under_one_header_set() {
        let mut t0 = GcTelemetry::new();
        t0.record(sample_record());
        let t1 = GcTelemetry::new();
        let mut census = HeapCensus::new();
        census.record_major(CensusData {
            classes: vec![CensusEntry {
                name: "Session".to_owned(),
                objects: 5,
                bytes: 200,
            }],
            sites: Vec::new(),
        });
        let text = fleet_to_prometheus(&[
            ShardExport {
                shard: "0".to_owned(),
                telemetry: &t0,
                census: Some(&census),
            },
            ShardExport {
                shard: "1".to_owned(),
                telemetry: &t1,
                census: None,
            },
        ]);
        // Exactly one HELP/TYPE per family even with two shards.
        assert_eq!(
            text.matches("# HELP gca_gc_cycles_total ").count(),
            1,
            "duplicate headers in:\n{text}"
        );
        assert_eq!(text.matches("# TYPE gca_gc_pause_seconds ").count(), 1);
        for needle in [
            "gca_gc_cycles_total{shard=\"0\"} 1",
            "gca_gc_cycles_total{shard=\"1\"} 0",
            "gca_gc_violations_total{shard=\"0\"} 2",
            "gca_gc_phase_seconds_total{shard=\"0\",phase=\"mark\"}",
            "gca_gc_worker_mark_seconds_total{shard=\"0\",worker=\"1\"}",
            "gca_assertion_overhead_total{shard=\"1\",kind=\"dead\",metric=\"registered\"} 0",
            "gca_gc_pause_seconds_bucket{shard=\"0\",le=\"+Inf\"} 1",
            "gca_gc_pause_seconds_sum{shard=\"1\"} 0.000000000",
            "gca_census_live_objects{shard=\"0\",class=\"Session\"} 5",
            "gca_census_cycles_total{shard=\"0\"} 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Shard 1 has no census, so no census series for it.
        assert!(!text.contains("gca_census_cycles_total{shard=\"1\"}"));
    }

    #[test]
    fn prometheus_contains_all_metric_families() {
        let mut t = GcTelemetry::new();
        t.record(sample_record());
        let text = t.to_prometheus();
        for needle in [
            "gca_gc_cycles_total 1",
            "gca_gc_violations_total 2",
            "gca_gc_phase_seconds_total{phase=\"mark\"}",
            "gca_gc_worker_mark_seconds_total{worker=\"1\"}",
            "gca_assertion_overhead_total{kind=\"dead\",metric=\"header_bit_checks\"} 9",
            "gca_assertion_overhead_total{kind=\"instances\",metric=\"counter_bumps\"} 0",
            "gca_gc_pause_seconds_bucket{le=\"+Inf\"} 1",
            "gca_gc_pause_seconds_count 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
