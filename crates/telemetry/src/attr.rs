//! Per-assertion-kind overhead attribution.
//!
//! The paper reports assertion overhead in aggregate (Figures 4 and 5);
//! these types split the checking work by *assertion kind*, so a run can
//! answer "which assertion is costing me" — the attribution model every
//! later perf PR (sharding, batching, caching) measures against.

/// The five assertion kinds of the paper, used as attribution keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssertionKind {
    /// `assert-dead(p)` (§2.3.1).
    Dead,
    /// `start-region` / `assert-alldead` (§2.3.2).
    Region,
    /// `assert-instances(T, I)` (§2.4.1).
    Instances,
    /// `assert-unshared(p)` (§2.5.1).
    Unshared,
    /// `assert-ownedby(p, q)` (§2.5.2).
    OwnedBy,
}

impl AssertionKind {
    /// All kinds, in reporting order.
    pub const ALL: [AssertionKind; 5] = [
        AssertionKind::Dead,
        AssertionKind::Region,
        AssertionKind::Instances,
        AssertionKind::Unshared,
        AssertionKind::OwnedBy,
    ];

    /// Stable lowercase label used by both exporters.
    pub fn label(self) -> &'static str {
        match self {
            AssertionKind::Dead => "dead",
            AssertionKind::Region => "region",
            AssertionKind::Instances => "instances",
            AssertionKind::Unshared => "unshared",
            AssertionKind::OwnedBy => "owned_by",
        }
    }
}

/// Overhead counters for one assertion kind.
///
/// Each field is one of the mechanisms by which an assertion can add work
/// to a collection; a kind that does not use a mechanism keeps it zero
/// (e.g. `assert-dead` does header-bit checks but never traces extra
/// edges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindOverhead {
    /// Assertion API registrations attributed to this kind since the
    /// previous cycle (region objects count toward `Region`).
    pub registered: u64,
    /// Header-bit sightings during tracing (`DEAD` / `UNSHARED` flags
    /// observed set on a visited object or edge).
    pub header_bit_checks: u64,
    /// Per-object counter increments (tracked-class instance counting).
    pub counter_bumps: u64,
    /// Reference edges traced *only because* of this kind (the ownership
    /// pre-phase scans owner subgraphs before the root scan).
    pub extra_edges_traced: u64,
    /// Ownership-phase work items: owners scanned, ownees checked and
    /// deferred ownees processed (for `OwnedBy`); regions opened (for
    /// `Region`).
    pub phase_work: u64,
}

impl KindOverhead {
    /// Sum of all mechanisms (a scalar "work units" figure).
    pub fn total(&self) -> u64 {
        self.registered
            + self.header_bit_checks
            + self.counter_bumps
            + self.extra_edges_traced
            + self.phase_work
    }

    /// `true` when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == KindOverhead::default()
    }

    /// Adds `other` into `self` field-wise.
    pub fn absorb(&mut self, other: &KindOverhead) {
        self.registered += other.registered;
        self.header_bit_checks += other.header_bit_checks;
        self.counter_bumps += other.counter_bumps;
        self.extra_edges_traced += other.extra_edges_traced;
        self.phase_work += other.phase_work;
    }
}

/// Overhead attribution across all five assertion kinds (one
/// [`KindOverhead`] each).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AssertionOverhead {
    /// `assert-dead` work.
    pub dead: KindOverhead,
    /// Region (`assert-alldead`) work.
    pub region: KindOverhead,
    /// `assert-instances` work.
    pub instances: KindOverhead,
    /// `assert-unshared` work.
    pub unshared: KindOverhead,
    /// `assert-ownedby` work.
    pub owned_by: KindOverhead,
}

impl AssertionOverhead {
    /// The counters for one kind.
    pub fn kind(&self, kind: AssertionKind) -> &KindOverhead {
        match kind {
            AssertionKind::Dead => &self.dead,
            AssertionKind::Region => &self.region,
            AssertionKind::Instances => &self.instances,
            AssertionKind::Unshared => &self.unshared,
            AssertionKind::OwnedBy => &self.owned_by,
        }
    }

    /// Mutable counters for one kind.
    pub fn kind_mut(&mut self, kind: AssertionKind) -> &mut KindOverhead {
        match kind {
            AssertionKind::Dead => &mut self.dead,
            AssertionKind::Region => &mut self.region,
            AssertionKind::Instances => &mut self.instances,
            AssertionKind::Unshared => &mut self.unshared,
            AssertionKind::OwnedBy => &mut self.owned_by,
        }
    }

    /// Sum of all kinds' work units.
    pub fn total(&self) -> u64 {
        AssertionKind::ALL
            .iter()
            .map(|&k| self.kind(k).total())
            .sum()
    }

    /// `true` when no kind recorded any work.
    pub fn is_zero(&self) -> bool {
        *self == AssertionOverhead::default()
    }

    /// Adds `other` into `self` kind- and field-wise.
    pub fn absorb(&mut self, other: &AssertionOverhead) {
        for kind in AssertionKind::ALL {
            self.kind_mut(kind).absorb(other.kind(kind));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_distinct() {
        let labels: Vec<&str> = AssertionKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            ["dead", "region", "instances", "unshared", "owned_by"]
        );
    }

    #[test]
    fn kind_accessors_roundtrip() {
        let mut o = AssertionOverhead::default();
        for (i, kind) in AssertionKind::ALL.into_iter().enumerate() {
            o.kind_mut(kind).registered = i as u64 + 1;
        }
        assert_eq!(o.dead.registered, 1);
        assert_eq!(o.owned_by.registered, 5);
        assert_eq!(o.total(), 1 + 2 + 3 + 4 + 5);
        assert!(!o.is_zero());
    }

    #[test]
    fn absorb_is_fieldwise() {
        let mut a = AssertionOverhead {
            unshared: KindOverhead {
                header_bit_checks: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let b = AssertionOverhead {
            unshared: KindOverhead {
                header_bit_checks: 3,
                ..Default::default()
            },
            owned_by: KindOverhead {
                extra_edges_traced: 7,
                ..Default::default()
            },
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.unshared.header_bit_checks, 5);
        assert_eq!(a.owned_by.extra_edges_traced, 7);
        assert_eq!(a.unshared.total(), 5);
    }

    #[test]
    fn zero_detection() {
        assert!(AssertionOverhead::default().is_zero());
        assert!(KindOverhead::default().is_zero());
        let k = KindOverhead {
            phase_work: 1,
            ..Default::default()
        };
        assert!(!k.is_zero());
    }
}
