//! Per-cycle records and the cumulative [`GcTelemetry`] snapshot.

use std::time::Duration;

use crate::attr::AssertionOverhead;
use crate::census::CensusData;
use crate::hist::LatencyHistogram;

/// The kind of collection a [`CycleRecord`] describes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CycleKind {
    /// A full-heap (major) collection — the paper's MarkSweep cycle, where
    /// every assertion is checked.
    #[default]
    Major,
    /// A nursery-only (minor) collection (§2.2: assertions go unchecked).
    Minor,
}

impl CycleKind {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            CycleKind::Major => "major",
            CycleKind::Minor => "minor",
        }
    }
}

/// The phases a collection cycle's wall time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcPhase {
    /// The hooks' pre-root phase (the ownership phase, §2.5.2).
    PreRoot,
    /// Root scan plus transitive mark.
    Mark,
    /// Sweep.
    Sweep,
    /// A whole minor collection (not split further: the nursery is small).
    Minor,
}

impl GcPhase {
    /// All phases, in reporting order.
    pub const ALL: [GcPhase; 4] = [
        GcPhase::PreRoot,
        GcPhase::Mark,
        GcPhase::Sweep,
        GcPhase::Minor,
    ];

    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            GcPhase::PreRoot => "pre_root",
            GcPhase::Mark => "mark",
            GcPhase::Sweep => "sweep",
            GcPhase::Minor => "minor",
        }
    }

    fn index(self) -> usize {
        match self {
            GcPhase::PreRoot => 0,
            GcPhase::Mark => 1,
            GcPhase::Sweep => 2,
            GcPhase::Minor => 3,
        }
    }
}

/// Everything observed about one collection cycle — the unit of the JSONL
/// export (one record per line).
///
/// All times are integer nanoseconds so records round-trip exactly through
/// the exporters. For a [`CycleKind::Minor`] record only `total_ns`,
/// `objects_marked`, `edges_traced`, `objects_swept`, `words_swept` and
/// `promoted` are meaningful; the phase-span fields (`pre_root_ns`,
/// `mark_ns`, `sweep_ns`), `pre_root_edges`, `violations`,
/// `worker_mark_ns` and `overhead` stay zero *by construction* — minors
/// are nursery-only, run sequentially and check no assertions (§2.2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleRecord {
    /// 1-based cycle ordinal within the snapshot (assigned by
    /// [`GcTelemetry::record`]; majors and minors share the sequence).
    pub seq: u64,
    /// Major or minor.
    pub kind: CycleKind,
    /// Wall time of the whole cycle.
    pub total_ns: u64,
    /// Wall time of the pre-root (ownership) phase.
    pub pre_root_ns: u64,
    /// Wall time of the mark phase.
    pub mark_ns: u64,
    /// Wall time of the sweep.
    pub sweep_ns: u64,
    /// Objects newly marked (live objects).
    pub objects_marked: u64,
    /// Reference edges traversed, including ownership-phase edges.
    pub edges_traced: u64,
    /// The subset of `edges_traced` traced during the pre-root
    /// (ownership) phase — edges the collection would not have traced
    /// without `assert-ownedby` work.
    pub pre_root_edges: u64,
    /// Objects reclaimed.
    pub objects_swept: u64,
    /// Words reclaimed.
    pub words_swept: u64,
    /// Young objects promoted (minor cycles only).
    pub promoted: u64,
    /// Assertion violations detected this cycle.
    pub violations: u64,
    /// Per-worker busy time inside the mark phase, indexed by worker.
    /// Sequential collections report one entry (the whole mark span);
    /// parallel collections report one entry per tracing worker.
    pub worker_mark_ns: Vec<u64>,
    /// Assertion-checking work this cycle, attributed by kind.
    pub overhead: AssertionOverhead,
    /// Heap census for this cycle (per-class live totals plus top
    /// allocation sites), present only when the VM's census knob is on.
    /// Minor cycles carry nursery-survivor totals only.
    pub census: Option<CensusData>,
}

impl CycleRecord {
    /// The wall time of one phase of this record.
    pub fn phase_ns(&self, phase: GcPhase) -> u64 {
        match phase {
            GcPhase::PreRoot => self.pre_root_ns,
            GcPhase::Mark => self.mark_ns,
            GcPhase::Sweep => self.sweep_ns,
            GcPhase::Minor => match self.kind {
                CycleKind::Minor => self.total_ns,
                CycleKind::Major => 0,
            },
        }
    }
}

/// A cumulative telemetry snapshot: per-cycle records plus rolled-up
/// counters, phase totals, per-worker mark times and pause histograms.
///
/// Obtained from `Vm::telemetry()`. The default value is the *disabled*
/// snapshot (everything empty, [`GcTelemetry::enabled`] false) — the VM
/// returns it when the `telemetry` knob is off, so callers never need to
/// branch.
///
/// # Example
///
/// ```
/// use gca_telemetry::{CycleRecord, GcPhase, GcTelemetry};
///
/// let mut t = GcTelemetry::new();
/// t.record(CycleRecord {
///     total_ns: 1_000,
///     mark_ns: 700,
///     sweep_ns: 300,
///     worker_mark_ns: vec![700],
///     ..Default::default()
/// });
/// assert_eq!(t.cycles(), 1);
/// assert_eq!(t.phase_total(GcPhase::Mark).as_nanos(), 700);
/// assert_eq!(t.pause_histogram().count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcTelemetry {
    enabled: bool,
    records: Vec<CycleRecord>,
    majors: u64,
    minors: u64,
    phase_total_ns: [u64; 4],
    total_pause_ns: u64,
    worker_mark_ns: Vec<u64>,
    overhead: AssertionOverhead,
    pause: LatencyHistogram,
    minor_pause: LatencyHistogram,
    violations: u64,
}

impl GcTelemetry {
    /// Creates an empty, *enabled* snapshot (the recorder the VM owns when
    /// the telemetry knob is on).
    pub fn new() -> GcTelemetry {
        GcTelemetry {
            enabled: true,
            ..Default::default()
        }
    }

    /// Whether this snapshot came from a VM with telemetry enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Folds one cycle into the snapshot, assigning its `seq`.
    pub fn record(&mut self, mut record: CycleRecord) {
        record.seq = self.records.len() as u64 + 1;
        match record.kind {
            CycleKind::Major => {
                self.majors += 1;
                self.pause.record_ns(record.total_ns);
            }
            CycleKind::Minor => {
                self.minors += 1;
                self.minor_pause.record_ns(record.total_ns);
            }
        }
        for phase in GcPhase::ALL {
            self.phase_total_ns[phase.index()] += record.phase_ns(phase);
        }
        self.total_pause_ns += record.total_ns;
        for (i, &ns) in record.worker_mark_ns.iter().enumerate() {
            if self.worker_mark_ns.len() <= i {
                self.worker_mark_ns.push(0);
            }
            self.worker_mark_ns[i] += ns;
        }
        self.overhead.absorb(&record.overhead);
        self.violations += record.violations;
        self.records.push(record);
    }

    /// Major collection cycles recorded.
    pub fn cycles(&self) -> u64 {
        self.majors
    }

    /// Minor collection cycles recorded.
    pub fn minor_cycles(&self) -> u64 {
        self.minors
    }

    /// Violations across all recorded cycles.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Every recorded cycle, in order.
    pub fn records(&self) -> &[CycleRecord] {
        &self.records
    }

    /// Cumulative wall time attributed to `phase` across all cycles.
    pub fn phase_total(&self, phase: GcPhase) -> Duration {
        Duration::from_nanos(self.phase_total_ns[phase.index()])
    }

    /// Cumulative pause time (major + minor cycle totals).
    pub fn total_pause(&self) -> Duration {
        Duration::from_nanos(self.total_pause_ns)
    }

    /// Cumulative per-worker mark-phase busy time. The length is the
    /// highest worker count seen in any cycle; sequential cycles
    /// contribute to worker 0.
    pub fn worker_mark_times(&self) -> Vec<Duration> {
        self.worker_mark_ns
            .iter()
            .map(|&ns| Duration::from_nanos(ns))
            .collect()
    }

    /// Cumulative per-worker mark-phase busy time in nanoseconds.
    pub fn worker_mark_ns(&self) -> &[u64] {
        &self.worker_mark_ns
    }

    /// Cumulative assertion-checking work, attributed by kind.
    pub fn overhead(&self) -> &AssertionOverhead {
        &self.overhead
    }

    /// Log-scale histogram of major-cycle pause times.
    pub fn pause_histogram(&self) -> &LatencyHistogram {
        &self.pause
    }

    /// Log-scale histogram of minor-cycle pause times.
    pub fn minor_pause_histogram(&self) -> &LatencyHistogram {
        &self.minor_pause
    }

    /// Serializes every recorded cycle as JSON lines (one record per
    /// line), optionally labelled with a benchmark name. See
    /// [`crate::export::records_to_jsonl`].
    pub fn to_jsonl(&self, bench: Option<&str>) -> String {
        crate::export::records_to_jsonl(&self.records, bench)
    }

    /// Renders the snapshot in Prometheus text exposition format. See
    /// [`crate::export::to_prometheus`].
    pub fn to_prometheus(&self) -> String {
        crate::export::to_prometheus(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn major(total: u64, pre: u64, mark: u64, sweep: u64, workers: &[u64]) -> CycleRecord {
        CycleRecord {
            kind: CycleKind::Major,
            total_ns: total,
            pre_root_ns: pre,
            mark_ns: mark,
            sweep_ns: sweep,
            worker_mark_ns: workers.to_vec(),
            ..Default::default()
        }
    }

    #[test]
    fn default_is_disabled_and_empty() {
        let t = GcTelemetry::default();
        assert!(!t.enabled());
        assert_eq!(t.cycles(), 0);
        assert_eq!(t.records().len(), 0);
        assert!(t.pause_histogram().is_empty());
    }

    #[test]
    fn record_assigns_sequence_and_rolls_up() {
        let mut t = GcTelemetry::new();
        assert!(t.enabled());
        t.record(major(100, 10, 60, 30, &[60]));
        t.record(major(200, 20, 120, 60, &[70, 50]));
        t.record(CycleRecord {
            kind: CycleKind::Minor,
            total_ns: 40,
            promoted: 3,
            ..Default::default()
        });
        assert_eq!(t.cycles(), 2);
        assert_eq!(t.minor_cycles(), 1);
        assert_eq!(t.records()[0].seq, 1);
        assert_eq!(t.records()[2].seq, 3);
        assert_eq!(t.phase_total(GcPhase::PreRoot).as_nanos(), 30);
        assert_eq!(t.phase_total(GcPhase::Mark).as_nanos(), 180);
        assert_eq!(t.phase_total(GcPhase::Sweep).as_nanos(), 90);
        assert_eq!(t.phase_total(GcPhase::Minor).as_nanos(), 40);
        assert_eq!(t.total_pause().as_nanos(), 340);
        // Ragged worker vectors accumulate element-wise.
        assert_eq!(t.worker_mark_ns(), &[130, 50]);
        assert_eq!(t.pause_histogram().count(), 2);
        assert_eq!(t.minor_pause_histogram().count(), 1);
    }

    #[test]
    fn phase_ns_maps_minor_total() {
        let minor = CycleRecord {
            kind: CycleKind::Minor,
            total_ns: 99,
            ..Default::default()
        };
        assert_eq!(minor.phase_ns(GcPhase::Minor), 99);
        assert_eq!(minor.phase_ns(GcPhase::Mark), 0);
        let major = major(100, 1, 2, 3, &[]);
        assert_eq!(major.phase_ns(GcPhase::Minor), 0);
        assert_eq!(major.phase_ns(GcPhase::PreRoot), 1);
    }

    #[test]
    fn labels() {
        assert_eq!(CycleKind::Major.label(), "major");
        assert_eq!(CycleKind::Minor.label(), "minor");
        let labels: Vec<&str> = GcPhase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, ["pre_root", "mark", "sweep", "minor"]);
    }
}
