//! Heap census: per-class / per-allocation-site live histograms and the
//! leak-drift detector built on top of them.
//!
//! The collector already visits every live object during the mark, so a
//! *census* — how many live objects and bytes each class and each
//! allocation site retains — comes almost for free (the paper's central
//! piggybacking trick, applied to heap *content* instead of assertions).
//! The VM accumulates raw counts during each mark (sequentially in the
//! tracer, sharded per worker in the parallel phase, survivors-only on the
//! minor path), resolves class and site names, and feeds one
//! [`CensusData`] per cycle into a [`HeapCensus`] recorder.
//!
//! On top of the per-cycle snapshots the recorder runs a **drift
//! detector**: a rolling window over the last `K` major cycles per class
//! and per site. A key whose live-object count grows monotonically across
//! a full window (or, failing strict monotonicity, shows a positive
//! integer least-squares trend that never dips below the window's first
//! sample) is flagged once as a suspected leak via a structured
//! [`CensusDrift`] event, which also carries a suggested
//! `assert-instances` limit derived from the pre-drift baseline. Classes
//! that *don't* drift get limits suggested from their observed peaks
//! ([`HeapCensus::suggested_limits`]) — pick thresholds from data, not
//! guesswork.
//!
//! Like the rest of the crate this module is dependency-free and knows
//! nothing about the heap: everything is keyed by name strings the VM
//! resolved, and all arithmetic is integer (fixed-point where fractions
//! are needed) so snapshots compare and export deterministically.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::record::CycleKind;

/// Live totals for one class or one allocation site in one cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CensusEntry {
    /// Class name or allocation-site label.
    pub name: String,
    /// Live objects observed by the mark.
    pub objects: u64,
    /// Live bytes (object size in words × 8) observed by the mark.
    pub bytes: u64,
}

/// The census payload of one collection cycle: per-class and per-site
/// live totals. Entries are sorted by name, so payloads from different
/// runs (and different worker counts) compare bit-for-bit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CensusData {
    /// Per-class live totals, sorted by class name.
    pub classes: Vec<CensusEntry>,
    /// Per-allocation-site live totals, sorted by site label.
    pub sites: Vec<CensusEntry>,
}

impl CensusData {
    /// Sorts both tables by name (the canonical order). The VM calls this
    /// after merging shards so equality and exports are deterministic.
    pub fn normalize(&mut self) {
        self.classes.sort_by(|a, b| a.name.cmp(&b.name));
        self.sites.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Total live bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.classes.iter().map(|e| e.bytes).sum()
    }

    /// Total live objects across all classes.
    pub fn total_objects(&self) -> u64 {
        self.classes.iter().map(|e| e.objects).sum()
    }

    /// The `n` classes retaining the most live bytes (ties broken by
    /// name), for dashboards and the Prometheus exporter.
    pub fn top_classes_by_bytes(&self, n: usize) -> Vec<&CensusEntry> {
        let mut v: Vec<&CensusEntry> = self.classes.iter().collect();
        v.sort_by(|a, b| b.bytes.cmp(&a.bytes).then_with(|| a.name.cmp(&b.name)));
        v.truncate(n);
        v
    }

    /// The `n` allocation sites retaining the most live bytes (ties by
    /// label) — the "top allocation sites" slice the JSONL record carries.
    pub fn top_sites_by_bytes(&self, n: usize) -> Vec<&CensusEntry> {
        let mut v: Vec<&CensusEntry> = self.sites.iter().collect();
        v.sort_by(|a, b| b.bytes.cmp(&a.bytes).then_with(|| a.name.cmp(&b.name)));
        v.truncate(n);
        v
    }
}

/// What kind of key a [`CensusDrift`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftScope {
    /// A class drifted.
    Class,
    /// An allocation site drifted.
    Site,
}

impl DriftScope {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            DriftScope::Class => "class",
            DriftScope::Site => "site",
        }
    }
}

/// A structured drift event: one class or site whose live-object count
/// kept growing across the most recent full detection window — a
/// suspected leak. Drifts are *current*: a key that stops growing is
/// retracted from [`HeapCensus::drifts`] at the next major cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CensusDrift {
    /// Whether a class or an allocation site drifted.
    pub scope: DriftScope,
    /// The class name or site label.
    pub name: String,
    /// Major-census sequence number at which the key's current
    /// uninterrupted drift streak was first flagged.
    pub at_seq: u64,
    /// Window length (cycles) the detection ran over.
    pub window: usize,
    /// Live objects at the start of the window.
    pub first_objects: u64,
    /// Live objects at the end of the window.
    pub last_objects: u64,
    /// Live bytes at the end of the window.
    pub last_bytes: u64,
    /// Average growth per cycle across the window, fixed-point ×100
    /// (e.g. `250` = +2.5 objects/cycle).
    pub growth_per_cycle_x100: u64,
    /// A suggested `assert-instances(T, I)` limit: the window's starting
    /// count plus 25% headroom — tight enough that continued leaking
    /// trips the assertion, loose enough to survive the observed
    /// steady state before the drift.
    pub suggested_limit: u64,
}

impl CensusDrift {
    /// One-line human rendering, for logs and the figures binary.
    pub fn render(&self) -> String {
        format!(
            "drift: {} {:?} grew {} -> {} objects over {} cycles \
             (+{}.{:02}/cycle, {} bytes live); suggest assert-instances <= {}",
            self.scope.label(),
            self.name,
            self.first_objects,
            self.last_objects,
            self.window,
            self.growth_per_cycle_x100 / 100,
            self.growth_per_cycle_x100 % 100,
            self.last_bytes,
            self.suggested_limit,
        )
    }
}

/// One row of a [`HeapDiff`]: a class's retained-byte delta between two
/// cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapDiffRow {
    /// Class name.
    pub name: String,
    /// Live objects in the `from` cycle.
    pub from_objects: u64,
    /// Live objects in the `to` cycle.
    pub to_objects: u64,
    /// Live bytes in the `from` cycle.
    pub from_bytes: u64,
    /// Live bytes in the `to` cycle.
    pub to_bytes: u64,
}

impl HeapDiffRow {
    /// Object-count delta (`to - from`).
    pub fn objects_delta(&self) -> i64 {
        self.to_objects as i64 - self.from_objects as i64
    }

    /// Byte delta (`to - from`) — the sort key.
    pub fn bytes_delta(&self) -> i64 {
        self.to_bytes as i64 - self.from_bytes as i64
    }
}

/// A cycle-vs-cycle comparison: which classes grew (or shrank) between
/// census `from_seq` and census `to_seq`, sorted by retained-byte delta,
/// biggest growth first. The heap-health question "what changed between
/// then and now" answered as a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapDiff {
    /// The earlier cycle's census sequence number.
    pub from_seq: u64,
    /// The later cycle's census sequence number.
    pub to_seq: u64,
    /// Per-class deltas, sorted by byte delta descending (ties by name).
    pub rows: Vec<HeapDiffRow>,
}

impl HeapDiff {
    /// Renders the diff as a fixed-width text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "heapdiff: cycle {} -> cycle {} (sorted by delta retained bytes)\n{:<24} {:>10} {:>12} {:>10} {:>12}\n",
            self.from_seq, self.to_seq, "class", "Δobjects", "Δbytes", "objects", "bytes"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<24} {:>+10} {:>+12} {:>10} {:>12}\n",
                r.name,
                r.objects_delta(),
                r.bytes_delta(),
                r.to_objects,
                r.to_bytes
            ));
        }
        out
    }
}

/// One recorded census cycle: the payload plus its sequence number and
/// the kind of collection that produced it. Minor cycles cover the
/// nursery only (the minor trace never walks the old generation), so the
/// drift detector consumes major cycles exclusively.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleCensus {
    /// 1-based ordinal within the snapshot (majors and minors share it).
    pub seq: u64,
    /// Major (full heap) or minor (nursery survivors only).
    pub kind: CycleKind,
    /// The per-class / per-site totals.
    pub data: CensusData,
}

/// Default drift-detection window (major cycles).
pub const DEFAULT_DRIFT_WINDOW: usize = 6;

/// How many top classes/sites the Prometheus exporter emits.
pub(crate) const PROM_TOP_N: usize = 10;

/// Rolling per-key state for the drift detector.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct KeyWindow {
    /// Live-object counts for the last `window` major cycles.
    counts: VecDeque<u64>,
    /// Last observed live bytes (reported in the drift event).
    last_bytes: u64,
    /// Peak live objects ever observed (for suggested limits).
    peak_objects: u64,
    /// Peak live bytes ever observed.
    peak_bytes: u64,
}

/// The census recorder a VM owns when `VmConfig::census` is on: per-cycle
/// snapshots, rolling drift windows, the active [`CensusDrift`] set and
/// the census Prometheus exporter.
///
/// Obtained from `Vm::census()`. The default value is the *disabled*
/// snapshot (everything empty, [`HeapCensus::enabled`] false), returned
/// by VMs whose census knob is off so callers never need to branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapCensus {
    enabled: bool,
    window: usize,
    cycles: Vec<CycleCensus>,
    majors: u64,
    minors: u64,
    class_windows: BTreeMap<String, KeyWindow>,
    site_windows: BTreeMap<String, KeyWindow>,
    drifts: Vec<CensusDrift>,
}

fn scope_tag(scope: DriftScope) -> u8 {
    match scope {
        DriftScope::Class => 0,
        DriftScope::Site => 1,
    }
}

impl Default for HeapCensus {
    fn default() -> HeapCensus {
        HeapCensus {
            enabled: false,
            window: DEFAULT_DRIFT_WINDOW,
            cycles: Vec::new(),
            majors: 0,
            minors: 0,
            class_windows: BTreeMap::new(),
            site_windows: BTreeMap::new(),
            drifts: Vec::new(),
        }
    }
}

impl HeapCensus {
    /// Creates an empty, *enabled* recorder with the default drift window.
    pub fn new() -> HeapCensus {
        HeapCensus {
            enabled: true,
            ..Default::default()
        }
    }

    /// As [`HeapCensus::new`] with a custom drift window (`>= 2` enforced;
    /// a window of K flags a key after K consecutive growing cycles).
    pub fn with_window(window: usize) -> HeapCensus {
        HeapCensus {
            enabled: true,
            window: window.max(2),
            ..Default::default()
        }
    }

    /// Whether this snapshot came from a VM with census enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The drift-detection window, in major cycles.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Major census cycles recorded.
    pub fn cycles(&self) -> u64 {
        self.majors
    }

    /// Minor census cycles recorded.
    pub fn minor_cycles(&self) -> u64 {
        self.minors
    }

    /// Every recorded cycle (majors and minors), in order.
    pub fn records(&self) -> &[CycleCensus] {
        &self.cycles
    }

    /// The most recent *major* census, if any — "what is on the heap now".
    pub fn latest(&self) -> Option<&CycleCensus> {
        self.cycles
            .iter()
            .rev()
            .find(|c| c.kind == CycleKind::Major)
    }

    /// The keys *currently* drifting: every class or site whose most
    /// recent full detection window kept growing. Classes then sites,
    /// each sorted by name.
    ///
    /// Drifts retract: a key that plateaus (or empties out) stops being
    /// reported at the next major cycle. This is what separates a leak
    /// from a startup ramp — a heap filling toward its steady state
    /// grows for a while and then flattens, while a leak is still
    /// growing whenever you look. [`CensusDrift::at_seq`] records when
    /// the key's current uninterrupted drift streak was first flagged.
    pub fn drifts(&self) -> &[CensusDrift] {
        &self.drifts
    }

    /// Records one major cycle's census, feeds the drift detector, and
    /// returns the assigned sequence number.
    pub fn record_major(&mut self, mut data: CensusData) -> u64 {
        data.normalize();
        let seq = self.cycles.len() as u64 + 1;
        self.majors += 1;
        Self::advance_windows(&mut self.class_windows, &data.classes, self.window);
        Self::advance_windows(&mut self.site_windows, &data.sites, self.window);
        // Rebuild the active-drift set from the advanced windows,
        // preserving at_seq for keys that were already drifting.
        let streak_start: BTreeMap<(u8, String), u64> = self
            .drifts
            .iter()
            .map(|d| ((scope_tag(d.scope), d.name.clone()), d.at_seq))
            .collect();
        let mut drifts = Vec::new();
        Self::detect(
            &self.class_windows,
            self.window,
            DriftScope::Class,
            seq,
            &streak_start,
            &mut drifts,
        );
        Self::detect(
            &self.site_windows,
            self.window,
            DriftScope::Site,
            seq,
            &streak_start,
            &mut drifts,
        );
        self.drifts = drifts;
        self.cycles.push(CycleCensus {
            seq,
            kind: CycleKind::Major,
            data,
        });
        seq
    }

    /// Records one minor cycle's census (nursery survivors only; not fed
    /// to the drift detector) and returns the assigned sequence number.
    pub fn record_minor(&mut self, mut data: CensusData) -> u64 {
        data.normalize();
        let seq = self.cycles.len() as u64 + 1;
        self.minors += 1;
        self.cycles.push(CycleCensus {
            seq,
            kind: CycleKind::Minor,
            data,
        });
        seq
    }

    /// Pushes this cycle's counts into every key's rolling window. Keys
    /// absent from the cycle push 0, so a class that empties out resets
    /// its trend.
    fn advance_windows(
        windows: &mut BTreeMap<String, KeyWindow>,
        entries: &[CensusEntry],
        window: usize,
    ) {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for e in entries {
            seen.insert(e.name.as_str());
            let kw = windows.entry(e.name.clone()).or_default();
            kw.counts.push_back(e.objects);
            if kw.counts.len() > window {
                kw.counts.pop_front();
            }
            kw.last_bytes = e.bytes;
            kw.peak_objects = kw.peak_objects.max(e.objects);
            kw.peak_bytes = kw.peak_bytes.max(e.bytes);
        }
        // Keys known from earlier cycles but absent now contribute zero.
        for (name, kw) in windows.iter_mut() {
            if seen.contains(name.as_str()) {
                continue;
            }
            kw.counts.push_back(0);
            if kw.counts.len() > window {
                kw.counts.pop_front();
            }
            kw.last_bytes = 0;
        }
    }

    /// Detection pass over advanced windows: every full window that grew
    /// marks its key as currently drifting. `streak_start` carries the
    /// previous cycle's active set so an uninterrupted streak keeps its
    /// original `at_seq`.
    fn detect(
        windows: &BTreeMap<String, KeyWindow>,
        window: usize,
        scope: DriftScope,
        seq: u64,
        streak_start: &BTreeMap<(u8, String), u64>,
        drifts: &mut Vec<CensusDrift>,
    ) {
        let tag = scope_tag(scope);
        for (name, kw) in windows.iter() {
            if kw.counts.len() < window {
                continue;
            }
            let y: Vec<u64> = kw.counts.iter().copied().collect();
            if !window_grows(&y) {
                continue;
            }
            let first = y[0];
            let last = *y.last().expect("window is full");
            let growth_x100 = (last - first) * 100 / (window as u64 - 1);
            let at_seq = streak_start
                .get(&(tag, name.clone()))
                .copied()
                .unwrap_or(seq);
            drifts.push(CensusDrift {
                scope,
                name: name.clone(),
                at_seq,
                window,
                first_objects: first,
                last_objects: last,
                last_bytes: kw.last_bytes,
                growth_per_cycle_x100: growth_x100,
                suggested_limit: suggest_limit(first.max(1)),
            });
        }
    }

    /// Suggested `assert-instances` limits from observed steady-state
    /// peaks: for every class the census has ever seen, its peak live
    /// count plus 25% headroom. Sorted by class name.
    pub fn suggested_limits(&self) -> Vec<(String, u64)> {
        self.class_windows
            .iter()
            .filter(|(_, kw)| kw.peak_objects > 0)
            .map(|(name, kw)| (name.clone(), suggest_limit(kw.peak_objects)))
            .collect()
    }

    /// Compares the censuses of two recorded cycles (by sequence number,
    /// as assigned by the record calls). Returns `None` if either seq is
    /// unknown. Rows are sorted by retained-byte delta, biggest growth
    /// first, ties by name.
    pub fn heapdiff(&self, from_seq: u64, to_seq: u64) -> Option<HeapDiff> {
        let find = |seq: u64| self.cycles.iter().find(|c| c.seq == seq);
        let from = find(from_seq)?;
        let to = find(to_seq)?;
        let mut names: BTreeSet<&str> = BTreeSet::new();
        let index = |d: &CensusData| -> BTreeMap<String, (u64, u64)> {
            d.classes
                .iter()
                .map(|e| (e.name.clone(), (e.objects, e.bytes)))
                .collect()
        };
        let a = index(&from.data);
        let b = index(&to.data);
        names.extend(a.keys().map(String::as_str));
        names.extend(b.keys().map(String::as_str));
        let mut rows: Vec<HeapDiffRow> = names
            .into_iter()
            .map(|name| {
                let (fo, fb) = a.get(name).copied().unwrap_or((0, 0));
                let (to_, tb) = b.get(name).copied().unwrap_or((0, 0));
                HeapDiffRow {
                    name: name.to_owned(),
                    from_objects: fo,
                    to_objects: to_,
                    from_bytes: fb,
                    to_bytes: tb,
                }
            })
            .collect();
        rows.sort_by(|x, y| {
            y.bytes_delta()
                .cmp(&x.bytes_delta())
                .then_with(|| x.name.cmp(&y.name))
        });
        Some(HeapDiff {
            from_seq,
            to_seq,
            rows,
        })
    }

    /// Renders the census snapshot in Prometheus text exposition format:
    ///
    /// * `gca_census_cycles_total` / `gca_census_minor_cycles_total` —
    ///   census cycles recorded.
    /// * `gca_census_live_objects{class=...}` /
    ///   `gca_census_live_bytes{class=...}` — the latest major census's
    ///   top-10 classes by live bytes (gauges).
    /// * `gca_census_site_live_bytes{site=...}` — top-10 sites likewise.
    /// * `gca_census_drifting_keys` and `gca_census_drift{scope=...,
    ///   name=...}` — the currently-drifting key set (the per-key gauge
    ///   holds its last observed live-object count).
    /// * `gca_census_suggested_instance_limit{class=...}` — data-derived
    ///   `assert-instances` limits for drifted classes.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        crate::export::push_census_families(&mut out, &[(String::new(), self)]);
        out
    }
}

/// Peak (or baseline) count plus 25% headroom, never equal to the input
/// — the limit must tolerate the observed state but trip on real growth.
fn suggest_limit(observed: u64) -> u64 {
    (observed + observed / 4).max(observed + 1)
}

/// The drift criterion over one full window of live-object counts.
///
/// Primary (monotone): never decreasing, strictly higher at the end, and
/// growing by at least one object per cycle on average — steady noise
/// around a plateau never qualifies.
///
/// Secondary (regression fit): if not strictly monotone, an integer
/// least-squares slope that is positive with average growth of at least
/// two objects per cycle, where no sample dips below the window's first —
/// catches sawtooth leaks (grow-grow-dip-grow) without flagging
/// steady-state oscillation.
fn window_grows(y: &[u64]) -> bool {
    let k = y.len();
    if k < 2 {
        return false;
    }
    let first = y[0];
    let last = y[k - 1];
    if last <= first {
        return false;
    }
    let span = last - first;
    let monotone = y.windows(2).all(|w| w[1] >= w[0]);
    if monotone && span >= (k as u64 - 1) {
        return true;
    }
    // Regression fit: slope sign from the integer numerator of the
    // least-squares slope, n·Σ(i·y) − Σi·Σy.
    if y.iter().any(|&v| v < first) {
        return false;
    }
    let n = k as u64;
    let sum_i: u64 = (0..n).sum();
    let sum_y: u64 = y.iter().sum();
    let sum_iy: u64 = y.iter().enumerate().map(|(i, &v)| i as u64 * v).sum();
    let slope_num = (n * sum_iy) as i128 - (sum_i as i128 * sum_y as i128);
    slope_num > 0 && span >= 2 * (n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, objects: u64, bytes: u64) -> CensusEntry {
        CensusEntry {
            name: name.to_owned(),
            objects,
            bytes,
        }
    }

    fn data(classes: &[(&str, u64, u64)]) -> CensusData {
        CensusData {
            classes: classes.iter().map(|&(n, o, b)| entry(n, o, b)).collect(),
            sites: Vec::new(),
        }
    }

    #[test]
    fn default_is_disabled_and_empty() {
        let c = HeapCensus::default();
        assert!(!c.enabled());
        assert_eq!(c.cycles(), 0);
        assert!(c.records().is_empty());
        assert!(c.drifts().is_empty());
        assert!(c.latest().is_none());
    }

    #[test]
    fn record_assigns_sequence_and_normalizes() {
        let mut c = HeapCensus::new();
        let seq = c.record_major(data(&[("B", 2, 20), ("A", 1, 10)]));
        assert_eq!(seq, 1);
        assert_eq!(c.cycles(), 1);
        let latest = c.latest().unwrap();
        assert_eq!(latest.data.classes[0].name, "A", "sorted by name");
        assert_eq!(latest.data.total_objects(), 3);
        assert_eq!(latest.data.total_bytes(), 30);
        c.record_minor(CensusData::default());
        assert_eq!(c.minor_cycles(), 1);
        assert_eq!(c.records()[1].seq, 2);
        // latest() skips minors.
        assert_eq!(c.latest().unwrap().seq, 1);
    }

    #[test]
    fn monotone_growth_drifts_within_window() {
        let mut c = HeapCensus::with_window(4);
        for i in 0..4u64 {
            c.record_major(data(&[
                ("Leaky", 10 + 5 * i, (10 + 5 * i) * 8),
                ("Flat", 7, 56),
            ]));
        }
        let drifts = c.drifts();
        assert_eq!(drifts.len(), 1, "only the leaking class drifts");
        let d = &drifts[0];
        assert_eq!(d.name, "Leaky");
        assert_eq!(d.scope, DriftScope::Class);
        assert_eq!(d.at_seq, 4);
        assert_eq!(d.first_objects, 10);
        assert_eq!(d.last_objects, 25);
        assert_eq!(d.growth_per_cycle_x100, 500);
        assert_eq!(d.suggested_limit, 12, "baseline 10 + 25% headroom");
        assert!(d.render().contains("Leaky"));
        // A key that keeps growing stays flagged, and its streak keeps
        // the original at_seq.
        c.record_major(data(&[("Leaky", 30, 240)]));
        assert_eq!(c.drifts().len(), 1);
        assert_eq!(c.drifts()[0].at_seq, 4);
        assert_eq!(c.drifts()[0].last_objects, 30);
    }

    #[test]
    fn drift_retracts_when_growth_stops() {
        // A startup ramp: grows for a full window, then plateaus. The
        // drift must flag during the ramp and retract at steady state —
        // this is what separates "heap filling up" from "leak".
        let mut c = HeapCensus::with_window(4);
        for i in 0..4u64 {
            c.record_major(data(&[("Ramp", 10 + 5 * i, (10 + 5 * i) * 8)]));
        }
        assert_eq!(c.drifts().len(), 1, "flagged while growing");
        for _ in 0..4 {
            c.record_major(data(&[("Ramp", 25, 200)]));
        }
        assert!(c.drifts().is_empty(), "plateau retracts the drift");
        // A class that empties out retracts too.
        for i in 0..4u64 {
            c.record_major(data(&[("Ramp", 30 + 5 * i, 0)]));
        }
        assert_eq!(c.drifts().len(), 1, "renewed growth re-flags");
        c.record_major(data(&[]));
        assert!(c.drifts().is_empty(), "teardown retracts the drift");
    }

    #[test]
    fn sawtooth_growth_is_caught_by_regression_fit() {
        // grow, grow, dip (but never below the first sample), grow hard.
        assert!(window_grows(&[10, 14, 18, 16, 22, 26]));
        // Oscillation around a plateau must not qualify.
        assert!(!window_grows(&[10, 14, 9, 14, 10, 14]));
    }

    #[test]
    fn steady_state_never_drifts() {
        let mut c = HeapCensus::with_window(4);
        for i in 0..12u64 {
            let n = 40 + (i % 3); // 40,41,42,40,41,42,...
            c.record_major(data(&[("Steady", n, n * 8)]));
        }
        assert!(c.drifts().is_empty(), "oscillation is not drift");
        // But its peak still informs a suggested limit.
        let limits = c.suggested_limits();
        assert_eq!(limits, vec![("Steady".to_owned(), 52)]);
    }

    #[test]
    fn disappearing_class_resets_its_trend() {
        let mut c = HeapCensus::with_window(3);
        c.record_major(data(&[("Ghost", 5, 40)]));
        c.record_major(data(&[("Ghost", 9, 72)]));
        // Ghost vanishes: its window records 0 and can no longer satisfy
        // "never dips below first".
        c.record_major(data(&[]));
        c.record_major(data(&[("Ghost", 12, 96)]));
        assert!(c.drifts().is_empty());
    }

    #[test]
    fn sites_drift_independently_of_classes() {
        let mut c = HeapCensus::with_window(3);
        for i in 0..3u64 {
            c.record_major(CensusData {
                classes: vec![entry("C", 5, 40)],
                sites: vec![entry("hot_loop", 10 + 4 * i, (10 + 4 * i) * 8)],
            });
        }
        assert_eq!(c.drifts().len(), 1);
        assert_eq!(c.drifts()[0].scope, DriftScope::Site);
        assert_eq!(c.drifts()[0].name, "hot_loop");
    }

    #[test]
    fn heapdiff_sorts_by_delta_retained() {
        let mut c = HeapCensus::new();
        let a = c.record_major(data(&[("A", 10, 100), ("B", 5, 500), ("Gone", 2, 20)]));
        let b = c.record_major(data(&[("A", 12, 150), ("B", 5, 400), ("New", 1, 999)]));
        let diff = c.heapdiff(a, b).unwrap();
        assert_eq!(diff.from_seq, 1);
        assert_eq!(diff.to_seq, 2);
        let names: Vec<&str> = diff.rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            ["New", "A", "Gone", "B"],
            "sorted by byte delta desc"
        );
        assert_eq!(diff.rows[0].bytes_delta(), 999);
        assert_eq!(diff.rows[1].objects_delta(), 2);
        assert_eq!(diff.rows[3].bytes_delta(), -100);
        let text = diff.render();
        assert!(text.contains("heapdiff: cycle 1 -> cycle 2"));
        assert!(text.contains("New"));
        assert!(c.heapdiff(a, 99).is_none());
    }

    #[test]
    fn top_n_selection_is_deterministic() {
        let d = data(&[("A", 1, 50), ("B", 1, 50), ("C", 9, 900), ("D", 2, 10)]);
        let top: Vec<&str> = d
            .top_classes_by_bytes(3)
            .iter()
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(top, ["C", "A", "B"], "bytes desc, ties by name");
    }

    #[test]
    fn prometheus_families_render() {
        let mut c = HeapCensus::with_window(3);
        for i in 0..3u64 {
            c.record_major(CensusData {
                classes: vec![
                    entry("Leak\"y", 10 + 6 * i, (10 + 6 * i) * 8),
                    entry("Ok", 3, 24),
                ],
                sites: vec![entry("site0", 2, 16)],
            });
        }
        c.record_minor(CensusData::default());
        let text = c.to_prometheus();
        for needle in [
            "gca_census_cycles_total 3",
            "gca_census_minor_cycles_total 1",
            "gca_census_live_objects{class=\"Leak\\\"y\"} 22",
            "gca_census_live_bytes{class=\"Ok\"} 24",
            "gca_census_site_live_bytes{site=\"site0\"} 16",
            "gca_census_drifting_keys 1",
            "gca_census_drift{scope=\"class\",name=\"Leak\\\"y\"} 22",
            "gca_census_suggested_instance_limit{class=\"Leak\\\"y\"} 12",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.contains(' '),
                "malformed: {line}"
            );
        }
    }

    #[test]
    fn suggest_limit_always_exceeds_observation() {
        assert_eq!(suggest_limit(1), 2);
        assert_eq!(suggest_limit(4), 5);
        assert_eq!(suggest_limit(100), 125);
    }
}
