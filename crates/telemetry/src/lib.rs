//! # gca-telemetry — observe the collector without perturbing it
//!
//! The paper's whole evaluation (Figures 2–5) quantifies the *overhead of
//! checking heap properties piggybacked on collection*; this crate is the
//! measurement substrate that makes such claims reproducible for the Rust
//! reproduction. It provides:
//!
//! * **Phase spans** — per-cycle wall time for the pre-root (ownership)
//!   phase, the mark phase, the sweep, and minor collections, plus
//!   per-worker busy times from the parallel work-stealing mark phase
//!   ([`CycleRecord`]).
//! * **Per-assertion-kind overhead attribution** — extra edges traced,
//!   counter bumps, header-bit checks and ownership-phase work, attributed
//!   to `assert-dead` / `assert-instances` / `assert-unshared` /
//!   `assert-ownedby` / regions ([`AssertionKind`], [`AssertionOverhead`]).
//! * **Counters and log-scale latency histograms** rolled up into a
//!   [`GcTelemetry`] snapshot ([`LatencyHistogram`]).
//! * **Two exporters** — JSON-lines, one machine-diffable record per GC
//!   cycle ([`export::records_to_jsonl`], with a non-panicking parser
//!   [`export::parse_jsonl`]), and Prometheus-style text
//!   ([`export::to_prometheus`]).
//! * **Heap census & drift detection** — per-class and per-allocation-site
//!   live histograms accumulated during the mark, a rolling-window leak
//!   detector emitting [`CensusDrift`] events, cycle-vs-cycle
//!   [`HeapDiff`] reports, and a census Prometheus exporter
//!   ([`census`], [`HeapCensus`]).
//!
//! The crate is deliberately dependency-free and knows nothing about the
//! heap or the collector: the VM converts its own cycle statistics into
//! [`CycleRecord`]s and feeds them to a [`GcTelemetry`] *after* each
//! collection completes, so when telemetry is disabled the collector's
//! hot paths are untouched (observation, never participation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod attr;
pub mod census;
pub mod export;
mod hist;
mod record;

pub use attr::{AssertionKind, AssertionOverhead, KindOverhead};
pub use census::{
    CensusData, CensusDrift, CensusEntry, CycleCensus, DriftScope, HeapCensus, HeapDiff,
    HeapDiffRow,
};
pub use export::{fleet_to_prometheus, JsonlRecord, ShardExport, TelemetryParseError};
pub use hist::LatencyHistogram;
pub use record::{CycleKind, CycleRecord, GcPhase, GcTelemetry};
