//! Exporter hardening: JSONL round-trip (example-based and property-based),
//! a Prometheus golden-file pin, and fuzz-ish decoding of truncated and
//! corrupted lines (the parser must never panic).

use gca_telemetry::export::{parse_jsonl, record_to_json, records_to_jsonl, to_prometheus};
use gca_telemetry::{
    AssertionKind, AssertionOverhead, CensusData, CensusEntry, CycleKind, CycleRecord, GcTelemetry,
    HeapCensus, KindOverhead,
};
use proptest::prelude::*;

/// A fully-populated, deterministic pair of records exercising every field.
fn fixture_records() -> Vec<CycleRecord> {
    let mut overhead = AssertionOverhead::default();
    overhead.dead.registered = 3;
    overhead.dead.header_bit_checks = 120;
    overhead.region.registered = 40;
    overhead.region.phase_work = 2;
    overhead.instances.registered = 1;
    overhead.instances.counter_bumps = 512;
    overhead.unshared.registered = 5;
    overhead.unshared.header_bit_checks = 17;
    overhead.owned_by.registered = 2;
    overhead.owned_by.phase_work = 64;
    overhead.owned_by.extra_edges_traced = 200;
    vec![
        CycleRecord {
            seq: 1,
            kind: CycleKind::Major,
            total_ns: 2_500_000,
            pre_root_ns: 150_000,
            mark_ns: 1_800_000,
            sweep_ns: 550_000,
            objects_marked: 9_000,
            edges_traced: 21_000,
            pre_root_edges: 200,
            objects_swept: 3_000,
            words_swept: 30_000,
            promoted: 0,
            violations: 2,
            worker_mark_ns: vec![950_000, 850_000],
            overhead,
            census: Some(CensusData {
                classes: vec![
                    CensusEntry {
                        name: "Node".to_owned(),
                        objects: 6_000,
                        bytes: 192_000,
                    },
                    CensusEntry {
                        name: "Table".to_owned(),
                        objects: 3_000,
                        bytes: 240_000,
                    },
                ],
                sites: vec![CensusEntry {
                    name: "Db209::insert".to_owned(),
                    objects: 5_500,
                    bytes: 176_000,
                }],
            }),
        },
        CycleRecord {
            seq: 2,
            kind: CycleKind::Minor,
            total_ns: 90_000,
            objects_swept: 400,
            words_swept: 4_000,
            promoted: 25,
            ..Default::default()
        },
    ]
}

fn fixture_snapshot() -> GcTelemetry {
    let mut t = GcTelemetry::new();
    for mut r in fixture_records() {
        r.seq = 0; // record() assigns the sequence
        t.record(r);
    }
    t
}

#[test]
fn jsonl_roundtrip_fixture() {
    let records = fixture_records();
    let text = records_to_jsonl(&records, Some("fixture"));
    assert_eq!(text.lines().count(), 2);
    let parsed = parse_jsonl(&text).expect("fixture parses");
    assert_eq!(parsed.len(), 2);
    for (got, want) in parsed.iter().zip(&records) {
        assert_eq!(got.bench.as_deref(), Some("fixture"));
        assert_eq!(&got.record, want);
    }
}

#[test]
fn snapshot_to_jsonl_roundtrip() {
    let t = fixture_snapshot();
    let parsed = parse_jsonl(&t.to_jsonl(None)).expect("snapshot jsonl parses");
    assert_eq!(parsed.len(), t.records().len());
    for (got, want) in parsed.iter().zip(t.records()) {
        assert_eq!(&got.record, want);
    }
}

/// The Prometheus rendering of a fixed snapshot is pinned byte-for-byte.
/// If the exporter's schema changes intentionally, regenerate with:
/// `cargo test -p gca-telemetry --test export_roundtrip -- --ignored regenerate`
#[test]
fn prometheus_golden_pin() {
    let got = to_prometheus(&fixture_snapshot());
    let want = include_str!("golden/prometheus.txt");
    assert_eq!(got, want, "Prometheus output drifted from the golden file");
}

#[test]
#[ignore = "writes the golden fixture; run explicitly to regenerate"]
fn regenerate_prometheus_golden() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/prometheus.txt");
    std::fs::write(path, to_prometheus(&fixture_snapshot())).unwrap();
}

/// A deterministic census fixture: three major cycles with one leaking
/// class and one steady class (the leak drifts on the third cycle under a
/// window of 3), plus one minor cycle.
fn fixture_census() -> HeapCensus {
    let mut c = HeapCensus::with_window(3);
    for i in 0..3u64 {
        c.record_major(CensusData {
            classes: vec![
                CensusEntry {
                    name: "SObject".to_owned(),
                    objects: 100 + 40 * i,
                    bytes: (100 + 40 * i) * 40,
                },
                CensusEntry {
                    name: "SArray".to_owned(),
                    objects: 1,
                    bytes: 416,
                },
            ],
            sites: vec![
                CensusEntry {
                    name: "SwapLeak::swap".to_owned(),
                    objects: 100 + 40 * i,
                    bytes: (100 + 40 * i) * 40,
                },
                CensusEntry {
                    name: "<unattributed>".to_owned(),
                    objects: 1,
                    bytes: 416,
                },
            ],
        });
    }
    c.record_minor(CensusData {
        classes: vec![CensusEntry {
            name: "SObject".to_owned(),
            objects: 7,
            bytes: 280,
        }],
        sites: Vec::new(),
    });
    c
}

/// The census Prometheus rendering of a fixed snapshot is pinned
/// byte-for-byte, in the same style as `prometheus_golden_pin`.
/// Regenerate with the ignored `regenerate_census_prometheus_golden`.
#[test]
fn census_prometheus_golden_pin() {
    let got = fixture_census().to_prometheus();
    let want = include_str!("golden/census_prometheus.txt");
    assert_eq!(
        got, want,
        "census Prometheus output drifted from the golden file"
    );
}

#[test]
#[ignore = "writes the golden fixture; run explicitly to regenerate"]
fn regenerate_census_prometheus_golden() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/census_prometheus.txt"
    );
    std::fs::write(path, fixture_census().to_prometheus()).unwrap();
}

#[test]
fn truncation_never_panics_and_never_misparses() {
    let full = record_to_json(&fixture_records()[0], Some("bh"));
    for cut in 0..full.len() {
        if !full.is_char_boundary(cut) {
            continue;
        }
        // Every strict prefix must fail cleanly; only the full line parses.
        if let Ok(records) = parse_jsonl(&full[..cut]) {
            assert!(records.is_empty(), "prefix of {cut} bytes parsed");
        }
    }
    let parsed = parse_jsonl(&full).unwrap();
    assert_eq!(parsed[0].record, fixture_records()[0]);
}

fn kind_overhead_strategy() -> impl Strategy<Value = KindOverhead> {
    (
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..1_000_000,
    )
        .prop_map(
            |(registered, header_bit_checks, counter_bumps, extra, phase_work)| KindOverhead {
                registered,
                header_bit_checks,
                counter_bumps,
                extra_edges_traced: extra,
                phase_work,
            },
        )
}

fn census_entry_strategy() -> impl Strategy<Value = CensusEntry> {
    ("[A-Za-z$:_\"\\\\]{1,12}", any::<u64>(), any::<u64>()).prop_map(|(name, objects, bytes)| {
        CensusEntry {
            name,
            objects,
            bytes,
        }
    })
}

fn census_strategy() -> impl Strategy<Value = Option<CensusData>> {
    prop_oneof![
        Just(None),
        (
            proptest::collection::vec(census_entry_strategy(), 0..4),
            proptest::collection::vec(census_entry_strategy(), 0..4),
        )
            .prop_map(|(classes, sites)| Some(CensusData { classes, sites })),
    ]
}

fn record_strategy() -> impl Strategy<Value = CycleRecord> {
    (
        (
            any::<u64>(),
            prop_oneof![Just(CycleKind::Major), Just(CycleKind::Minor)],
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        proptest::collection::vec(any::<u64>(), 0..8),
        (
            kind_overhead_strategy(),
            kind_overhead_strategy(),
            kind_overhead_strategy(),
        ),
        census_strategy(),
    )
        .prop_map(
            |(a, b, c, worker_mark_ns, (dead, unshared, owned_by), census)| {
                let (seq, kind, total_ns, pre_root_ns, mark_ns, sweep_ns) = a;
                let (objects_marked, edges_traced, pre_root_edges, objects_swept) = b;
                let (words_swept, promoted, violations) = c;
                CycleRecord {
                    seq,
                    kind,
                    total_ns,
                    pre_root_ns,
                    mark_ns,
                    sweep_ns,
                    objects_marked,
                    edges_traced,
                    pre_root_edges,
                    objects_swept,
                    words_swept,
                    promoted,
                    violations,
                    worker_mark_ns,
                    overhead: AssertionOverhead {
                        dead,
                        unshared,
                        owned_by,
                        ..Default::default()
                    },
                    census,
                }
            },
        )
}

proptest! {
    /// Any record, any bench label: write → parse is the identity.
    #[test]
    fn prop_jsonl_roundtrip(
        record in record_strategy(),
        bench in prop_oneof![Just(None), Just(Some("bench/with \"quotes\"".to_string()))],
    ) {
        let text = records_to_jsonl(std::slice::from_ref(&record), bench.as_deref());
        let parsed = parse_jsonl(&text).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(&parsed[0].bench, &bench);
        prop_assert_eq!(&parsed[0].record, &record);
    }

    /// Arbitrary bytes (as lossy strings) never panic the parser.
    #[test]
    fn prop_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_jsonl(&text);
    }

    /// Single-byte corruption of a valid line never panics; if it still
    /// parses, the result is well-formed (decoded without error).
    #[test]
    fn prop_corrupted_line_never_panics(
        record in record_strategy(),
        pos in any::<u64>(),
        byte in any::<u8>(),
    ) {
        let mut line = record_to_json(&record, Some("x")).into_bytes();
        let idx = (pos % line.len() as u64) as usize;
        line[idx] = byte;
        let text = String::from_utf8_lossy(&line);
        let _ = parse_jsonl(&text);
    }
}

#[test]
fn overhead_matrix_is_complete_in_prometheus() {
    let text = to_prometheus(&fixture_snapshot());
    for kind in AssertionKind::ALL {
        for metric in [
            "registered",
            "header_bit_checks",
            "counter_bumps",
            "extra_edges_traced",
            "phase_work",
        ] {
            let needle = format!(
                "gca_assertion_overhead_total{{kind=\"{}\",metric=\"{metric}\"}}",
                kind.label()
            );
            assert!(text.contains(&needle), "missing {needle}");
        }
    }
}
